//! `tw`: the trace-weave command-line simulator.
//!
//! ```text
//! tw list
//! tw sim --bench gcc --config promo-pack [--insts 2000000] [--perfect-mem] [--json] [--timeline]
//! tw compare --bench gcc [--insts N] [--jobs N] [--json] [--timeline]
//! tw trace --workload gcc --preset headline [--events F] [--interval N] [--limit N] [--out FILE]
//! tw lint [--bench gcc] [--json]
//! tw bench [--smoke] [--insts N] [--samples N] [--out FILE]
//! tw bench --check FILE
//! tw bench --compare OLD.json NEW.json [--tolerance PCT]
//! ```
//!
//! Configuration names come from the experiment harness's registry
//! (`tc_sim::harness`); `tw list` prints it. `compare` runs Figure 10's
//! five standard front ends in parallel (`--jobs`, or the `TW_JOBS`
//! environment variable, caps the worker threads). `trace` runs one
//! cell with the event tracer attached and writes a Chrome/Perfetto
//! `trace_event` JSON file; `--timeline` on `sim`/`compare` prints the
//! interval timeline (effective fetch rate, trace-cache hit rate,
//! mispredict rate, and promotion coverage per window). `lint` runs
//! `tc-analyze`'s five-pass static verifier over the workload programs
//! and exits non-zero on any error-severity finding. `bench` times the
//! simulator itself over the benchmark × preset matrix and writes the
//! `tw-bench/v1` JSON artifact (`BENCH_frontend.json` by default);
//! `--smoke` runs a two-cell subset for CI, `--check` validates a
//! previously emitted artifact without running anything, and
//! `--compare` diffs two artifacts cell-by-cell, exiting non-zero when
//! any cell's ns/cycle regressed past the tolerance (default 10%).

use std::env;
use std::process::ExitCode;

use trace_weave::bench::{compare, suite};
use trace_weave::sim::harness::{
    self, default_jobs, presets, report_to_json, reports_to_json, run_matrix, run_traced,
    timeline_table, TraceOptions,
};
use trace_weave::sim::{SimConfig, SimReport};
use trace_weave::trace::EventFilter;
use trace_weave::workloads::Benchmark;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  tw list
      list benchmarks and configurations
  tw sim --bench <name> --config <name> [--insts N] [--perfect-mem] [--json]
         [--timeline] [--interval N]
      simulate one benchmark under one configuration
  tw compare --bench <name> [--insts N] [--jobs N] [--json] [--timeline]
      compare the five standard configurations on one benchmark
  tw trace --workload <name> --preset <name> [--insts N] [--events <filter>]
           [--interval N] [--limit N] [--out FILE]
      run one cell with the event tracer attached and write a
      Chrome/Perfetto trace_event JSON file (default trace.json);
      <filter> is a comma list of event kinds or categories (tc, fill,
      promote, mispredict, cache, machine, retire, or all)
  tw lint [--workload <name> | --all] [--json]
      statically verify workload programs (all benchmarks by default);
      exits 1 on error-severity findings
  tw bench [--smoke] [--insts N] [--samples N] [--out FILE]
      time the simulator over the benchmark x configuration matrix and
      write a tw-bench/v1 JSON artifact (default BENCH_frontend.json)
  tw bench --check FILE
      validate a previously emitted tw-bench artifact
  tw bench --compare OLD.json NEW.json [--tolerance PCT]
      diff two tw-bench artifacts cell-by-cell; exits 1 when any cell's
      ns/cycle regressed more than PCT percent (default 10)

configurations: {}",
        harness::STANDARD_FIVE.join(", ")
    );
    ExitCode::from(2)
}

fn parse_bench(name: &str) -> Option<Benchmark> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name || b.short_name() == name)
}

fn print_report(r: &SimReport) {
    println!("benchmark          {}", r.benchmark);
    println!("configuration      {}", r.config);
    println!("instructions       {}", r.instructions);
    println!("cycles             {}", r.cycles);
    println!("IPC                {:.3}", r.ipc());
    println!("eff fetch rate     {:.2}", r.effective_fetch_rate());
    println!(
        "cond mispredict    {:.2}%",
        r.cond_mispredict_rate() * 100.0
    );
    println!("promoted executed  {}", r.promoted_executed);
    println!("promoted faults    {}", r.promoted_faults);
    println!("avg resolution     {:.1} cycles", r.avg_resolution_time());
    if let Some(tc) = &r.trace_cache {
        println!("trace cache        {:.1}% miss", tc.miss_ratio() * 100.0);
    }
    println!("cycle accounting:");
    for (label, cycles) in r.accounting.categories() {
        println!(
            "  {label:14} {:5.1}%",
            cycles as f64 / r.cycles.max(1) as f64 * 100.0
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };

    let mut bench = None;
    let mut config_name = None;
    let mut insts: u64 = 2_000_000;
    let mut insts_set = false;
    let mut perfect = false;
    let mut json = false;
    let mut all = false;
    let mut smoke = false;
    let mut samples: u32 = 3;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut compare_paths: Option<(String, String)> = None;
    let mut tolerance: f64 = 10.0;
    let mut events: Option<String> = None;
    let mut interval: Option<u64> = None;
    let mut limit: usize = harness::DEFAULT_TRACE_LIMIT;
    let mut timeline = false;
    let mut jobs = default_jobs();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" | "--workload" => {
                i += 1;
                bench = args.get(i).cloned();
            }
            "--config" | "--preset" => {
                i += 1;
                config_name = args.get(i).cloned();
            }
            "--insts" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => {
                        insts = n;
                        insts_set = true;
                    }
                    None => return usage(),
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => jobs = n,
                    _ => return usage(),
                }
            }
            "--samples" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => samples = n,
                    _ => return usage(),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = Some(path.clone()),
                    None => return usage(),
                }
            }
            "--check" => {
                i += 1;
                match args.get(i) {
                    Some(path) => check = Some(path.clone()),
                    None => return usage(),
                }
            }
            "--compare" => {
                let (Some(old), Some(new)) = (args.get(i + 1), args.get(i + 2)) else {
                    return usage();
                };
                compare_paths = Some((old.clone(), new.clone()));
                i += 2;
            }
            "--tolerance" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(t) if t >= 0.0 => tolerance = t,
                    _ => return usage(),
                }
            }
            "--events" => {
                i += 1;
                match args.get(i) {
                    Some(spec) => events = Some(spec.clone()),
                    None => return usage(),
                }
            }
            "--interval" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => interval = Some(n),
                    _ => return usage(),
                }
            }
            "--limit" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => limit = n,
                    None => return usage(),
                }
            }
            "--perfect-mem" => perfect = true,
            "--json" => json = true,
            "--all" => all = true,
            "--smoke" => smoke = true,
            "--timeline" => timeline = true,
            _ => return usage(),
        }
        i += 1;
    }

    match cmd.as_str() {
        "list" => {
            println!("benchmarks (the paper's Table 1):");
            for b in Benchmark::ALL {
                println!("  {:10} ({})", b.name(), b.short_name());
            }
            println!("\nconfigurations:");
            for p in presets() {
                let aliases = if p.aliases.is_empty() {
                    String::new()
                } else {
                    format!("  (aliases: {})", p.aliases.join(", "))
                };
                println!("  {:12} {}{aliases}", p.name, p.summary);
            }
            ExitCode::SUCCESS
        }
        "sim" => {
            let Some(bench) = bench.as_deref().and_then(parse_bench) else {
                eprintln!("missing or unknown --bench");
                return usage();
            };
            let Some(mut config) = config_name.as_deref().and_then(harness::lookup) else {
                eprintln!("missing or unknown --config");
                return usage();
            };
            if perfect {
                config = config.with_perfect_disambiguation();
            }
            let workload = bench.build();
            let config = config.with_max_insts(insts);
            if timeline {
                // Timeline-only instrumentation: aggregates fold at emit
                // time, so no events need to be stored.
                let options = TraceOptions {
                    filter: EventFilter::none(),
                    interval: Some(interval.unwrap_or(harness::DEFAULT_TRACE_INTERVAL)),
                    limit: 0,
                };
                let run = run_traced(config, &workload, &options);
                let tl = run.timeline.as_ref().expect("interval was requested");
                if json {
                    println!(
                        "{}",
                        harness::Json::Object(vec![
                            ("report", report_to_json(&run.report)),
                            ("timeline", harness::timeline_to_json(tl)),
                        ])
                        .pretty()
                    );
                } else {
                    print_report(&run.report);
                    println!("\ninterval timeline ({} cycles/window):", tl.interval());
                    print!("{}", timeline_table(tl));
                }
                return ExitCode::SUCCESS;
            }
            let report = trace_weave::sim::Processor::new(config).run(&workload);
            if json {
                println!("{}", report_to_json(&report).pretty());
            } else {
                print_report(&report);
            }
            ExitCode::SUCCESS
        }
        "trace" => {
            let Some(bench) = bench.as_deref().and_then(parse_bench) else {
                eprintln!("missing or unknown --workload");
                return usage();
            };
            let Some(config) = config_name.as_deref().and_then(harness::lookup) else {
                eprintln!("missing or unknown --preset");
                return usage();
            };
            let filter = match events.as_deref().map(EventFilter::parse) {
                Some(Ok(filter)) => filter,
                Some(Err(e)) => {
                    eprintln!("--events: {e}");
                    return usage();
                }
                None => EventFilter::all(),
            };
            let options = TraceOptions {
                filter,
                interval: Some(interval.unwrap_or(harness::DEFAULT_TRACE_INTERVAL)),
                limit,
            };
            let workload = bench.build();
            let run = run_traced(config.with_max_insts(insts), &workload, &options);
            let text = harness::chrome_trace_json(&run).pretty();
            if let Err(e) = harness::check_well_formed(&text) {
                eprintln!("internal error: emitted trace is malformed: {e}");
                return ExitCode::FAILURE;
            }
            let out = out.unwrap_or_else(|| "trace.json".to_string());
            if let Err(e) = std::fs::write(&out, format!("{text}\n")) {
                eprintln!("{out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "{}: {} events emitted, {} recorded, {} dropped, {} filtered",
                out,
                run.summary.emitted,
                run.summary.recorded,
                run.summary.dropped,
                run.summary.filtered
            );
            println!(
                "load it in chrome://tracing or https://ui.perfetto.dev ({} cycles simulated)",
                run.report.cycles
            );
            ExitCode::SUCCESS
        }
        "compare" => {
            let Some(bench) = bench.as_deref().and_then(parse_bench) else {
                eprintln!("missing or unknown --bench");
                return usage();
            };
            let cells: Vec<(Benchmark, SimConfig)> = harness::standard_five()
                .into_iter()
                .map(|(_, config)| {
                    let config = if perfect {
                        config.with_perfect_disambiguation()
                    } else {
                        config
                    };
                    (bench, config.with_max_insts(insts))
                })
                .collect();
            let mut timelines = Vec::new();
            let reports = if timeline {
                // Traced runs are serial; the timeline rides on the same
                // simulation that produces the report.
                let options = TraceOptions {
                    filter: EventFilter::none(),
                    interval: Some(interval.unwrap_or(harness::DEFAULT_TRACE_INTERVAL)),
                    limit: 0,
                };
                cells
                    .iter()
                    .map(|(bench, config)| {
                        let run = run_traced(config.clone(), &bench.build(), &options);
                        timelines.push(run.timeline.expect("interval was requested"));
                        run.report
                    })
                    .collect()
            } else {
                run_matrix(&cells, jobs)
            };
            if json {
                if timeline {
                    println!(
                        "{}",
                        harness::Json::Object(vec![
                            ("reports", reports_to_json(&reports)),
                            (
                                "timelines",
                                harness::Json::Array(
                                    timelines.iter().map(harness::timeline_to_json).collect()
                                )
                            ),
                        ])
                        .pretty()
                    );
                } else {
                    println!("{}", reports_to_json(&reports).pretty());
                }
                return ExitCode::SUCCESS;
            }
            println!(
                "{:12} {:>10} {:>8} {:>10} {:>12}",
                "config", "eff fetch", "IPC", "mispred%", "resolution"
            );
            for (name, r) in harness::STANDARD_FIVE.iter().zip(&reports) {
                println!(
                    "{:12} {:>10.2} {:>8.2} {:>9.2}% {:>11.1}c",
                    name,
                    r.effective_fetch_rate(),
                    r.ipc(),
                    r.cond_mispredict_rate() * 100.0,
                    r.avg_resolution_time()
                );
            }
            for (name, tl) in harness::STANDARD_FIVE.iter().zip(&timelines) {
                println!(
                    "\n{name} interval timeline ({} cycles/window):",
                    tl.interval()
                );
                print!("{}", timeline_table(tl));
            }
            ExitCode::SUCCESS
        }
        "lint" => {
            if all && bench.is_some() {
                eprintln!("--all and --workload are mutually exclusive");
                return usage();
            }
            let entries = match bench.as_deref() {
                Some(name) => {
                    let Some(bench) = parse_bench(name) else {
                        eprintln!("unknown workload {name:?}");
                        return usage();
                    };
                    vec![harness::lint_benchmark(bench)]
                }
                None => harness::lint_all(),
            };
            let errors = harness::lint_errors(&entries);
            if json {
                println!("{}", harness::lint_to_json(&entries).pretty());
            } else {
                print!("{}", harness::lint_table(&entries));
                for entry in &entries {
                    for finding in &entry.report.findings {
                        println!("{}: {finding}", entry.benchmark);
                    }
                }
                println!(
                    "{} workload(s), {errors} error(s), {} warning(s)",
                    entries.len(),
                    entries.iter().map(|e| e.report.warnings()).sum::<usize>()
                );
            }
            if errors > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "bench" => {
            if let Some((old_path, new_path)) = compare_paths {
                let read = |path: &str| match std::fs::read_to_string(path) {
                    Ok(text) => Some(text),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        None
                    }
                };
                let (Some(old_text), Some(new_text)) = (read(&old_path), read(&new_path)) else {
                    return ExitCode::FAILURE;
                };
                return match compare::compare_artifacts(&old_text, &new_text, tolerance) {
                    Ok(cmp) => {
                        print!("{}", compare::render(&cmp));
                        if cmp.regressions().is_empty() {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::FAILURE
                        }
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        ExitCode::FAILURE
                    }
                };
            }
            if let Some(path) = check {
                let text = match std::fs::read_to_string(&path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                return match suite::check_artifact(&text) {
                    Ok(()) => {
                        println!("{path}: valid {} artifact", suite::SCHEMA);
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            let matrix = if smoke {
                suite::smoke_matrix()
            } else {
                suite::full_matrix()
            };
            if !insts_set {
                insts = if smoke { 20_000 } else { 200_000 };
            }
            if !json {
                println!(
                    "{:12} {:12} {:>12} {:>12} {:>14}",
                    "benchmark", "config", "wall", "ns/cycle", "instrs/sec"
                );
            }
            let suite = suite::run_suite(&matrix, insts, samples, |cell, done, total| {
                if !json {
                    println!(
                        "{:12} {:12} {:>10.1}ms {:>12.1} {:>14.0}   [{done}/{total}]",
                        cell.benchmark,
                        cell.config,
                        cell.wall_ns as f64 / 1e6,
                        cell.ns_per_cycle(),
                        cell.instrs_per_sec(),
                    );
                }
            });
            let artifact = suite::suite_to_json(&suite).pretty();
            if json {
                println!("{artifact}");
            }
            let out = out.unwrap_or_else(|| "BENCH_frontend.json".to_string());
            if let Err(e) = std::fs::write(&out, format!("{artifact}\n")) {
                eprintln!("{out}: {e}");
                return ExitCode::FAILURE;
            }
            if !json {
                println!("wrote {out}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
