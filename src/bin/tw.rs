//! `tw`: the trace-weave command-line simulator.
//!
//! ```text
//! tw list
//! tw sim --bench gcc --config promo-pack [--insts 2000000] [--perfect-mem] [--json]
//! tw compare --bench gcc [--insts N]
//! ```

use std::env;
use std::process::ExitCode;

use trace_weave::core::PackingPolicy;
use trace_weave::sim::{Processor, SimConfig, SimReport};
use trace_weave::workloads::Benchmark;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  tw list
      list benchmarks and configurations
  tw sim --bench <name> --config <name> [--insts N] [--perfect-mem]
      simulate one benchmark under one configuration
  tw compare --bench <name> [--insts N]
      compare all standard configurations on one benchmark

configurations: icache, baseline, packing, promotion, promo-pack, headline"
    );
    ExitCode::from(2)
}

fn parse_config(name: &str) -> Option<SimConfig> {
    Some(match name {
        "icache" => SimConfig::icache(),
        "baseline" => SimConfig::baseline(),
        "packing" => SimConfig::packing(PackingPolicy::Unregulated),
        "promotion" => SimConfig::promotion(64),
        "promo-pack" => SimConfig::promotion_packing(64, PackingPolicy::Unregulated),
        "headline" => SimConfig::headline_perf(),
        _ => return None,
    })
}

fn parse_bench(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.name() == name || b.short_name() == name)
}

fn print_report(r: &SimReport) {
    println!("benchmark          {}", r.benchmark);
    println!("configuration      {}", r.config);
    println!("instructions       {}", r.instructions);
    println!("cycles             {}", r.cycles);
    println!("IPC                {:.3}", r.ipc());
    println!("eff fetch rate     {:.2}", r.effective_fetch_rate());
    println!("cond mispredict    {:.2}%", r.cond_mispredict_rate() * 100.0);
    println!("promoted executed  {}", r.promoted_executed);
    println!("promoted faults    {}", r.promoted_faults);
    println!("avg resolution     {:.1} cycles", r.avg_resolution_time());
    if let Some(tc) = &r.trace_cache {
        println!("trace cache        {:.1}% miss", tc.miss_ratio() * 100.0);
    }
    println!("cycle accounting:");
    for (label, cycles) in r.accounting.categories() {
        println!("  {label:14} {:5.1}%", cycles as f64 / r.cycles.max(1) as f64 * 100.0);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };

    let mut bench = None;
    let mut config_name = None;
    let mut insts: u64 = 2_000_000;
    let mut perfect = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                i += 1;
                bench = args.get(i).cloned();
            }
            "--config" => {
                i += 1;
                config_name = args.get(i).cloned();
            }
            "--insts" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => insts = n,
                    None => return usage(),
                }
            }
            "--perfect-mem" => perfect = true,
            _ => return usage(),
        }
        i += 1;
    }

    match cmd.as_str() {
        "list" => {
            println!("benchmarks (the paper's Table 1):");
            for b in Benchmark::ALL {
                println!("  {:10} ({})", b.name(), b.short_name());
            }
            println!("\nconfigurations:");
            for c in ["icache", "baseline", "packing", "promotion", "promo-pack", "headline"] {
                println!("  {c}");
            }
            ExitCode::SUCCESS
        }
        "sim" => {
            let Some(bench) = bench.as_deref().and_then(parse_bench) else {
                eprintln!("missing or unknown --bench");
                return usage();
            };
            let Some(mut config) = config_name.as_deref().and_then(parse_config) else {
                eprintln!("missing or unknown --config");
                return usage();
            };
            if perfect {
                config = config.with_perfect_disambiguation();
            }
            let workload = bench.build();
            let report = Processor::new(config.with_max_insts(insts)).run(&workload);
            print_report(&report);
            ExitCode::SUCCESS
        }
        "compare" => {
            let Some(bench) = bench.as_deref().and_then(parse_bench) else {
                eprintln!("missing or unknown --bench");
                return usage();
            };
            let workload = bench.build();
            println!(
                "{:12} {:>10} {:>8} {:>10} {:>12}",
                "config", "eff fetch", "IPC", "mispred%", "resolution"
            );
            for name in ["icache", "baseline", "packing", "promotion", "promo-pack"] {
                let mut config = parse_config(name).expect("known");
                if perfect {
                    config = config.with_perfect_disambiguation();
                }
                let r = Processor::new(config.with_max_insts(insts)).run(&workload);
                println!(
                    "{:12} {:>10.2} {:>8.2} {:>9.2}% {:>11.1}c",
                    name,
                    r.effective_fetch_rate(),
                    r.ipc(),
                    r.cond_mispredict_rate() * 100.0,
                    r.avg_resolution_time()
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
