//! `tw`: the trace-weave command-line simulator.
//!
//! ```text
//! tw list
//! tw sim --bench gcc --config promo-pack [--insts 2000000] [--perfect-mem] [--json] [--timeline]
//!        [--fast-forward N | --sample M/K [--warmup W]]
//! tw checkpoint save --workload gcc [--insts N] [--out FILE]
//! tw checkpoint restore --from FILE --config promo-pack [--insts N] [--json]
//! tw compare --bench gcc [--insts N] [--jobs N] [--json] [--timeline]
//!            [--fault-rate R --fault-seed S] [--timeout-secs N]
//! tw faults --workload gcc --preset headline --seed 1 --rate 1e-4
//!           [--at-cycles LIST] [--targets LIST] [--insts N] [--json]
//! tw trace --workload gcc --preset headline [--events F] [--interval N] [--limit N] [--out FILE]
//! tw lint [--bench gcc] [--asm FILE] [--json]
//! tw analyze --workload gcc [--insts N] [--jobs N] [--json] [--out FILE]
//! tw analyze --check PLAN.json
//! tw bench [--smoke] [--insts N] [--samples N] [--out FILE] [--plan auto]
//! tw bench --check FILE
//! tw bench --compare OLD.json NEW.json [--tolerance PCT]
//! tw serve [--addr HOST:PORT | --port N] [--jobs N] [--queue-depth N]
//!          [--cache-entries N] [--cache-dir DIR] [--max-conns N]
//!          [--max-body BYTES] [--max-insts N] [--insts N]
//! ```
//!
//! `sim` honors the execution modes: `--fast-forward N` skips the
//! first N instructions at functional-interpreter speed before timing
//! attaches, and `--sample M/K` times M instructions out of every K
//! (with `--warmup W` functional-warming instructions before each
//! measured window; default `min(K-M, 2*M)`). `checkpoint save`
//! fast-forwards a workload and writes its full architectural state as
//! a `tw-ckpt/v1` JSON file; `checkpoint restore` resumes a saved
//! state under a configuration and reports — bit-identical to running
//! `tw sim --fast-forward` to the same position.
//!
//! Configuration names come from the experiment harness's registry
//! (`tc_sim::harness`); `tw list` prints it. `compare` runs Figure 10's
//! five standard front ends in parallel (`--jobs`, or the `TW_JOBS`
//! environment variable, caps the worker threads; `--timeout-secs`
//! arms a progress watchdog that reports wedged cells instead of
//! hanging). `analyze` profiles a workload functionally, classifies
//! every static conditional branch into the four-class predictability
//! taxonomy, and emits a `tw-plan/v1` promotion plan; `--plan FILE` on
//! `sim`/`compare` (or `--plan auto`, which builds the plan on the
//! fly — the only form `bench` accepts) attaches the plan's per-branch
//! promotion overrides to the run. `faults` runs one cell with a deterministic fault plan
//! attached and reports the injected/detected/recovered/escaped
//! counters. `trace` runs one cell with the event tracer attached and
//! writes a Chrome/Perfetto `trace_event` JSON file; `--timeline` on
//! `sim`/`compare` prints the interval timeline. `lint` runs
//! `tc-analyze`'s five-pass static verifier over the workload programs
//! (or, with `--asm`, over a text-assembly file) and exits non-zero on
//! any error-severity finding. `bench` times the simulator itself over
//! the benchmark × preset matrix and writes the `tw-bench/v1` JSON
//! artifact (`BENCH_frontend.json` by default); `--smoke` runs a
//! two-cell subset for CI, `--check` validates a previously emitted
//! artifact without running anything, and `--compare` diffs two
//! artifacts cell-by-cell, exiting non-zero when any cell's ns/cycle
//! regressed past the tolerance (default 10%).
//!
//! `serve` runs the same job kinds as a long-lived HTTP/JSON service
//! with a content-addressed result cache (see
//! `tc_sim::harness::serve`); repeated queries are answered from the
//! cache without re-simulating.
//!
//! Every failure path returns a [`TwError`]: one `tw: <message>` line
//! on stderr, exit code 2 for usage errors and 1 for runtime errors.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::env;
use std::process::ExitCode;
use std::time::Duration;

use trace_weave::bench::{compare, suite};
use trace_weave::fault::{FaultLocus, FaultPlan};
use trace_weave::sim::harness::{
    self, presets, report_to_json, reports_to_json, run_matrix, run_matrix_watchdog, run_traced,
    timeline_table, TraceOptions, TwError,
};
use trace_weave::sim::{SimConfig, SimReport};
use trace_weave::trace::EventFilter;
use trace_weave::workloads::{Benchmark, RvBench, WorkloadId};

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  tw list
      list benchmarks and configurations
  tw sim --bench <name> --config <name> [--insts N] [--perfect-mem] [--json]
         [--timeline] [--interval N] [--plan FILE|auto]
         [--fast-forward N | --sample M/K [--warmup W]]
      simulate one benchmark under one configuration;
      --fast-forward skips N instructions functionally before timing,
      --sample times M of every K instructions (SMARTS-style), warming
      the front end for W instructions before each window;
      --plan attaches a tw-plan/v1 promotion plan (auto = build it now)
  tw checkpoint save --workload <name> [--insts N] [--out FILE]
      fast-forward N instructions (default 2000000) functionally and
      write the machine's architectural state as a tw-ckpt/v1 JSON
      file (default <name>.ckpt.json)
  tw checkpoint restore --from FILE --config <name> [--insts N] [--json]
      resume a saved machine state under a configuration and report;
      bit-identical to tw sim --fast-forward at the saved position
  tw compare --bench <name> [--insts N] [--jobs N] [--json] [--timeline]
             [--plan FILE|auto] [--fault-rate R] [--fault-seed S]
             [--timeout-secs N]
      compare the five standard configurations on one benchmark;
      --plan attaches a promotion plan to every cell; --fault-rate
      attaches a per-cycle fault plan to every cell and adds the
      injected/escaped column; --timeout-secs abandons cells that stop
      making progress instead of hanging
  tw analyze --workload <name> [--insts N] [--jobs N] [--json] [--out FILE]
      functionally profile a workload, classify every static
      conditional branch (strongly-biased / phase-biased /
      history-predictable / data-dependent), and emit a tw-plan/v1
      promotion plan consumable via --plan
  tw analyze --check FILE
      parse and validate a tw-plan/v1 file without running anything
  tw faults --workload <name> [--preset <name>] [--seed S]
            (--rate R | --at-cycles C1,C2,...) [--targets LIST]
            [--insts N] [--json]
      simulate one cell under a deterministic fault-injection plan and
      report the fault counters; <LIST> is a comma list of loci
      (tc-segment, tc-evict, bias, predictor, ras, fill-stall)
  tw trace --workload <name> --preset <name> [--insts N] [--events <filter>]
           [--interval N] [--limit N] [--out FILE]
      run one cell with the event tracer attached and write a
      Chrome/Perfetto trace_event JSON file (default trace.json);
      <filter> is a comma list of event kinds or categories (tc, fill,
      promote, mispredict, cache, machine, retire, fault, or all)
  tw lint [--workload <name> | --all | --asm FILE] [--json]
      statically verify workload programs (both families by default)
      or assemble and verify a text-assembly file; exits 1 on
      error-severity findings
  tw rv FILE
      decode and translate a flat RV32I image (.rv.bin) and print a
      front-end summary; malformed or untranslatable images are
      reported as one-line usage errors
  tw bench [--smoke] [--insts N] [--samples N] [--out FILE] [--plan auto]
      time the simulator over the benchmark x configuration matrix and
      write a tw-bench/v1 JSON artifact (default BENCH_frontend.json);
      --plan auto attaches an auto-built promotion plan to every cell
  tw bench --check FILE
      validate a previously emitted tw-bench artifact
  tw bench --compare OLD.json NEW.json [--tolerance PCT]
      diff two tw-bench artifacts cell-by-cell; exits 1 when any cell's
      ns/cycle regressed more than PCT percent (default 10)
  tw serve [--addr HOST:PORT | --port N] [--jobs N] [--queue-depth N]
           [--cache-entries N] [--cache-dir DIR] [--max-conns N]
           [--max-body BYTES] [--max-insts N] [--insts N]
      run the simulation service: POST /v1/{{sim,compare,faults,trace,
      analyze}} with JSON bodies, GET /healthz /v1/stats /v1/presets
      /v1/workloads, POST /v1/shutdown; results are cached by content
      address, repeated queries answer without re-simulating
      (default 127.0.0.1:0 - the chosen port is printed at startup);
      --cache-dir persists results across restarts (CRC-validated,
      crash-safe: a killed daemon restarted on the same directory
      serves previously computed keys bit-identically from disk)

configurations: {}

workloads are named bare for the synthetic suite (compress, gcc, ...)
and rv/<name> for compiled RV32I programs (rv/qsort, rv/dispatch, ...);
`tw list` prints both families",
        harness::STANDARD_FIVE.join(", ")
    );
    ExitCode::from(2)
}

/// `tw rv FILE`: parse, decode, and translate a flat RV32I image, then
/// print what the front end would hand the simulator. Malformed images
/// are *usage* errors (exit 2): the input contract, not the runtime,
/// was violated.
fn cmd_rv(path: &str) -> Result<ExitCode, TwError> {
    let bytes = std::fs::read(path).map_err(|e| TwError::runtime(format!("{path}: {e}")))?;
    let image = trace_weave::rv::RvImage::parse(&bytes)
        .map_err(|e| TwError::usage(format!("{path}: {e}")))?;
    let t =
        trace_weave::rv::translate(&image).map_err(|e| TwError::usage(format!("{path}: {e}")))?;
    let expanded = t.program.len();
    println!("image              {path}");
    println!("rv instructions    {}", image.text.len());
    println!("translated instrs  {expanded}");
    println!(
        "expansion          {:.3}x",
        expanded as f64 / image.text.len().max(1) as f64
    );
    println!(
        "entry              rv byte {:#x} -> index {}",
        image.entry,
        t.program.entry()
    );
    println!(
        "data bytes         {} at base {:#x}",
        image.data.len(),
        image.data_base
    );
    println!(
        "memory             {} bytes ({} words)",
        image.mem_bytes, t.mem_words
    );
    println!("address-taken      {} target(s)", image.indirect.len());
    Ok(ExitCode::SUCCESS)
}

fn parse_bench(name: &str) -> Option<WorkloadId> {
    WorkloadId::all()
        .into_iter()
        .find(|b| b.name() == name || b.short_name() == name)
}

fn print_report(r: &SimReport) {
    println!("benchmark          {}", r.benchmark);
    println!("configuration      {}", r.config);
    println!("instructions       {}", r.instructions);
    println!("cycles             {}", r.cycles);
    println!("IPC                {:.3}", r.ipc());
    println!("eff fetch rate     {:.2}", r.effective_fetch_rate());
    println!(
        "cond mispredict    {:.2}%",
        r.cond_mispredict_rate() * 100.0
    );
    println!("promoted executed  {}", r.promoted_executed);
    println!("promoted faults    {}", r.promoted_faults);
    println!("avg resolution     {:.1} cycles", r.avg_resolution_time());
    if let Some(tc) = &r.trace_cache {
        println!("trace cache        {:.1}% miss", tc.miss_ratio() * 100.0);
    }
    if let Some(s) = &r.sampling {
        println!("stream division:");
        println!("  fast-forwarded   {}", s.fast_forwarded);
        println!("  warmed           {}", s.warmed);
        println!("  measured         {}", s.measured);
        println!("  windows          {}", s.windows);
        println!("  total stream     {}", s.total_stream);
        println!("  timed fraction   {:.2}%", s.timed_fraction() * 100.0);
    }
    if let Some(f) = &r.fault {
        println!("fault injection:");
        println!("  injected         {}", f.injected);
        println!("  detected         {}", f.detected);
        println!("  recovered        {}", f.recovered);
        println!("  escaped          {}", f.escaped);
        println!("  recovery cycles  {}", f.recovery_cycles);
    }
    if let Some(p) = &r.plan {
        println!(
            "promotion plan     {} ({} branches, {} never-promote, {} insts profiled)",
            p.workload, p.entries, p.never_promote, p.profiled_insts
        );
        for class in trace_weave::predict::BranchClass::ALL {
            let i = class.index();
            if p.class_branches[i] == 0 {
                continue;
            }
            println!(
                "  {:19} {:3} branches, {:9} execs, {:5.1}% promoted",
                class.name(),
                p.class_branches[i],
                p.class_execs[i],
                p.coverage(class) * 100.0
            );
        }
    }
    println!("cycle accounting:");
    for (label, cycles) in r.accounting.categories() {
        println!(
            "  {label:14} {:5.1}%",
            cycles as f64 / r.cycles.max(1) as f64 * 100.0
        );
    }
}

/// Parses a comma-separated `--targets` list into fault loci.
fn parse_targets(spec: &str) -> Result<Vec<FaultLocus>, TwError> {
    let mut loci = Vec::new();
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        loci.push(FaultLocus::parse(token).map_err(TwError::usage)?);
    }
    if loci.is_empty() {
        return Err(TwError::usage("--targets: empty locus list"));
    }
    Ok(loci)
}

/// Resolves `--plan FILE|auto` for one benchmark: `auto` builds the
/// plan by profiling the benchmark now; a path loads and validates a
/// `tw-plan/v1` file, insisting it was derived for the same workload.
fn load_plan(
    f: &Flags,
    bench: WorkloadId,
) -> Result<Option<trace_weave::sim::PromotionPlan>, TwError> {
    match f.plan.as_deref() {
        None => Ok(None),
        Some("auto") => {
            let workload = bench.build();
            Ok(Some(harness::build_plan(
                &workload,
                f.insts_or(DEFAULT_INSTS),
                f.jobs,
            )?))
        }
        Some(path) => {
            let text = harness::read_verified(path)?;
            let plan = harness::parse_plan(&text)?;
            if plan.workload != bench.name() {
                return Err(TwError::runtime(format!(
                    "{path}: plan was derived for {:?}, not {:?}",
                    plan.workload,
                    bench.name()
                )));
            }
            Ok(Some(plan))
        }
    }
}

/// All parsed command-line state; one instance per invocation.
#[derive(Default)]
struct Flags {
    bench: Option<String>,
    config_name: Option<String>,
    insts: Option<u64>,
    perfect: bool,
    json: bool,
    all: bool,
    smoke: bool,
    samples: u32,
    out: Option<String>,
    check: Option<String>,
    compare_paths: Option<(String, String)>,
    tolerance: f64,
    events: Option<String>,
    interval: Option<u64>,
    limit: usize,
    timeline: bool,
    jobs: usize,
    fault_seed: u64,
    fault_rate: Option<f64>,
    at_cycles: Option<Vec<u64>>,
    targets: Option<String>,
    timeout_secs: Option<u64>,
    asm: Option<String>,
    fast_forward: Option<u64>,
    /// `--sample M/K`: (measure, period).
    sample: Option<(u64, u64)>,
    warmup: Option<u64>,
    from: Option<String>,
    /// `--plan FILE|auto`: promotion plan to attach.
    plan: Option<String>,
    addr: Option<String>,
    port: Option<u16>,
    queue_depth: Option<usize>,
    cache_entries: Option<usize>,
    max_conns: Option<usize>,
    max_body: Option<usize>,
    max_insts: Option<u64>,
    /// `--cache-dir DIR`: persistent result-cache tier for `serve`.
    cache_dir: Option<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, TwError> {
        let mut f = Flags {
            samples: 3,
            tolerance: 10.0,
            limit: harness::DEFAULT_TRACE_LIMIT,
            // Strict: a set-but-malformed TW_JOBS is a usage error, not
            // a silent fallback.
            jobs: harness::try_default_jobs().map_err(TwError::usage)?,
            fault_seed: 1,
            ..Flags::default()
        };
        let mut i = 1;
        // One value-bearing flag: `--flag <value>` with a typed parse.
        fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, TwError> {
            *i += 1;
            args.get(*i)
                .map(String::as_str)
                .ok_or_else(|| TwError::usage(format!("{flag}: missing value")))
        }
        fn number<T: std::str::FromStr>(
            args: &[String],
            i: &mut usize,
            flag: &str,
        ) -> Result<T, TwError> {
            let raw = value(args, i, flag)?;
            raw.parse()
                .map_err(|_| TwError::usage(format!("{flag}: bad value {raw:?}")))
        }
        while i < args.len() {
            match args[i].as_str() {
                "--bench" | "--workload" => {
                    f.bench = Some(value(args, &mut i, "--bench")?.to_string());
                }
                "--config" | "--preset" => {
                    f.config_name = Some(value(args, &mut i, "--config")?.to_string());
                }
                "--insts" => f.insts = Some(number(args, &mut i, "--insts")?),
                "--jobs" => {
                    let n: usize = number(args, &mut i, "--jobs")?;
                    f.jobs = harness::validate_jobs(n)
                        .map_err(|e| TwError::usage(format!("--jobs: {e}")))?;
                }
                "--samples" => {
                    let n: u32 = number(args, &mut i, "--samples")?;
                    if n == 0 {
                        return Err(TwError::usage("--samples: must be at least 1"));
                    }
                    f.samples = n;
                }
                "--out" => f.out = Some(value(args, &mut i, "--out")?.to_string()),
                "--check" => f.check = Some(value(args, &mut i, "--check")?.to_string()),
                "--compare" => {
                    let (Some(old), Some(new)) = (args.get(i + 1), args.get(i + 2)) else {
                        return Err(TwError::usage("--compare: needs OLD.json and NEW.json"));
                    };
                    f.compare_paths = Some((old.clone(), new.clone()));
                    i += 2;
                }
                "--tolerance" => {
                    let t: f64 = number(args, &mut i, "--tolerance")?;
                    if t.is_nan() || t < 0.0 {
                        return Err(TwError::usage("--tolerance: must be non-negative"));
                    }
                    f.tolerance = t;
                }
                "--events" => f.events = Some(value(args, &mut i, "--events")?.to_string()),
                "--interval" => {
                    let n: u64 = number(args, &mut i, "--interval")?;
                    if n == 0 {
                        return Err(TwError::usage("--interval: must be at least 1"));
                    }
                    f.interval = Some(n);
                }
                "--limit" => f.limit = number(args, &mut i, "--limit")?,
                "--seed" | "--fault-seed" => f.fault_seed = number(args, &mut i, "--seed")?,
                "--rate" | "--fault-rate" => {
                    let r: f64 = number(args, &mut i, "--rate")?;
                    if r.is_nan() || r <= 0.0 {
                        return Err(TwError::usage("--rate: must be positive"));
                    }
                    f.fault_rate = Some(r);
                }
                "--at-cycles" => {
                    let spec = value(args, &mut i, "--at-cycles")?;
                    let mut cycles = Vec::new();
                    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                        cycles.push(token.parse().map_err(|_| {
                            TwError::usage(format!("--at-cycles: bad cycle {token:?}"))
                        })?);
                    }
                    if cycles.is_empty() {
                        return Err(TwError::usage("--at-cycles: empty cycle list"));
                    }
                    f.at_cycles = Some(cycles);
                }
                "--targets" => f.targets = Some(value(args, &mut i, "--targets")?.to_string()),
                "--timeout-secs" => {
                    let n: u64 = number(args, &mut i, "--timeout-secs")?;
                    if n == 0 {
                        return Err(TwError::usage("--timeout-secs: must be at least 1"));
                    }
                    f.timeout_secs = Some(n);
                }
                "--asm" => f.asm = Some(value(args, &mut i, "--asm")?.to_string()),
                "--fast-forward" => {
                    f.fast_forward = Some(number(args, &mut i, "--fast-forward")?);
                }
                "--sample" => {
                    let spec = value(args, &mut i, "--sample")?;
                    let Some((m, k)) = spec.split_once('/') else {
                        return Err(TwError::usage(format!(
                            "--sample: expected MEASURE/PERIOD, got {spec:?}"
                        )));
                    };
                    let parse = |raw: &str| {
                        raw.trim()
                            .parse::<u64>()
                            .map_err(|_| TwError::usage(format!("--sample: bad value {raw:?}")))
                    };
                    let (measure, period) = (parse(m)?, parse(k)?);
                    if measure == 0 || measure > period {
                        return Err(TwError::usage("--sample: needs 0 < MEASURE <= PERIOD"));
                    }
                    f.sample = Some((measure, period));
                }
                "--warmup" => f.warmup = Some(number(args, &mut i, "--warmup")?),
                "--from" => f.from = Some(value(args, &mut i, "--from")?.to_string()),
                "--plan" => f.plan = Some(value(args, &mut i, "--plan")?.to_string()),
                "--addr" => f.addr = Some(value(args, &mut i, "--addr")?.to_string()),
                "--port" => f.port = Some(number(args, &mut i, "--port")?),
                "--queue-depth" => {
                    let n: usize = number(args, &mut i, "--queue-depth")?;
                    if n == 0 {
                        return Err(TwError::usage("--queue-depth: must be at least 1"));
                    }
                    f.queue_depth = Some(n);
                }
                "--cache-entries" => {
                    let n: usize = number(args, &mut i, "--cache-entries")?;
                    if n == 0 {
                        return Err(TwError::usage("--cache-entries: must be at least 1"));
                    }
                    f.cache_entries = Some(n);
                }
                "--max-conns" => {
                    let n: usize = number(args, &mut i, "--max-conns")?;
                    if n == 0 {
                        return Err(TwError::usage("--max-conns: must be at least 1"));
                    }
                    f.max_conns = Some(n);
                }
                "--max-body" => {
                    let n: usize = number(args, &mut i, "--max-body")?;
                    if n == 0 {
                        return Err(TwError::usage("--max-body: must be at least 1"));
                    }
                    f.max_body = Some(n);
                }
                "--max-insts" => {
                    let n: u64 = number(args, &mut i, "--max-insts")?;
                    if n == 0 {
                        return Err(TwError::usage("--max-insts: must be at least 1"));
                    }
                    f.max_insts = Some(n);
                }
                "--cache-dir" => {
                    f.cache_dir = Some(value(args, &mut i, "--cache-dir")?.to_string());
                }
                "--perfect-mem" => f.perfect = true,
                "--json" => f.json = true,
                "--all" => f.all = true,
                "--smoke" => f.smoke = true,
                "--timeline" => f.timeline = true,
                other => return Err(TwError::usage(format!("unknown flag `{other}`"))),
            }
            i += 1;
        }
        Ok(f)
    }

    fn insts_or(&self, default: u64) -> u64 {
        self.insts.unwrap_or(default)
    }

    fn bench_required(&self, flag: &str) -> Result<WorkloadId, TwError> {
        let name = self
            .bench
            .as_deref()
            .ok_or_else(|| TwError::usage(format!("missing {flag}")))?;
        parse_bench(name).ok_or_else(|| TwError::usage(format!("unknown workload {name:?}")))
    }

    fn config_required(&self, flag: &str) -> Result<SimConfig, TwError> {
        let name = self
            .config_name
            .as_deref()
            .ok_or_else(|| TwError::usage(format!("missing {flag}")))?;
        harness::lookup(name)
            .ok_or_else(|| TwError::usage(format!("unknown configuration {name:?}")))
    }

    /// Applies `--fast-forward` / `--sample` / `--warmup` to a
    /// configuration, validating the combination.
    fn apply_mode(&self, config: SimConfig) -> Result<SimConfig, TwError> {
        match (self.fast_forward, self.sample) {
            (Some(_), Some(_)) => Err(TwError::usage(
                "--fast-forward and --sample are mutually exclusive",
            )),
            (Some(skip), None) => {
                if self.warmup.is_some() {
                    return Err(TwError::usage("--warmup requires --sample"));
                }
                Ok(config.with_fast_forward(skip))
            }
            (None, Some((measure, period))) => {
                let warmup = self
                    .warmup
                    .unwrap_or_else(|| (period - measure).min(2 * measure));
                if warmup.checked_add(measure).is_none_or(|used| used > period) {
                    return Err(TwError::usage(format!(
                        "--warmup {warmup} + measure {measure} exceeds the {period}-instruction period"
                    )));
                }
                Ok(config.with_sampling(warmup, measure, period))
            }
            (None, None) => {
                if self.warmup.is_some() {
                    return Err(TwError::usage("--warmup requires --sample"));
                }
                Ok(config)
            }
        }
    }

    /// The fault plan requested by `--rate`/`--at-cycles`/`--targets`,
    /// or an error if the combination is inconsistent.
    fn fault_plan(&self) -> Result<FaultPlan, TwError> {
        let plan = match (self.fault_rate, &self.at_cycles) {
            (Some(rate), None) => FaultPlan::with_rate(self.fault_seed, rate),
            (None, Some(cycles)) => FaultPlan::at_cycles(self.fault_seed, cycles.clone()),
            (None, None) => {
                return Err(TwError::usage(
                    "faults: one of --rate or --at-cycles is required",
                ))
            }
            (Some(_), Some(_)) => {
                return Err(TwError::usage(
                    "--rate and --at-cycles are mutually exclusive",
                ))
            }
        };
        match &self.targets {
            Some(spec) => Ok(plan.targeting(&parse_targets(spec)?)),
            None => Ok(plan),
        }
    }
}

const DEFAULT_INSTS: u64 = 2_000_000;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tw: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run(args: &[String]) -> Result<ExitCode, TwError> {
    let Some(cmd) = args.first() else {
        return Ok(usage());
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        let _ = usage();
        return Ok(ExitCode::SUCCESS);
    }
    // `rv` takes one positional path, not the shared flag grammar.
    if cmd == "rv" {
        let [_, path] = args else {
            return Err(TwError::usage("rv: expected exactly one image path"));
        };
        return cmd_rv(path);
    }
    // `checkpoint` carries a save/restore subcommand before its flags.
    let f = if cmd == "checkpoint" {
        Flags::parse(&args[1..])?
    } else {
        Flags::parse(args)?
    };

    match cmd.as_str() {
        "list" => {
            println!("benchmarks (the paper's Table 1):");
            for b in Benchmark::ALL {
                println!("  {:12} ({})", b.name(), b.short_name());
            }
            println!("\nrv32i workloads (compiled code via the tc-rv front end):");
            for r in RvBench::ALL {
                println!("  {:12} ({})", r.name(), r.short_name());
            }
            println!("\nconfigurations:");
            for p in presets() {
                let aliases = if p.aliases.is_empty() {
                    String::new()
                } else {
                    format!("  (aliases: {})", p.aliases.join(", "))
                };
                println!("  {:12} {}{aliases}", p.name, p.summary);
            }
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let mut config = harness::ServeConfig {
                workers: f.jobs,
                default_insts: f.insts_or(DEFAULT_INSTS),
                ..harness::ServeConfig::default()
            };
            match (&f.addr, f.port) {
                (Some(_), Some(_)) => {
                    return Err(TwError::usage("--addr and --port are mutually exclusive"))
                }
                (Some(addr), None) => config.addr = addr.clone(),
                (None, Some(port)) => config.addr = format!("127.0.0.1:{port}"),
                (None, None) => {}
            }
            if let Some(n) = f.queue_depth {
                config.queue_depth = n;
            }
            if let Some(n) = f.cache_entries {
                config.cache_entries = n;
            }
            if let Some(n) = f.max_conns {
                config.max_conns = n;
            }
            if let Some(n) = f.max_body {
                config.max_body = n;
            }
            if let Some(n) = f.max_insts {
                config.max_insts = n;
            }
            config.cache_dir = f.cache_dir.as_ref().map(std::path::PathBuf::from);
            if config.default_insts > config.max_insts {
                return Err(TwError::usage(format!(
                    "--insts {} exceeds --max-insts {}",
                    config.default_insts, config.max_insts
                )));
            }
            let bind_addr = config.addr.clone();
            let cache_dir = config.cache_dir.clone();
            let workers = config.workers;
            let server = harness::Server::bind(config).map_err(|e| {
                // Startup touches two resources: the cache directory
                // (when configured) opens first, then the socket binds.
                match &cache_dir {
                    Some(dir) => TwError::runtime(format!(
                        "bind {bind_addr} (cache-dir {}): {e}",
                        dir.display()
                    )),
                    None => TwError::runtime(format!("bind {bind_addr}: {e}")),
                }
            })?;
            let addr = server
                .local_addr()
                .map_err(|e| TwError::runtime(format!("local_addr: {e}")))?;
            // Scripts (verify.sh, the load helper) parse this line for
            // the resolved address; keep its shape stable.
            println!("tw serve listening on http://{addr} ({workers} worker(s))");
            let summary = server.run();
            println!(
                "tw serve: {} request(s) ({} client error(s), {} server error(s)), \
                 {} job panic(s), {} connection(s) shed",
                summary.requests,
                summary.client_errors,
                summary.server_errors,
                summary.job_panics,
                summary.conns_shed
            );
            if summary.job_panics > 0 {
                return Err(TwError::runtime(format!(
                    "{} job(s) panicked during this run",
                    summary.job_panics
                )));
            }
            Ok(ExitCode::SUCCESS)
        }
        "sim" => {
            let bench = f.bench_required("--bench")?;
            let mut config = f.config_required("--config")?;
            if f.perfect {
                config = config.with_perfect_disambiguation();
            }
            let workload = bench.build();
            let mut config = f.apply_mode(config.with_max_insts(f.insts_or(DEFAULT_INSTS)))?;
            if let Some(plan) = load_plan(&f, bench)? {
                config = config.with_promotion_plan(plan);
            }
            if f.timeline {
                // Timeline-only instrumentation: aggregates fold at emit
                // time, so no events need to be stored.
                let options = TraceOptions {
                    filter: EventFilter::none(),
                    interval: Some(f.interval.unwrap_or(harness::DEFAULT_TRACE_INTERVAL)),
                    limit: 0,
                };
                let run = run_traced(config, &workload, &options);
                let Some(tl) = run.timeline.as_ref() else {
                    return Err(TwError::runtime(
                        "internal error: traced run produced no timeline",
                    ));
                };
                if f.json {
                    println!(
                        "{}",
                        harness::Json::Object(vec![
                            ("report", report_to_json(&run.report)),
                            ("timeline", harness::timeline_to_json(tl)),
                        ])
                        .pretty()
                    );
                } else {
                    print_report(&run.report);
                    println!("\ninterval timeline ({} cycles/window):", tl.interval());
                    print!("{}", timeline_table(tl));
                }
                return Ok(ExitCode::SUCCESS);
            }
            let report = trace_weave::sim::Processor::new(config).run(&workload);
            if f.json {
                println!("{}", report_to_json(&report).pretty());
            } else {
                print_report(&report);
            }
            Ok(ExitCode::SUCCESS)
        }
        "checkpoint" => {
            match args.get(1).map(String::as_str) {
                Some("save") => {
                    let bench = f.bench_required("--workload")?;
                    let workload = bench.build();
                    let at = f.insts_or(DEFAULT_INSTS);
                    let mut machine = workload.machine();
                    let blocks = trace_weave::isa::BlockCache::new(workload.program());
                    let ran = machine
                        .fast_forward(workload.program(), &blocks, at)
                        .map_err(|e| {
                            TwError::runtime(format!(
                                "{}: workload faulted during fast-forward: {e:?}",
                                bench.name()
                            ))
                        })?;
                    let ckpt = harness::Checkpoint::capture(&workload, &machine);
                    let out = f
                        .out
                        .unwrap_or_else(|| format!("{}.ckpt.json", bench.name()));
                    let text = harness::stamp(&format!("{}\n", ckpt.to_json().pretty()));
                    harness::write_atomic(std::path::Path::new(&out), &text)
                        .map_err(|e| TwError::runtime(format!("{out}: {e}")))?;
                    println!(
                        "wrote {out}: {} at instruction {} ({} memory run(s){})",
                        bench.name(),
                        machine.retired(),
                        ckpt.mem.len(),
                        if machine.is_halted() { ", halted" } else { "" }
                    );
                    if ran < at {
                        println!("note: workload completed after {ran} instructions");
                    }
                    Ok(ExitCode::SUCCESS)
                }
                Some("restore") => {
                    let path = f
                        .from
                        .as_deref()
                        .ok_or_else(|| TwError::usage("checkpoint restore: missing --from"))?;
                    let text = harness::read_verified(path)?;
                    let ckpt = harness::parse_checkpoint(&text)?;
                    let bench = parse_bench(&ckpt.workload).ok_or_else(|| {
                        TwError::runtime(format!(
                            "{path}: checkpoint names unknown workload {:?}",
                            ckpt.workload
                        ))
                    })?;
                    let workload = bench.build();
                    let machine = ckpt.restore(&workload)?;
                    // Resuming at position n under FastForward{n} skips
                    // nothing and reports identically to an unresumed
                    // `tw sim --fast-forward n` run.
                    let config = f
                        .config_required("--config")?
                        .with_max_insts(f.insts_or(DEFAULT_INSTS))
                        .with_fast_forward(ckpt.retired);
                    let report =
                        trace_weave::sim::Processor::new(config).run_from(&workload, machine);
                    if f.json {
                        println!("{}", report_to_json(&report).pretty());
                    } else {
                        print_report(&report);
                    }
                    Ok(ExitCode::SUCCESS)
                }
                _ => Err(TwError::usage(
                    "checkpoint: expected `save` or `restore` subcommand",
                )),
            }
        }
        "faults" => {
            let bench = f.bench_required("--workload")?;
            // Fault campaigns default to the paper's headline front end.
            let config = match f.config_name.as_deref() {
                Some(name) => harness::lookup(name)
                    .ok_or_else(|| TwError::usage(format!("unknown configuration {name:?}")))?,
                None => harness::lookup("headline")
                    .ok_or_else(|| TwError::runtime("registry is missing `headline`"))?,
            };
            let plan = f.fault_plan()?;
            let config = config
                .with_max_insts(f.insts_or(DEFAULT_INSTS))
                .with_fault_plan(plan);
            let workload = bench.build();
            let report = trace_weave::sim::Processor::new(config).run(&workload);
            if f.json {
                println!("{}", report_to_json(&report).pretty());
            } else {
                print_report(&report);
            }
            Ok(ExitCode::SUCCESS)
        }
        "trace" => {
            let bench = f.bench_required("--workload")?;
            let config = f.config_required("--preset")?;
            let filter = match f.events.as_deref().map(EventFilter::parse) {
                Some(Ok(filter)) => filter,
                Some(Err(e)) => return Err(TwError::usage(format!("--events: {e}"))),
                None => EventFilter::all(),
            };
            let options = TraceOptions {
                filter,
                interval: Some(f.interval.unwrap_or(harness::DEFAULT_TRACE_INTERVAL)),
                limit: f.limit,
            };
            let workload = bench.build();
            let run = run_traced(
                config.with_max_insts(f.insts_or(DEFAULT_INSTS)),
                &workload,
                &options,
            );
            let text = harness::chrome_trace_json(&run).pretty();
            if let Err(e) = harness::check_well_formed(&text) {
                return Err(TwError::runtime(format!(
                    "internal error: emitted trace is malformed: {e}"
                )));
            }
            let out = f.out.unwrap_or_else(|| "trace.json".to_string());
            // Chrome/Perfetto consume this file directly, so it gets
            // the atomic write but not the CRC stamp.
            harness::write_atomic(std::path::Path::new(&out), &format!("{text}\n"))
                .map_err(|e| TwError::runtime(format!("{out}: {e}")))?;
            println!(
                "{}: {} events emitted, {} recorded, {} dropped, {} filtered",
                out,
                run.summary.emitted,
                run.summary.recorded,
                run.summary.dropped,
                run.summary.filtered
            );
            println!(
                "load it in chrome://tracing or https://ui.perfetto.dev ({} cycles simulated)",
                run.report.cycles
            );
            Ok(ExitCode::SUCCESS)
        }
        "compare" => {
            let bench = f.bench_required("--bench")?;
            let fault_plan = match (f.fault_rate, &f.at_cycles) {
                (None, None) => None,
                _ => Some(f.fault_plan()?),
            };
            let insts = f.insts_or(DEFAULT_INSTS);
            let promotion_plan = load_plan(&f, bench)?;
            let cells: Vec<(WorkloadId, SimConfig)> = harness::standard_five()
                .into_iter()
                .map(|(_, config)| {
                    let config = if f.perfect {
                        config.with_perfect_disambiguation()
                    } else {
                        config
                    };
                    let config = match &fault_plan {
                        Some(plan) => config.with_fault_plan(plan.clone()),
                        None => config,
                    };
                    let config = match &promotion_plan {
                        Some(plan) => config.with_promotion_plan(plan.clone()),
                        None => config,
                    };
                    (bench, config.with_max_insts(insts))
                })
                .collect();
            let mut timelines = Vec::new();
            let reports: Vec<Option<SimReport>> = if f.timeline {
                // Traced runs are serial; the timeline rides on the same
                // simulation that produces the report.
                let options = TraceOptions {
                    filter: EventFilter::none(),
                    interval: Some(f.interval.unwrap_or(harness::DEFAULT_TRACE_INTERVAL)),
                    limit: 0,
                };
                let mut reports = Vec::new();
                for (bench, config) in &cells {
                    let run = run_traced(config.clone(), &bench.build(), &options);
                    let Some(tl) = run.timeline else {
                        return Err(TwError::runtime(
                            "internal error: traced run produced no timeline",
                        ));
                    };
                    timelines.push(tl);
                    reports.push(Some(run.report));
                }
                reports
            } else if f.timeout_secs.is_some() {
                run_matrix_watchdog(&cells, f.jobs, f.timeout_secs.map(Duration::from_secs))
            } else {
                run_matrix(&cells, f.jobs).into_iter().map(Some).collect()
            };
            let hung: Vec<&str> = harness::STANDARD_FIVE
                .iter()
                .zip(&reports)
                .filter(|(_, r)| r.is_none())
                .map(|(name, _)| *name)
                .collect();
            if f.json {
                if !hung.is_empty() {
                    return Err(TwError::runtime(format!(
                        "{} cell(s) timed out: {}",
                        hung.len(),
                        hung.join(", ")
                    )));
                }
                let completed: Vec<SimReport> = reports.into_iter().flatten().collect();
                if f.timeline {
                    println!(
                        "{}",
                        harness::Json::Object(vec![
                            ("reports", reports_to_json(&completed)),
                            (
                                "timelines",
                                harness::Json::Array(
                                    timelines.iter().map(harness::timeline_to_json).collect()
                                )
                            ),
                        ])
                        .pretty()
                    );
                } else {
                    println!("{}", reports_to_json(&completed).pretty());
                }
                return Ok(ExitCode::SUCCESS);
            }
            let with_faults = fault_plan.is_some();
            if with_faults {
                println!(
                    "{:12} {:>10} {:>8} {:>10} {:>12} {:>10}",
                    "config", "eff fetch", "IPC", "mispred%", "resolution", "inj/esc"
                );
            } else {
                println!(
                    "{:12} {:>10} {:>8} {:>10} {:>12}",
                    "config", "eff fetch", "IPC", "mispred%", "resolution"
                );
            }
            for (name, r) in harness::STANDARD_FIVE.iter().zip(&reports) {
                let Some(r) = r else {
                    println!("{name:12} {:>10}", "timed out");
                    continue;
                };
                let faults = match &r.fault {
                    Some(fs) if with_faults => format!(" {:>6}/{:<3}", fs.injected, fs.escaped),
                    _ => String::new(),
                };
                println!(
                    "{:12} {:>10.2} {:>8.2} {:>9.2}% {:>11.1}c{faults}",
                    name,
                    r.effective_fetch_rate(),
                    r.ipc(),
                    r.cond_mispredict_rate() * 100.0,
                    r.avg_resolution_time()
                );
            }
            for (name, tl) in harness::STANDARD_FIVE.iter().zip(&timelines) {
                println!(
                    "\n{name} interval timeline ({} cycles/window):",
                    tl.interval()
                );
                print!("{}", timeline_table(tl));
            }
            if hung.is_empty() {
                Ok(ExitCode::SUCCESS)
            } else {
                Err(TwError::runtime(format!(
                    "{} cell(s) timed out: {}",
                    hung.len(),
                    hung.join(", ")
                )))
            }
        }
        "lint" => {
            if let Some(path) = &f.asm {
                if f.all || f.bench.is_some() {
                    return Err(TwError::usage(
                        "--asm is mutually exclusive with --workload/--all",
                    ));
                }
                let source = std::fs::read_to_string(path)
                    .map_err(|e| TwError::runtime(format!("{path}: {e}")))?;
                let program = trace_weave::isa::assemble(&source)
                    .map_err(|e| TwError::runtime(format!("{path}: {e}")))?;
                let report = trace_weave::analyze::analyze(&program);
                if f.json {
                    println!(
                        "{}",
                        harness::Json::Object(vec![
                            ("file", harness::Json::Str(path.clone())),
                            ("instructions", harness::Json::UInt(program.len() as u64)),
                            ("errors", harness::Json::UInt(report.errors() as u64)),
                            ("warnings", harness::Json::UInt(report.warnings() as u64)),
                        ])
                        .pretty()
                    );
                } else {
                    for finding in &report.findings {
                        println!("{path}: {finding}");
                    }
                    println!(
                        "{path}: {} instruction(s), {} error(s), {} warning(s)",
                        program.len(),
                        report.errors(),
                        report.warnings()
                    );
                }
                return Ok(if report.errors() > 0 {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                });
            }
            if f.all && f.bench.is_some() {
                return Err(TwError::usage(
                    "--all and --workload are mutually exclusive",
                ));
            }
            let entries = match f.bench.as_deref() {
                Some(name) => {
                    let Some(bench) = parse_bench(name) else {
                        return Err(TwError::usage(format!("unknown workload {name:?}")));
                    };
                    vec![harness::lint_benchmark(bench)]
                }
                None => harness::lint_all(),
            };
            let errors = harness::lint_errors(&entries);
            if f.json {
                println!("{}", harness::lint_to_json(&entries).pretty());
            } else {
                print!("{}", harness::lint_table(&entries));
                for entry in &entries {
                    for finding in &entry.report.findings {
                        println!("{}: {finding}", entry.benchmark);
                    }
                }
                println!(
                    "{} workload(s), {errors} error(s), {} warning(s)",
                    entries.len(),
                    entries.iter().map(|e| e.report.warnings()).sum::<usize>()
                );
            }
            if errors > 0 {
                Ok(ExitCode::FAILURE)
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        "analyze" => {
            if let Some(path) = &f.check {
                let text = harness::read_verified(path)?;
                let plan = harness::parse_plan(&text)?;
                println!(
                    "{path}: valid {} plan for {} ({} branches, {} never-promote)",
                    harness::PLAN_SCHEMA,
                    plan.workload,
                    plan.len(),
                    plan.never_promote()
                );
                return Ok(ExitCode::SUCCESS);
            }
            let bench = f.bench_required("--workload")?;
            let workload = bench.build();
            let plan = harness::build_plan(&workload, f.insts_or(DEFAULT_INSTS), f.jobs)?;
            let text = harness::plan_to_json(&plan).pretty();
            if let Err(e) = harness::check_well_formed(&text) {
                return Err(TwError::runtime(format!(
                    "internal error: emitted plan is malformed: {e}"
                )));
            }
            if let Some(out) = &f.out {
                let stamped = harness::stamp(&format!("{text}\n"));
                harness::write_atomic(std::path::Path::new(out), &stamped)
                    .map_err(|e| TwError::runtime(format!("{out}: {e}")))?;
            }
            if f.json {
                println!("{text}");
            } else {
                println!(
                    "{}: {} static conditional branches, {} instructions profiled",
                    plan.workload,
                    plan.len(),
                    plan.profiled_insts
                );
                let counts = plan.class_counts();
                for class in trace_weave::predict::BranchClass::ALL {
                    println!("  {:19} {}", class.name(), counts[class.index()]);
                }
                println!("  {:19} {}", "never-promote", plan.never_promote());
                print!("{}", harness::plan_table(&plan));
                if let Some(out) = &f.out {
                    println!("wrote {out}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "bench" => {
            if let Some((old_path, new_path)) = &f.compare_paths {
                let old_text = harness::read_verified(old_path)?;
                let new_text = harness::read_verified(new_path)?;
                let cmp = compare::compare_artifacts(&old_text, &new_text, f.tolerance)
                    .map_err(TwError::runtime)?;
                print!("{}", compare::render(&cmp));
                return Ok(if cmp.regressions().is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            }
            if let Some(path) = &f.check {
                let text = harness::read_verified(path)?;
                suite::check_artifact(&text)
                    .map_err(|e| TwError::runtime(format!("{path}: {e}")))?;
                println!("{path}: valid {} artifact", suite::SCHEMA);
                return Ok(ExitCode::SUCCESS);
            }
            let matrix = if f.smoke {
                suite::smoke_matrix()
            } else {
                suite::full_matrix()
            };
            let insts = f.insts_or(if f.smoke { 20_000 } else { 200_000 });
            let mut plans = std::collections::HashMap::new();
            match f.plan.as_deref() {
                None => {}
                Some("auto") => {
                    for &(b, _) in &matrix {
                        if !plans.contains_key(b.name()) {
                            plans.insert(b.name(), harness::build_plan(&b.build(), insts, f.jobs)?);
                        }
                    }
                }
                Some(other) => {
                    return Err(TwError::usage(format!(
                        "bench --plan: only `auto` is supported (one plan per benchmark), got {other:?}"
                    )));
                }
            }
            if !f.json {
                println!(
                    "{:12} {:12} {:>12} {:>12} {:>14}",
                    "benchmark", "config", "wall", "ns/cycle", "instrs/sec"
                );
            }
            let json = f.json;
            let mut suite = suite::run_suite_planned(
                &matrix,
                insts,
                f.samples,
                |b| plans.get(b.name()).cloned(),
                |cell, done, total| {
                    if !json {
                        println!(
                            "{:12} {:12} {:>10.1}ms {:>12.1} {:>14.0}   [{done}/{total}]",
                            cell.benchmark,
                            cell.config,
                            cell.wall_ns as f64 / 1e6,
                            cell.ns_per_cycle(),
                            cell.instrs_per_sec(),
                        );
                    }
                },
            );
            if !json {
                println!("\nsampling probes ({insts} insts, compress, full vs sampled):");
                println!(
                    "{:12} {:>8} {:>10} {:>11} {:>11} {:>11}",
                    "config", "speedup", "eff MIPS", "fetch d%", "mispred dpp", "promo dpp"
                );
            }
            suite.probes = suite::run_sampling_probes(&matrix, insts, f.samples, |p, _, _| {
                if !json {
                    println!(
                        "{:12} {:>7.1}x {:>10.1} {:>+10.2}% {:>+11.3} {:>+11.3}",
                        p.config,
                        p.speedup(),
                        p.sampled_mips(),
                        p.fetch_rate_delta_pct(),
                        p.mispredict_delta_pp(),
                        p.promo_coverage_delta_pp(),
                    );
                }
            });
            let artifact = suite::suite_to_json(&suite).pretty();
            if json {
                println!("{artifact}");
            }
            let out = f.out.unwrap_or_else(|| "BENCH_frontend.json".to_string());
            let stamped = harness::stamp(&format!("{artifact}\n"));
            harness::write_atomic(std::path::Path::new(&out), &stamped)
                .map_err(|e| TwError::runtime(format!("{out}: {e}")))?;
            if !json {
                println!("wrote {out}");
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(TwError::usage(format!("unknown command `{other}`"))),
    }
}
