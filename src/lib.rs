//! Facade crate for the trace-weave workspace.
//!
//! Re-exports the sub-crates so examples and integration tests can use a
//! single dependency. See the individual crates for full documentation:
//!
//! * [`isa`] — the RISC-like ISA, assembler, and functional interpreter
//! * [`analyze`] — CFG-based static verification passes (`tw lint`)
//! * [`rv`] — the RV32I decode/translate front end (`tw rv`, `rv/` suite)
//! * [`workloads`] — the 15 synthetic Table-1 benchmarks plus the
//!   compiled `rv/` family
//! * [`cache`] — set-associative caches and the memory hierarchy
//! * [`predict`] — branch predictors and the branch bias table
//! * [`core`] — trace cache, fill unit, branch promotion, trace packing
//! * [`engine`] — the out-of-order execution engine model
//! * [`trace`] — the cycle-level event-tracing layer (`tw trace`)
//! * [`fault`] — deterministic fault plans and the injector (`tw faults`)
//! * [`sim`] — whole-processor simulation driver and reports
//! * [`bench`] — timing harnesses: the `tw bench` wall-clock suite and
//!   the microbenchmark runner behind `benches/`

pub use tc_analyze as analyze;
pub use tc_bench as bench;
pub use tc_cache as cache;
pub use tc_core as core;
pub use tc_engine as engine;
pub use tc_fault as fault;
pub use tc_isa as isa;
pub use tc_predict as predict;
pub use tc_rv as rv;
pub use tc_sim as sim;
pub use tc_trace as trace;
pub use tc_workloads as workloads;
