//! Build your own workload and run it through the simulated machines.
//!
//! Writes a small matrix-multiply kernel with the `tc-isa` program
//! builder, wraps it in a [`Workload`], and compares front ends on it.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use trace_weave::isa::{Cond, ProgramBuilder, Reg};
use trace_weave::sim::{Processor, SimConfig};
use trace_weave::workloads::Workload;

const N: i32 = 24; // matrix dimension
const A: i32 = 0x100;
const B: i32 = A + N * N;
const C: i32 = B + N * N;

/// Emits `for (i = 0; i < n; i++) body` using `i`/`n` registers.
fn emit_loop(b: &mut ProgramBuilder, i: Reg, n: Reg, body: impl FnOnce(&mut ProgramBuilder)) {
    let top = b.new_label("loop");
    let done = b.new_label("done");
    b.li(i, 0);
    b.bind(top).expect("fresh");
    b.branch(Cond::Ge, i, n, done);
    body(b);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done).expect("fresh");
}

fn main() {
    // C = A * B over N x N matrices, repeated forever (the simulator
    // stops at its instruction budget).
    let mut asm = ProgramBuilder::new();
    let forever = asm.here("forever");
    asm.li(Reg::S0, N);
    emit_loop(&mut asm, Reg::S1, Reg::S0, |b| {
        // row i
        emit_loop(b, Reg::S2, Reg::S0, |b| {
            // col j: acc (T0) = sum_k A[i][k] * B[k][j]
            b.li(Reg::T0, 0);
            emit_loop(b, Reg::S3, Reg::S0, |b| {
                b.mul(Reg::T1, Reg::S1, Reg::S0);
                b.add(Reg::T1, Reg::T1, Reg::S3);
                b.addi(Reg::T1, Reg::T1, A);
                b.load(Reg::T1, Reg::T1, 0);
                b.mul(Reg::T2, Reg::S3, Reg::S0);
                b.add(Reg::T2, Reg::T2, Reg::S2);
                b.addi(Reg::T2, Reg::T2, B);
                b.load(Reg::T2, Reg::T2, 0);
                b.mul(Reg::T1, Reg::T1, Reg::T2);
                b.add(Reg::T0, Reg::T0, Reg::T1);
            });
            b.mul(Reg::T1, Reg::S1, Reg::S0);
            b.add(Reg::T1, Reg::T1, Reg::S2);
            b.addi(Reg::T1, Reg::T1, C);
            b.store(Reg::T0, Reg::T1, 0);
        });
    });
    asm.jump(forever);
    let program = asm.build().expect("kernel assembles");

    // Deterministic input matrices.
    let a: Vec<u64> = (0..(N * N) as u64).map(|i| i * 7 % 100).collect();
    let b: Vec<u64> = (0..(N * N) as u64).map(|i| i * 13 % 100).collect();
    let workload = Workload::new(
        "matmul",
        program,
        1 << 13,
        vec![(A as u64, a), (B as u64, b)],
    );

    println!(
        "custom workload `matmul` ({} static instructions)\n",
        workload.program().len()
    );
    for (name, config) in [
        ("icache", SimConfig::icache()),
        ("baseline tc", SimConfig::baseline()),
        ("promo+pack", SimConfig::headline_fetch()),
    ] {
        let r = Processor::new(config.with_max_insts(500_000)).run(&workload);
        println!(
            "{:12} eff fetch {:5.2}  IPC {:4.2}  mispredict rate {:4.2}%",
            name,
            r.effective_fetch_rate(),
            r.ipc(),
            r.cond_mispredict_rate() * 100.0
        );
    }
    println!("\nA loop nest with highly biased branches is exactly where promotion");
    println!("and packing shine: nearly every line is a full 16 instructions.");
}
