//! Watch the fill unit dynamically unroll a tight loop.
//!
//! A 2-instruction loop whose back-edge branch is strongly biased: once
//! the bias table promotes it, the fill unit merges loop iterations into
//! a single execution atomic unit and packs the trace-cache line with 16
//! instructions — 8 unrolled iterations (the paper's §4/§5 interplay and
//! its Figure 8 discussion).
//!
//! ```text
//! cargo run --release --example loop_unrolling
//! ```

use trace_weave::core::{FillUnit, PackingPolicy};
use trace_weave::isa::{Cond, Interpreter, ProgramBuilder, Reg};
use trace_weave::predict::{BiasConfig, BiasTable};

fn main() {
    // for i in 0..1000 { acc += i }  — a 4-instruction loop body.
    let mut b = ProgramBuilder::new();
    let top = b.new_label("top");
    let done = b.new_label("done");
    b.li(Reg::T0, 0).li(Reg::T1, 1000).li(Reg::T2, 0);
    b.bind(top).expect("fresh label");
    b.branch(Cond::Ge, Reg::T0, Reg::T1, done);
    b.add(Reg::T2, Reg::T2, Reg::T0);
    b.addi(Reg::T0, Reg::T0, 1);
    b.jump(top);
    b.bind(done).expect("fresh label");
    b.halt();
    let program = b.build().expect("assembles");

    for (name, promotion) in [
        ("without promotion", false),
        ("with promotion (t=16)", true),
    ] {
        let bias = promotion.then(|| {
            BiasTable::new(BiasConfig {
                entries: 64,
                threshold: 16,
                counter_bits: 8,
                tagged: true,
            })
        });
        let mut fill = FillUnit::new(PackingPolicy::Unregulated, bias);
        let mut seg_lens = Vec::new();
        let mut promoted_per_seg = Vec::new();
        for rec in Interpreter::new(&program, 64).take(2_000) {
            fill.retire(&rec);
            while let Some(seg) = fill.pop_segment() {
                seg_lens.push(seg.len());
                promoted_per_seg.push(seg.promoted_count());
            }
        }
        let late = &seg_lens[seg_lens.len().saturating_sub(8)..];
        let late_promoted = &promoted_per_seg[promoted_per_seg.len().saturating_sub(8)..];
        println!("{name}:");
        println!("  segments built: {}", seg_lens.len());
        println!("  steady-state segment lengths: {late:?}");
        println!("  promoted branches per segment: {late_promoted:?}");
        let avg = late.iter().sum::<usize>() as f64 / late.len().max(1) as f64;
        println!("  steady-state average length: {avg:.1} instructions\n");
    }

    println!("Without promotion each segment stops at the 3-branch limit (~12");
    println!("instructions of this 4-instruction loop). With the back edge");
    println!("promoted, segments pack the full 16 instructions — the loop is");
    println!("dynamically unrolled inside the trace cache.");
}
