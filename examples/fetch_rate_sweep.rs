//! Sweep the branch-promotion threshold (the paper's Table 2) on a
//! configurable benchmark.
//!
//! ```text
//! cargo run --release --example fetch_rate_sweep [benchmark]
//! ```

use trace_weave::sim::harness::{default_jobs, run_matrix};
use trace_weave::sim::SimConfig;
use trace_weave::workloads::Benchmark;

const THRESHOLDS: [u32; 6] = [8, 16, 32, 64, 128, 256];

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_owned());
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name || b.short_name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark `{name}`; one of:");
            for b in Benchmark::ALL {
                eprintln!("  {b}");
            }
            std::process::exit(2);
        });
    println!("promotion-threshold sweep on `{bench}` (1M instructions per point)\n");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>12}",
        "threshold", "eff fetch", "promoted%", "faults", "0/1-pred %"
    );

    // All sweep points are independent cells — run them in parallel.
    let cells: Vec<(Benchmark, SimConfig)> = std::iter::once(SimConfig::baseline())
        .chain(THRESHOLDS.iter().map(|&t| SimConfig::promotion(t)))
        .map(|c| (bench, c.with_max_insts(1_000_000)))
        .collect();
    let reports = run_matrix(&cells, default_jobs());

    let baseline = &reports[0];
    let (p01, _, _) = baseline.fetch.prediction_demand();
    println!(
        "{:>12} {:>10.2} {:>9.1}% {:>10} {:>11.0}%",
        "none",
        baseline.effective_fetch_rate(),
        0.0,
        0,
        p01 * 100.0
    );

    for (threshold, report) in THRESHOLDS.iter().zip(&reports[1..]) {
        let total_branches =
            report.cond_branches + report.promoted_executed + report.promoted_faults;
        let promoted_pct = if total_branches == 0 {
            0.0
        } else {
            (report.promoted_executed + report.promoted_faults) as f64 / total_branches as f64
                * 100.0
        };
        let (p01, _, _) = report.fetch.prediction_demand();
        println!(
            "{:>12} {:>10.2} {:>9.1}% {:>10} {:>11.0}%",
            threshold,
            report.effective_fetch_rate(),
            promoted_pct,
            report.promoted_faults,
            p01 * 100.0
        );
    }

    println!("\nLow thresholds promote aggressively (more bandwidth, more faults);");
    println!("high thresholds promote almost nothing. The paper settles on 64.");
}
