//! Quickstart: simulate one benchmark under the paper's machines and
//! print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use trace_weave::sim::harness::{default_jobs, preset, run_matrix};
use trace_weave::sim::SimConfig;
use trace_weave::workloads::Benchmark;

fn main() {
    // Pick a benchmark from the paper's Table 1 and build its workload
    // (a synthetic program plus input data; see tc-workloads).
    let bench = Benchmark::Gcc;
    let workload = bench.build();
    println!(
        "benchmark: {} ({} static instructions)",
        workload.name(),
        workload.program().len()
    );

    // The three headline machines, by their registry names (the same
    // names `tw sim --config <name>` accepts): the icache-only reference
    // front end, the baseline trace cache, and the trace cache with
    // branch promotion (threshold 64) + trace packing.
    let machines = ["icache", "baseline", "promo-pack"];
    let cells: Vec<(Benchmark, SimConfig)> = machines
        .iter()
        .map(|name| {
            let p = preset(name).expect("registry preset");
            (bench, p.build().with_max_insts(1_000_000))
        })
        .collect();

    // One simulation per machine, run in parallel with deterministic,
    // caller-ordered results.
    let reports = run_matrix(&cells, default_jobs());

    println!(
        "\n{:24} {:>10} {:>8} {:>10} {:>12}",
        "machine", "eff fetch", "IPC", "mispred%", "resolution"
    );
    for (name, report) in machines.iter().zip(&reports) {
        println!(
            "{:24} {:>10.2} {:>8.2} {:>9.2}% {:>11.1}c",
            *name,
            report.effective_fetch_rate(),
            report.ipc(),
            report.cond_mispredict_rate() * 100.0,
            report.avg_resolution_time(),
        );
    }

    println!("\nThe trace cache fetches multiple basic blocks per cycle; branch");
    println!("promotion frees predictor bandwidth and trace packing fills every");
    println!("line — together they lift the effective fetch rate well beyond");
    println!("what either achieves alone (the paper's Figure 10).");
}
