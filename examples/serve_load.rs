//! `serve_load`: a load-test client for `tw serve`.
//!
//! Fires a configurable storm of concurrent requests — a mix of
//! identical jobs (which must coalesce into one computation), distinct
//! jobs, and deliberately malformed bodies — at a running daemon, then
//! checks the invariants the service promises:
//!
//! * every request is answered (zero dropped connections, zero panics);
//! * valid jobs answer 200 (or 503 under explicit load-shedding),
//!   malformed jobs answer 4xx;
//! * responses for one cache key are bit-identical;
//! * the number of *computed* jobs never exceeds the number of distinct
//!   keys (the single-flight cache holds under concurrency);
//! * repeated queries come back as cache hits.
//!
//! ```text
//! tw serve --port 7878 &
//! cargo run --release --example serve_load -- \
//!     --addr 127.0.0.1:7878 --total 1200 --concurrency 100 [--shutdown]
//! ```
//!
//! With `--chaos-rate R` (and `--chaos-seed S`), an in-process
//! `tc-fault` chaos proxy is spliced between the storm and the daemon:
//! connections are reset, throttled, truncated, corrupted, or delayed
//! at rate R, deterministically in the seed. `--retries N` arms the
//! client's bounded jittered-backoff retry (safe: keys are
//! content-addressed), and transport failures that survive all retries
//! are tallied as `faulted` instead of failing the run — but a *wrong*
//! response (bad status for the request class, mismatched body bytes
//! for a key) still fails, chaos or not. The single-flight accounting
//! check is reported but not enforced under chaos: a faulted 503 clears
//! its cache slot, so a retried key may legitimately compute twice.
//!
//! Exits non-zero (with a one-line reason) if any invariant fails, so
//! `verify.sh` and CI can gate on it.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tc_fault::chaos::{ChaosKind, ChaosPlan, ChaosProxy};
use trace_weave::sim::harness::serve::{http_request, http_request_retry, RetryPolicy};
use trace_weave::sim::harness::{parse_json, Value};

struct Options {
    addr: SocketAddr,
    total: usize,
    concurrency: usize,
    insts: u64,
    shutdown: bool,
    /// Extra attempts per request beyond the first.
    retries: u32,
    /// Per-connection chaos-proxy fault probability (0 = no proxy).
    chaos_rate: f64,
    chaos_seed: u64,
    /// Restricts injected kinds (empty = all five).
    chaos_kinds: Vec<ChaosKind>,
}

fn parse_options() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().collect();
    let mut addr: Option<SocketAddr> = None;
    let mut total = 1200usize;
    let mut concurrency = 100usize;
    let mut insts = 20_000u64;
    let mut shutdown = false;
    let mut retries = 0u32;
    let mut chaos_rate = 0.0f64;
    let mut chaos_seed = 42u64;
    let mut chaos_kinds: Vec<ChaosKind> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{}: missing value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--addr" => {
                let raw = value(&mut i)?;
                addr = Some(
                    raw.parse()
                        .map_err(|_| format!("--addr: bad address {raw:?}"))?,
                );
            }
            "--total" => {
                total = value(&mut i)?
                    .parse()
                    .map_err(|_| "--total: want a count".to_string())?;
            }
            "--concurrency" => {
                concurrency = value(&mut i)?
                    .parse()
                    .map_err(|_| "--concurrency: want a count".to_string())?;
            }
            "--insts" => {
                insts = value(&mut i)?
                    .parse()
                    .map_err(|_| "--insts: want a count".to_string())?;
            }
            "--retries" => {
                retries = value(&mut i)?
                    .parse()
                    .map_err(|_| "--retries: want a count".to_string())?;
            }
            "--chaos-rate" => {
                chaos_rate = value(&mut i)?
                    .parse()
                    .map_err(|_| "--chaos-rate: want a probability".to_string())?;
                if !(0.0..=1.0).contains(&chaos_rate) {
                    return Err("--chaos-rate: want a probability in [0, 1]".to_string());
                }
            }
            "--chaos-seed" => {
                chaos_seed = value(&mut i)?
                    .parse()
                    .map_err(|_| "--chaos-seed: want a u64".to_string())?;
            }
            "--chaos-kinds" => {
                for name in value(&mut i)?.split(',') {
                    chaos_kinds.push(ChaosKind::parse(name.trim())?);
                }
            }
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    let addr = addr.ok_or_else(|| "missing --addr HOST:PORT".to_string())?;
    if total == 0 || concurrency == 0 {
        return Err("--total and --concurrency must be at least 1".to_string());
    }
    Ok(Options {
        addr,
        total,
        concurrency,
        insts,
        shutdown,
        retries,
        chaos_rate,
        chaos_seed,
        chaos_kinds,
    })
}

/// The request mix, deterministic in the request index.
enum Shot {
    /// A valid sim job with one of a small set of cache keys.
    Sim {
        bench: &'static str,
        preset: &'static str,
    },
    /// A malformed body; must answer 4xx.
    Malformed(&'static str),
    /// An unknown route; must answer 404.
    BadRoute,
}

fn shot(i: usize) -> Shot {
    const BENCHES: [&str; 4] = ["compress", "li", "go", "perl"];
    const PRESETS: [&str; 2] = ["baseline", "promo-pack"];
    const MALFORMED: [&str; 4] = [
        "",
        "{\"bench\": \"compress\", \"bogus\": 1}",
        "{\"bench\": \"no-such-bench\"}",
        "[[[[[[[[",
    ];
    match i % 10 {
        8 => Shot::Malformed(MALFORMED[(i / 10) % MALFORMED.len()]),
        9 => Shot::BadRoute,
        slot => Shot::Sim {
            bench: BENCHES[slot % BENCHES.len()],
            preset: PRESETS[(slot / BENCHES.len()) % PRESETS.len()],
        },
    }
}

struct Tally {
    ok: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    hits: AtomicU64,
    /// Transport failures surviving all retries (chaos mode only).
    faulted: AtomicU64,
    retried: AtomicU64,
    failures: Mutex<Vec<String>>,
    bodies: Mutex<HashMap<String, Arc<String>>>,
}

struct Run {
    /// Where requests go: the chaos proxy when one is spliced in,
    /// otherwise the daemon itself.
    target: SocketAddr,
    /// Whether transport errors are expected (a chaos proxy is live).
    chaos: bool,
    retries: u32,
    seed: u64,
}

fn run_one(run: &Run, options: &Options, i: usize, tally: &Tally) {
    let fail = |msg: String| {
        if let Ok(mut failures) = tally.failures.lock() {
            if failures.len() < 20 {
                failures.push(msg);
            }
        }
    };
    let faulted = |msg: String| {
        if run.chaos {
            tally.faulted.fetch_add(1, Ordering::Relaxed);
        } else {
            fail(msg);
        }
    };
    let policy = RetryPolicy::retries(run.retries + 1, run.seed ^ i as u64);
    let request = |method: &str, path: &str, body: &str| {
        let first = http_request(run.target, method, path, body);
        match first {
            Ok(resp) if resp.status != 503 => Ok(resp),
            _ if run.retries == 0 => first,
            _ => {
                tally.retried.fetch_add(1, Ordering::Relaxed);
                http_request_retry(run.target, method, path, body, &policy)
            }
        }
    };
    match shot(i) {
        Shot::Sim { bench, preset } => {
            let body = format!(
                "{{\"bench\": \"{bench}\", \"preset\": \"{preset}\", \"insts\": {}}}",
                options.insts
            );
            match request("POST", "/v1/sim", &body) {
                Err(e) => faulted(format!("request {i}: transport error {e}")),
                Ok(resp) if resp.status == 503 => {
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(resp) if resp.status != 200 => {
                    fail(format!("request {i}: status {} for valid job", resp.status));
                }
                Ok(resp) => {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                    if matches!(resp.header("x-cache"), Some("hit" | "disk")) {
                        tally.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    let key = format!("{bench}|{preset}");
                    if let Ok(mut bodies) = tally.bodies.lock() {
                        match bodies.get(&key) {
                            None => {
                                bodies.insert(key, Arc::new(resp.body));
                            }
                            Some(prior) if **prior != resp.body => {
                                fail(format!(
                                    "request {i}: body differs for key {key} ({} vs {} bytes)",
                                    prior.len(),
                                    resp.body.len()
                                ));
                            }
                            Some(_) => {}
                        }
                    }
                }
            }
        }
        Shot::Malformed(body) => match request("POST", "/v1/sim", body) {
            Err(e) => faulted(format!("request {i}: transport error {e}")),
            Ok(resp) if (400..500).contains(&resp.status) => {
                tally.rejected.fetch_add(1, Ordering::Relaxed);
            }
            Ok(resp) => fail(format!(
                "request {i}: malformed body answered {}",
                resp.status
            )),
        },
        Shot::BadRoute => match request("GET", "/v1/no-such-route", "") {
            Err(e) => faulted(format!("request {i}: transport error {e}")),
            Ok(resp) if resp.status == 404 => {
                tally.rejected.fetch_add(1, Ordering::Relaxed);
            }
            Ok(resp) => fail(format!("request {i}: bad route answered {}", resp.status)),
        },
    }
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::from(2);
        }
    };

    // With chaos enabled, splice the proxy between the storm and the
    // daemon. Control-plane traffic (stats, shutdown) keeps talking to
    // the daemon directly — the experiment is the data plane.
    let proxy = if options.chaos_rate > 0.0 {
        match ChaosProxy::spawn(
            options.addr,
            ChaosPlan::with_rate(options.chaos_seed, options.chaos_rate).only(&options.chaos_kinds),
        ) {
            Ok(proxy) => Some(proxy),
            Err(e) => {
                eprintln!("serve_load: cannot spawn chaos proxy: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let run = Run {
        target: proxy.as_ref().map_or(options.addr, ChaosProxy::addr),
        chaos: proxy.is_some(),
        retries: options.retries,
        seed: options.chaos_seed,
    };

    let tally = Tally {
        ok: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        faulted: AtomicU64::new(0),
        retried: AtomicU64::new(0),
        failures: Mutex::new(Vec::new()),
        bodies: Mutex::new(HashMap::new()),
    };
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..options.concurrency {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= options.total {
                    break;
                }
                run_one(&run, &options, i, &tally);
            });
        }
    });

    let ok = tally.ok.load(Ordering::Relaxed);
    let shed = tally.shed.load(Ordering::Relaxed);
    let rejected = tally.rejected.load(Ordering::Relaxed);
    let hits = tally.hits.load(Ordering::Relaxed);
    let faulted = tally.faulted.load(Ordering::Relaxed);
    let retried = tally.retried.load(Ordering::Relaxed);
    let distinct = tally.bodies.lock().map_or(0, |b| b.len());
    println!(
        "serve_load: {} request(s): {ok} ok ({hits} cache hit(s)), {shed} shed, \
         {rejected} rejected, {faulted} faulted, {retried} retried, {distinct} distinct key(s)",
        options.total
    );
    if let Some(proxy) = &proxy {
        let stats = proxy.stats();
        println!(
            "serve_load: chaos proxy: {} connection(s), {} faulted \
             (reset {}, throttle {}, partial {}, corrupt {}, delay {})",
            stats.connections,
            stats.faulted,
            stats.by_kind[0],
            stats.by_kind[1],
            stats.by_kind[2],
            stats.by_kind[3],
            stats.by_kind[4]
        );
        if faulted > stats.faulted {
            eprintln!(
                "serve_load: {} client-visible fault(s) exceed the {} injected",
                faulted, stats.faulted
            );
            return ExitCode::FAILURE;
        }
    }

    // Single-flight check against the server's own accounting. Under
    // chaos this is advisory (a faulted 503 clears its slot, so a
    // retried key may compute twice); without chaos it is enforced.
    let computed = http_request(options.addr, "GET", "/v1/stats", "")
        .ok()
        .and_then(|resp| parse_json(&resp.body).ok())
        .and_then(|doc| {
            doc.get("cache")
                .and_then(|c| c.get("computed"))
                .and_then(Value::as_u64)
        });
    match computed {
        None => {
            eprintln!("serve_load: could not read cache.computed from /v1/stats");
            return ExitCode::FAILURE;
        }
        Some(computed) => {
            println!("serve_load: server computed {computed} job(s) for {distinct} key(s)");
            if computed > distinct as u64 && !run.chaos {
                eprintln!(
                    "serve_load: single-flight violated: {computed} computations for {distinct} keys"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if ok + shed == 0 || hits == 0 {
        eprintln!("serve_load: expected at least one ok response and one cache hit");
        return ExitCode::FAILURE;
    }

    let failures = tally.failures.lock().map(|f| f.clone()).unwrap_or_default();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("serve_load: {f}");
        }
        return ExitCode::FAILURE;
    }

    if let Some(proxy) = proxy {
        proxy.shutdown();
    }
    if options.shutdown {
        match http_request(options.addr, "POST", "/v1/shutdown", "") {
            Ok(resp) if resp.status == 200 => println!("serve_load: shutdown acknowledged"),
            Ok(resp) => {
                eprintln!("serve_load: shutdown answered {}", resp.status);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("serve_load: shutdown failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("serve_load: all invariants held");
    ExitCode::SUCCESS
}
