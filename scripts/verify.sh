#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every change must keep green.
#
#   scripts/verify.sh
#
# Builds offline (the workspace has no external dependencies), runs the
# full test suite, lints the workload programs, and checks formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo build --release --examples"
cargo build --release --offline --examples

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> tw lint --all"
target/release/tw lint --all

echo "==> tw bench --smoke"
bench_artifact="$(mktemp -t tw-bench-smoke.XXXXXX.json)"
trace_artifact="$(mktemp -t tw-trace-smoke.XXXXXX.json)"
trap 'rm -f "$bench_artifact" "$trace_artifact"' EXIT
target/release/tw bench --smoke --out "$bench_artifact"
target/release/tw bench --check "$bench_artifact"

echo "==> tw bench --compare (self)"
# An artifact compared against itself has zero deltas; any exit other
# than success means the compare path itself broke.
target/release/tw bench --compare "$bench_artifact" "$bench_artifact"

echo "==> tw trace (smoke)"
target/release/tw trace --workload compress --preset headline \
  --insts 20000 --limit 10000 --out "$trace_artifact"

echo "==> tw faults (smoke)"
target/release/tw faults --workload compress --preset headline \
  --seed 1 --rate 1e-3 --insts 20000 --json >/dev/null

echo "==> tw sim --fast-forward / --sample (smoke)"
target/release/tw sim --bench compress --config baseline \
  --fast-forward 100000 --insts 20000 --json >/dev/null
target/release/tw sim --bench compress --config headline \
  --insts 200000 --sample 2000/10000 --json >/dev/null

echo "==> rv32i front-end smoke"
# The compiled workload family: the decoder/translator suite, image
# inspection, and the harness surfaces on an rv/ workload. The sampled
# run must agree with the full run on effective fetch rate within the
# documented sampling accuracy contract (DESIGN.md §13: ±10% at a
# dense 40%-measured spec).
cargo test -q --offline -p tc-rv
target/release/tw rv crates/rv/programs/dispatch.rv.bin >/dev/null
target/release/tw sim --bench rv/crc --config headline \
  --insts 100000 --json >/dev/null
target/release/tw analyze --workload rv/bsearch --insts 100000 >/dev/null
rv_full="$(target/release/tw sim --bench rv/qsort --config headline \
  --insts 400000 --json)"
rv_sampled="$(target/release/tw sim --bench rv/qsort --config headline \
  --insts 400000 --sample 20000/50000 --json)"
python3 - "$rv_full" "$rv_sampled" <<'EOF'
import json, sys
full = json.loads(sys.argv[1])["effective_fetch_rate"]
sampled = json.loads(sys.argv[2])["effective_fetch_rate"]
err = abs(sampled - full) / full
if err > 0.10:
    sys.exit(f"FAIL: sampled rv/qsort fetch rate {sampled:.4f} vs full {full:.4f} ({err:.1%} > 10%)")
EOF

echo "==> tw analyze smoke + plan round trip"
plan="$(mktemp -t tw-plan-smoke.XXXXXX.json)"
target/release/tw analyze --workload compress --insts 100000 \
  --out "$plan" >/dev/null
target/release/tw analyze --check "$plan"
target/release/tw sim --bench compress --config promo-pack \
  --insts 20000 --plan "$plan" --json >/dev/null
rm -f "$plan"

echo "==> tw checkpoint save/restore round trip"
ckpt="$(mktemp -t tw-ckpt-smoke.XXXXXX.json)"
direct="$(mktemp -t tw-ff-direct.XXXXXX.json)"
resumed="$(mktemp -t tw-ff-resumed.XXXXXX.json)"
target/release/tw checkpoint save --workload compress --insts 100000 \
  --out "$ckpt" >/dev/null
target/release/tw sim --bench compress --config baseline \
  --fast-forward 100000 --insts 20000 --json > "$direct"
target/release/tw checkpoint restore --from "$ckpt" --config baseline \
  --insts 20000 --json > "$resumed"
# Resuming from the checkpoint must reproduce the direct fast-forward
# run bit-for-bit.
cmp "$direct" "$resumed"
rm -f "$ckpt" "$direct" "$resumed"

echo "==> tw serve load smoke"
# Start the daemon on an ephemeral port, storm it with mixed
# valid/malformed/unknown-route requests, and drain it cleanly. The
# serve_load client exits non-zero if any status code, cache, or
# single-flight invariant breaks; the daemon exits non-zero on panics.
serve_log="$(mktemp -t tw-serve-smoke.XXXXXX.log)"
target/release/tw serve --jobs 4 --insts 20000 > "$serve_log" 2>&1 &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$serve_log" | head -n 1)"
  [ -n "$serve_addr" ] && break
  sleep 0.1
done
if [ -z "$serve_addr" ]; then
  echo "FAIL: tw serve never reported a listening address" >&2
  cat "$serve_log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
target/release/examples/serve_load \
  --addr "$serve_addr" --total 1200 --concurrency 100 --shutdown
if ! wait "$serve_pid"; then
  echo "FAIL: tw serve exited non-zero after drain" >&2
  cat "$serve_log" >&2
  exit 1
fi
rm -f "$serve_log"

echo "==> tw serve chaos + crash recovery smoke"
# The robustness acceptance bar end to end: storm the daemon through a
# seeded in-process chaos proxy (resets, throttling, truncation,
# corruption, accept delays) with the retrying client, then kill -9 the
# daemon and restart it on the same --cache-dir — a previously computed
# key must come back from the persistent tier bit-identical, without
# recomputation.
cache_dir="$(mktemp -d -t tw-serve-cache.XXXXXX)"
chaos_log="$(mktemp -t tw-serve-chaos.XXXXXX.log)"
pre_kill="$(mktemp -t tw-body-prekill.XXXXXX.json)"
post_kill="$(mktemp -t tw-body-postkill.XXXXXX.json)"
wait_for_serve_addr() {
  # Scrapes the listening address from a daemon log, bounded at ~10 s.
  local log="$1" pid="$2" addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log" | head -n 1)"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "FAIL: tw serve never reported a listening address" >&2
    cat "$log" >&2
    kill "$pid" 2>/dev/null || true
    exit 1
  fi
  printf '%s' "$addr"
}
fetch_sim_body() {
  # fetch_sim_body ADDR OUT_FILE WANT_X_CACHE: one /v1/sim request with
  # a hard timeout; checks the cache disposition and saves the body.
  python3 - "$1" "$2" "$3" <<'EOF'
import http.client, json, sys
addr, out_path, want = sys.argv[1], sys.argv[2], sys.argv[3]
host, port = addr.rsplit(":", 1)
conn = http.client.HTTPConnection(host, int(port), timeout=60)
conn.request("POST", "/v1/sim",
             json.dumps({"bench": "compress", "preset": "baseline", "insts": 20000}))
resp = conn.getresponse()
data = resp.read()
if resp.status != 200:
    sys.exit(f"FAIL: /v1/sim answered {resp.status}")
got = resp.getheader("x-cache")
if want != "any" and got != want:
    sys.exit(f"FAIL: expected x-cache {want}, got {got}")
with open(out_path, "wb") as f:
    f.write(data)
EOF
}
serve_shutdown() {
  python3 - "$1" <<'EOF'
import http.client, sys
host, port = sys.argv[1].rsplit(":", 1)
conn = http.client.HTTPConnection(host, int(port), timeout=30)
conn.request("POST", "/v1/shutdown", "")
if conn.getresponse().status != 200:
    sys.exit("FAIL: shutdown refused")
EOF
}
target/release/tw serve --jobs 4 --insts 20000 --cache-dir "$cache_dir" > "$chaos_log" 2>&1 &
chaos_pid=$!
chaos_addr="$(wait_for_serve_addr "$chaos_log" "$chaos_pid")"
target/release/examples/serve_load \
  --addr "$chaos_addr" --total 1200 --concurrency 100 \
  --retries 4 --chaos-rate 0.01 --chaos-seed 42
fetch_sim_body "$chaos_addr" "$pre_kill" any
kill -9 "$chaos_pid"
wait "$chaos_pid" 2>/dev/null || true
target/release/tw serve --jobs 4 --insts 20000 --cache-dir "$cache_dir" > "$chaos_log" 2>&1 &
chaos_pid=$!
chaos_addr="$(wait_for_serve_addr "$chaos_log" "$chaos_pid")"
# After an unclean death, the same key must be served from the
# persistent tier — and byte-for-byte identical to the pre-kill body.
fetch_sim_body "$chaos_addr" "$post_kill" disk
cmp "$pre_kill" "$post_kill"
serve_shutdown "$chaos_addr"
if ! wait "$chaos_pid"; then
  echo "FAIL: restarted tw serve exited non-zero after drain" >&2
  cat "$chaos_log" >&2
  exit 1
fi
rm -rf "$chaos_log" "$pre_kill" "$post_kill" "$cache_dir"

echo "==> error layer exit codes"
# Malformed inputs must fail with the conventional codes (2 usage,
# 1 runtime) and a one-line diagnostic — never a panic (code 101).
expect_exit() {
  local want="$1"; shift
  local got=0
  "$@" >/dev/null 2>&1 || got=$?
  if [ "$got" != "$want" ]; then
    echo "FAIL: '$*' exited $got, expected $want" >&2
    exit 1
  fi
}
expect_exit 2 target/release/tw frobnicate
expect_exit 2 target/release/tw sim --bench gcc --config no-such-preset
expect_exit 2 target/release/tw faults --workload gcc --rate -1
expect_exit 2 target/release/tw serve --jobs 0
expect_exit 2 env TW_JOBS=banana target/release/tw list
bad_asm="$(mktemp -t tw-bad-asm.XXXXXX.s)"
printf 'li t0, 0\nfrobnicate t1\n' > "$bad_asm"
expect_exit 1 target/release/tw lint --asm "$bad_asm"
printf '{"schema":"tw-bench/v1","cells":[' > "$bench_artifact.trunc"
expect_exit 1 target/release/tw bench --check "$bench_artifact.trunc"
printf '{"schema":"tw-plan/v9"}' > "$bench_artifact.plan"
expect_exit 1 target/release/tw analyze --check "$bench_artifact.plan"
printf 'not an rv image' > "$bench_artifact.rvbin"
expect_exit 2 target/release/tw rv "$bench_artifact.rvbin"
expect_exit 2 target/release/tw sim --bench rv/no-such --config headline
expect_exit 1 target/release/tw rv /nonexistent/missing.rv.bin
rm -f "$bad_asm" "$bench_artifact.trunc" "$bench_artifact.plan" "$bench_artifact.rvbin"

echo "==> cargo fmt --check"
cargo fmt --check

echo "OK: build + tests + lint + bench smoke + compare + trace smoke + faults smoke + fast-forward/checkpoint smoke + rv32i smoke + analyze/plan smoke + serve load smoke + chaos/crash-recovery smoke + error layer + formatting all clean"
