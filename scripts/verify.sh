#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every change must keep green.
#
#   scripts/verify.sh
#
# Builds offline (the workspace has no external dependencies), runs the
# full test suite, lints the workload programs, and checks formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo build --release --examples"
cargo build --release --offline --examples

echo "==> cargo test -q"
cargo test -q --offline

echo "==> tw lint --all"
target/release/tw lint --all

echo "==> cargo fmt --check"
cargo fmt --check

echo "OK: build + tests + lint + formatting all clean"
