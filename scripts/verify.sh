#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every change must keep green.
#
#   scripts/verify.sh
#
# Builds offline (the workspace has no external dependencies), runs the
# full test suite, and checks formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "OK: build + tests + formatting all clean"
