#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every change must keep green.
#
#   scripts/verify.sh
#
# Builds offline (the workspace has no external dependencies), runs the
# full test suite, lints the workload programs, and checks formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo build --release --examples"
cargo build --release --offline --examples

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> tw lint --all"
target/release/tw lint --all

echo "==> tw bench --smoke"
bench_artifact="$(mktemp -t tw-bench-smoke.XXXXXX.json)"
trace_artifact="$(mktemp -t tw-trace-smoke.XXXXXX.json)"
trap 'rm -f "$bench_artifact" "$trace_artifact"' EXIT
target/release/tw bench --smoke --out "$bench_artifact"
target/release/tw bench --check "$bench_artifact"

echo "==> tw bench --compare (self)"
# An artifact compared against itself has zero deltas; any exit other
# than success means the compare path itself broke.
target/release/tw bench --compare "$bench_artifact" "$bench_artifact"

echo "==> tw trace (smoke)"
target/release/tw trace --workload compress --preset headline \
  --insts 20000 --limit 10000 --out "$trace_artifact"

echo "==> cargo fmt --check"
cargo fmt --check

echo "OK: build + tests + lint + bench smoke + compare + trace smoke + formatting all clean"
