//! Cross-crate integration tests: the paper's qualitative claims, checked
//! end to end on scaled-down runs.

use trace_weave::core::PackingPolicy;
use trace_weave::sim::{Processor, SimConfig, SimReport};
use trace_weave::workloads::Benchmark;

const BUDGET: u64 = 80_000;

fn run(bench: Benchmark, config: SimConfig) -> SimReport {
    let workload = bench.build_scaled(2);
    Processor::new(config.with_max_insts(BUDGET)).run(&workload)
}

fn suite_mean(config: &SimConfig, metric: impl Fn(&SimReport) -> f64) -> f64 {
    let mut sum = 0.0;
    for b in Benchmark::ALL {
        sum += metric(&run(b, config.clone()));
    }
    sum / Benchmark::ALL.len() as f64
}

/// Paper §1/Fig 10: both techniques together beat baseline, and each
/// alone beats baseline, on the suite-average effective fetch rate.
#[test]
fn promotion_and_packing_beat_baseline_fetch_rate() {
    let base = suite_mean(&SimConfig::baseline(), SimReport::effective_fetch_rate);
    let promo = suite_mean(&SimConfig::promotion(64), SimReport::effective_fetch_rate);
    let pack = suite_mean(
        &SimConfig::packing(PackingPolicy::Unregulated),
        SimReport::effective_fetch_rate,
    );
    let both = suite_mean(
        &SimConfig::headline_fetch(),
        SimReport::effective_fetch_rate,
    );
    assert!(promo > base, "promotion {promo:.2} <= baseline {base:.2}");
    assert!(pack > base, "packing {pack:.2} <= baseline {base:.2}");
    assert!(
        both > promo && both > pack,
        "combined {both:.2} not best (p={promo:.2}, k={pack:.2})"
    );
    let gain = (both - base) / base;
    assert!(
        gain > 0.08,
        "combined gain {:.1}% too small vs the paper's 17%",
        gain * 100.0
    );
}

/// Paper §1: the trace cache delivers roughly twice the icache's fetch
/// rate (one fetch block per cycle vs several).
#[test]
fn trace_cache_doubles_icache_fetch_rate() {
    let icache = suite_mean(&SimConfig::icache(), SimReport::effective_fetch_rate);
    let base = suite_mean(&SimConfig::baseline(), SimReport::effective_fetch_rate);
    assert!(
        base > 1.5 * icache,
        "trace cache {base:.2} not well above icache {icache:.2}"
    );
}

/// Paper Table 3: promotion shifts prediction demand toward 0-or-1
/// predictions per fetch.
#[test]
fn promotion_cuts_prediction_demand() {
    let d0 = suite_mean(&SimConfig::baseline(), |r| r.fetch.prediction_demand().0);
    let d1 = suite_mean(&SimConfig::promotion(64), |r| r.fetch.prediction_demand().0);
    assert!(
        d1 > d0 + 0.1,
        "0/1-prediction fraction {d0:.2} -> {d1:.2} insufficient"
    );
}

/// Paper Fig 16 vs Fig 11: perfect memory disambiguation unlocks more of
/// the front end's potential (suite-average IPC strictly improves).
#[test]
fn perfect_disambiguation_raises_ipc() {
    let real = suite_mean(&SimConfig::headline_perf(), SimReport::ipc);
    let perfect = suite_mean(
        &SimConfig::headline_perf().with_perfect_disambiguation(),
        SimReport::ipc,
    );
    assert!(
        perfect > real,
        "perfect {perfect:.2} <= realistic {real:.2}"
    );
}

/// Resolution time grows when the front end runs further ahead (paper
/// Fig 15's mechanism), checked on the suite average.
#[test]
fn faster_fetch_raises_resolution_time() {
    let base = suite_mean(&SimConfig::baseline(), SimReport::avg_resolution_time);
    let both = suite_mean(&SimConfig::headline_perf(), SimReport::avg_resolution_time);
    // (At full scale the suite average *rises* ~5%; short warm-up-heavy
    // runs are noisier, so this guard only rejects a collapse.)
    assert!(
        both > base * 0.85,
        "resolution time should not collapse: {base:.1} -> {both:.1}"
    );
}

/// Promoted branches must actually flow through the machinery: promoted
/// executions dominate faults at threshold 64.
#[test]
fn promotion_mechanics_are_wired() {
    let rep = run(Benchmark::Ijpeg, SimConfig::promotion(64));
    assert!(rep.promoted_executed > 0, "no promoted branches executed");
    let (promotions, _) = rep.promotions.expect("bias table active");
    assert!(promotions > 0);
    assert!(
        rep.promoted_executed > 20 * rep.promoted_faults.max(1),
        "faults too frequent: {} executed vs {} faults",
        rep.promoted_executed,
        rep.promoted_faults
    );
    assert!(rep.fetch.promoted_fetched > 0);
}

/// Every simulated instruction is accounted: instructions equal the
/// oracle stream prefix and cycles bound the accounting.
#[test]
fn reports_are_consistent() {
    let rep = run(Benchmark::Perl, SimConfig::headline_fetch());
    assert!(rep.instructions >= BUDGET);
    assert!(
        rep.cycles >= rep.instructions / 16,
        "IPC above the machine width"
    );
    assert!(rep.accounting.total() <= rep.cycles + 1);
    assert!(rep.effective_fetch_rate() <= 16.0);
}

/// The whole pipeline is deterministic: identical runs, identical
/// reports.
#[test]
fn determinism_across_identical_runs() {
    let a = run(Benchmark::Gnuchess, SimConfig::headline_fetch());
    let b = run(Benchmark::Gnuchess, SimConfig::headline_fetch());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.cond_mispredicts, b.cond_mispredicts);
    assert_eq!(a.promoted_faults, b.promoted_faults);
    assert_eq!(a.accounting, b.accounting);
}

/// Cost-regulated packing bounds the redundancy cost: its trace-cache
/// miss cycles never exceed unregulated packing's by more than noise,
/// and its fetch rate stays above promotion-only (paper Table 4's
/// trade-off).
#[test]
fn cost_regulation_trades_sanely() {
    let mut worse = 0;
    for bench in [Benchmark::Gcc, Benchmark::Tex, Benchmark::Go] {
        let unreg = run(
            bench,
            SimConfig::promotion_packing(64, PackingPolicy::Unregulated),
        );
        let cost = run(
            bench,
            SimConfig::promotion_packing(64, PackingPolicy::CostRegulated),
        );
        if cost.cache_miss_cycles() > unreg.cache_miss_cycles() {
            worse += 1;
        }
        assert!(
            cost.effective_fetch_rate() > 0.9 * unreg.effective_fetch_rate(),
            "{bench}: cost-regulation gave up too much fetch rate"
        );
    }
    assert!(
        worse <= 1,
        "cost regulation raised miss cycles on {worse}/3 benchmarks"
    );
}
