//! Randomized tests on the fill unit: for any retired instruction stream
//! and any packing policy, the finalized segments must exactly partition
//! the stream — no instruction lost, duplicated, or reordered — and obey
//! every structural limit.
//!
//! Inputs come from the vendored seeded generator
//! (`trace_weave::workloads::rng`), so every run explores the same cases
//! and failures are reproducible from the reported seed.

use trace_weave::core::{FillUnit, PackingPolicy};
use trace_weave::isa::{Addr, Cond, ExecRecord, Instr, Reg};
use trace_weave::predict::{BiasConfig, BiasTable};
use trace_weave::workloads::rng::{Rng, Xoshiro256PlusPlus};

/// Builds a well-formed retire stream from block descriptors: each block
/// is `size` straight-line instructions ending with a terminator chosen
/// by `kind`. Addresses are contiguous (branches jump forward past a
/// gap, mimicking taken branches).
fn stream_from_blocks(blocks: &[(u8, u8)]) -> Vec<ExecRecord> {
    let mut out = Vec::new();
    let mut pc = 0u32;
    for &(size, kind) in blocks {
        let size = usize::from(size % 14) + 1;
        for i in 0..size {
            let last = i == size - 1;
            let (instr, taken, next) = if !last {
                (Instr::Nop, false, pc + 1)
            } else {
                match kind % 5 {
                    // Taken conditional branch jumping forward.
                    0 => (
                        Instr::Branch {
                            cond: Cond::Eq,
                            rs1: Reg::T0,
                            rs2: Reg::T1,
                            target: Addr::new(pc + 7),
                        },
                        true,
                        pc + 7,
                    ),
                    // Not-taken conditional branch.
                    1 => (
                        Instr::Branch {
                            cond: Cond::Ne,
                            rs1: Reg::T0,
                            rs2: Reg::T1,
                            target: Addr::new(pc + 9),
                        },
                        false,
                        pc + 1,
                    ),
                    // Return (segment-ending).
                    2 => (Instr::Ret, false, pc + 3),
                    // Trap (segment-ending).
                    3 => (Instr::Trap { code: 1 }, false, pc + 1),
                    // Call (does NOT end a block; pad with a branch after).
                    _ => (
                        Instr::Branch {
                            cond: Cond::Lt,
                            rs1: Reg::T0,
                            rs2: Reg::T1,
                            target: Addr::new(pc + 5),
                        },
                        true,
                        pc + 5,
                    ),
                }
            };
            out.push(ExecRecord {
                pc: Addr::new(pc),
                instr,
                next_pc: Addr::new(next),
                taken,
                mem_addr: None,
            });
            pc = next;
        }
    }
    out
}

fn arb_blocks(r: &mut Xoshiro256PlusPlus, max_blocks: usize) -> Vec<(u8, u8)> {
    let n = r.gen_range(1..max_blocks);
    (0..n)
        .map(|_| (r.next_u32() as u8, (r.next_u32() >> 8) as u8))
        .collect()
}

fn policies() -> [PackingPolicy; 5] {
    [
        PackingPolicy::Atomic,
        PackingPolicy::Unregulated,
        PackingPolicy::Chunk(2),
        PackingPolicy::Chunk(4),
        PackingPolicy::CostRegulated,
    ]
}

/// Segments partition the retired stream exactly (up to the pending
/// tail the fill unit is still accumulating), for every policy, with
/// and without promotion.
#[test]
fn segments_partition_the_retire_stream() {
    for case in 0u64..64 {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(0xF111_0000 + case);
        let blocks = arb_blocks(&mut r, 80);
        let promote = r.gen_bool(0.5);
        let stream = stream_from_blocks(&blocks);
        for policy in policies() {
            let bias = promote.then(|| {
                BiasTable::new(BiasConfig {
                    entries: 256,
                    threshold: 4,
                    counter_bits: 8,
                    tagged: true,
                })
            });
            let mut fill = FillUnit::new(policy, bias);
            let mut rebuilt: Vec<(u32, bool)> = Vec::new();
            for rec in &stream {
                fill.retire(rec);
                while let Some(seg) = fill.pop_segment() {
                    // Structural limits.
                    assert!(!seg.is_empty() && seg.len() <= 16, "case {case}");
                    assert!(seg.dynamic_branch_count() <= 3, "case {case}");
                    for si in seg.insts() {
                        rebuilt.push((si.pc.raw(), si.taken));
                    }
                }
            }
            let expected: Vec<(u32, bool)> =
                stream.iter().map(|rec| (rec.pc.raw(), rec.taken)).collect();
            assert!(
                rebuilt.len() <= expected.len(),
                "case {case}, {policy}: more instructions out than in"
            );
            assert_eq!(
                &rebuilt[..],
                &expected[..rebuilt.len()],
                "case {case}: {policy} reordered or corrupted the stream"
            );
            // The un-finalized tail is bounded by one pending segment +
            // one open block.
            assert!(expected.len() - rebuilt.len() <= 32, "case {case}");
        }
    }
}

/// Embedded paths are internally consistent: within a segment, each
/// instruction's `embedded_next` equals the next instruction's pc.
#[test]
fn segments_are_logically_contiguous() {
    for case in 0u64..64 {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(0xF111_1000 + case);
        let blocks = arb_blocks(&mut r, 60);
        let stream = stream_from_blocks(&blocks);
        let mut fill = FillUnit::new(PackingPolicy::Unregulated, None);
        for rec in &stream {
            fill.retire(rec);
            while let Some(seg) = fill.pop_segment() {
                for pair in seg.insts().windows(2) {
                    assert_eq!(
                        pair[0].embedded_next(),
                        pair[1].pc,
                        "case {case}: segment path broken"
                    );
                }
            }
        }
    }
}
