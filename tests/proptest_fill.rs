//! Property tests on the fill unit: for any retired instruction stream
//! and any packing policy, the finalized segments must exactly partition
//! the stream — no instruction lost, duplicated, or reordered — and obey
//! every structural limit.

use proptest::prelude::*;
use trace_weave::core::{FillUnit, PackingPolicy};
use trace_weave::isa::{Addr, Cond, ExecRecord, Instr, Reg};
use trace_weave::predict::{BiasConfig, BiasTable};

/// Builds a well-formed retire stream from block descriptors: each block
/// is `size` straight-line instructions ending with a terminator chosen
/// by `kind`. Addresses are contiguous (branches jump forward past a
/// gap, mimicking taken branches).
fn stream_from_blocks(blocks: &[(u8, u8)]) -> Vec<ExecRecord> {
    let mut out = Vec::new();
    let mut pc = 0u32;
    for &(size, kind) in blocks {
        let size = usize::from(size % 14) + 1;
        for i in 0..size {
            let last = i == size - 1;
            let (instr, taken, next) = if !last {
                (Instr::Nop, false, pc + 1)
            } else {
                match kind % 5 {
                    // Taken conditional branch jumping forward.
                    0 => (
                        Instr::Branch {
                            cond: Cond::Eq,
                            rs1: Reg::T0,
                            rs2: Reg::T1,
                            target: Addr::new(pc + 7),
                        },
                        true,
                        pc + 7,
                    ),
                    // Not-taken conditional branch.
                    1 => (
                        Instr::Branch {
                            cond: Cond::Ne,
                            rs1: Reg::T0,
                            rs2: Reg::T1,
                            target: Addr::new(pc + 9),
                        },
                        false,
                        pc + 1,
                    ),
                    // Return (segment-ending).
                    2 => (Instr::Ret, false, pc + 3),
                    // Trap (segment-ending).
                    3 => (Instr::Trap { code: 1 }, false, pc + 1),
                    // Call (does NOT end a block; pad with a branch after).
                    _ => (
                        Instr::Branch {
                            cond: Cond::Lt,
                            rs1: Reg::T0,
                            rs2: Reg::T1,
                            target: Addr::new(pc + 5),
                        },
                        true,
                        pc + 5,
                    ),
                }
            };
            out.push(ExecRecord {
                pc: Addr::new(pc),
                instr,
                next_pc: Addr::new(next),
                taken,
                mem_addr: None,
            });
            pc = next;
        }
    }
    out
}

fn policies() -> [PackingPolicy; 5] {
    [
        PackingPolicy::Atomic,
        PackingPolicy::Unregulated,
        PackingPolicy::Chunk(2),
        PackingPolicy::Chunk(4),
        PackingPolicy::CostRegulated,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Segments partition the retired stream exactly (up to the pending
    /// tail the fill unit is still accumulating), for every policy, with
    /// and without promotion.
    #[test]
    fn segments_partition_the_retire_stream(
        blocks in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..80),
        promote in any::<bool>(),
    ) {
        let stream = stream_from_blocks(&blocks);
        for policy in policies() {
            let bias = promote.then(|| {
                BiasTable::new(BiasConfig { entries: 256, threshold: 4, counter_bits: 8, tagged: true })
            });
            let mut fill = FillUnit::new(policy, bias);
            let mut rebuilt: Vec<(u32, bool)> = Vec::new();
            for rec in &stream {
                fill.retire(rec);
                while let Some(seg) = fill.pop_segment() {
                    // Structural limits.
                    prop_assert!(seg.len() >= 1 && seg.len() <= 16);
                    prop_assert!(seg.dynamic_branch_count() <= 3);
                    for si in seg.insts() {
                        rebuilt.push((si.pc.raw(), si.taken));
                    }
                }
            }
            let expected: Vec<(u32, bool)> =
                stream.iter().map(|r| (r.pc.raw(), r.taken)).collect();
            prop_assert!(
                rebuilt.len() <= expected.len(),
                "{policy}: more instructions out than in"
            );
            prop_assert_eq!(
                &rebuilt[..],
                &expected[..rebuilt.len()],
                "{} reordered or corrupted the stream", policy
            );
            // The un-finalized tail is bounded by one pending segment +
            // one open block.
            prop_assert!(expected.len() - rebuilt.len() <= 32);
        }
    }

    /// Embedded paths are internally consistent: within a segment, each
    /// instruction's `embedded_next` equals the next instruction's pc.
    #[test]
    fn segments_are_logically_contiguous(
        blocks in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..60),
    ) {
        let stream = stream_from_blocks(&blocks);
        let mut fill = FillUnit::new(PackingPolicy::Unregulated, None);
        for rec in &stream {
            fill.retire(rec);
            while let Some(seg) = fill.pop_segment() {
                for pair in seg.insts().windows(2) {
                    prop_assert_eq!(
                        pair[0].embedded_next(),
                        pair[1].pc,
                        "segment path broken"
                    );
                }
            }
        }
    }
}
