//! End-to-end CLI error-layer tests: every malformed input must exit
//! non-zero with a single `tw: <message>` diagnostic on stderr — no
//! panic, no backtrace, and the conventional exit-code split (2 for
//! usage errors, 1 for runtime failures).

use std::path::PathBuf;
use std::process::{Command, Output};

fn tw(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tw"))
        .args(args)
        .output()
        .expect("tw binary runs")
}

fn stderr_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).trim_end().to_string()
}

/// Asserts the failure contract: given exit code, one-line `tw:`
/// diagnostic, no panic artifacts.
fn assert_diagnostic(out: &Output, code: i32) {
    assert_eq!(
        out.status.code(),
        Some(code),
        "stderr: {}",
        stderr_line(out)
    );
    let err = stderr_line(out);
    assert_eq!(err.lines().count(), 1, "not a one-line diagnostic: {err:?}");
    assert!(err.starts_with("tw: "), "missing tw: prefix: {err:?}");
    assert!(!err.contains("panicked"), "panic leaked: {err:?}");
    assert!(!err.contains("RUST_BACKTRACE"), "backtrace leaked: {err:?}");
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tw-cli-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp file writes");
    path
}

#[test]
fn unknown_command_and_flags_are_usage_errors() {
    assert_diagnostic(&tw(&["frobnicate"]), 2);
    assert_diagnostic(&tw(&["sim", "--bogus-flag"]), 2);
    assert_diagnostic(&tw(&["sim", "--bench"]), 2); // missing value
    assert_diagnostic(&tw(&["sim", "--bench", "gcc", "--config", "nope"]), 2);
    assert_diagnostic(
        &tw(&[
            "sim", "--bench", "gcc", "--config", "headline", "--insts", "lots",
        ]),
        2,
    );
    assert_diagnostic(&tw(&["faults", "--workload", "gcc"]), 2); // no rate/cycles
    assert_diagnostic(
        &tw(&[
            "faults",
            "--workload",
            "gcc",
            "--rate",
            "1e-4",
            "--targets",
            "bogus",
        ]),
        2,
    );
    assert_diagnostic(
        &tw(&["compare", "--bench", "gcc", "--timeout-secs", "0"]),
        2,
    );
}

#[test]
fn malformed_asm_is_a_runtime_error_with_position() {
    let path = temp_file("bad.s", "li t0, 0\nfrobnicate t1\n");
    let out = tw(&["lint", "--asm", path.to_str().expect("utf-8 path")]);
    let _ = std::fs::remove_file(&path);
    assert_diagnostic(&out, 1);
    let err = stderr_line(&out);
    assert!(
        err.contains("line 2:1"),
        "no position in diagnostic: {err:?}"
    );
    assert!(err.contains("frobnicate"), "no offending token: {err:?}");
}

#[test]
fn valid_asm_lints_clean() {
    let path = temp_file("good.s", ".entry main\nmain:\n  li t0, 3\n  halt\n");
    let out = tw(&["lint", "--asm", path.to_str().expect("utf-8 path")]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_line(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 instruction(s)"), "{stdout}");
}

#[test]
fn truncated_bench_artifact_is_a_runtime_error() {
    let good = r#"{"schema":"tw-bench/v1","cells":[{"benchmark":"gcc","config":"icache","ns_per_cycle":1.0}]}"#;
    let truncated = &good[..good.len() / 2];
    let good_path = temp_file("good.json", good);
    let bad_path = temp_file("trunc.json", truncated);
    let check = tw(&["bench", "--check", bad_path.to_str().expect("utf-8 path")]);
    let cmp = tw(&[
        "bench",
        "--compare",
        good_path.to_str().expect("utf-8 path"),
        bad_path.to_str().expect("utf-8 path"),
    ]);
    let missing = tw(&["bench", "--check", "/nonexistent/definitely-missing.json"]);
    let _ = std::fs::remove_file(&good_path);
    let _ = std::fs::remove_file(&bad_path);
    assert_diagnostic(&check, 1);
    assert_diagnostic(&cmp, 1);
    assert_diagnostic(&missing, 1);
}

#[test]
fn analyze_emits_a_valid_plan_and_sim_consumes_it() {
    // analyze → plan file → analyze --check → sim --plan, end to end.
    let out = tw(&[
        "analyze",
        "--workload",
        "compress",
        "--insts",
        "100000",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_line(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"tw-plan/v1\""), "{stdout}");
    assert!(stdout.contains("\"branches\""), "{stdout}");

    let path = temp_file("plan.json", &stdout);
    let p = path.to_str().expect("utf-8 path");
    let check = tw(&["analyze", "--check", p]);
    assert_eq!(
        check.status.code(),
        Some(0),
        "stderr: {}",
        stderr_line(&check)
    );
    let sim = tw(&[
        "sim",
        "--bench",
        "compress",
        "--config",
        "promo-pack",
        "--insts",
        "30000",
        "--plan",
        p,
        "--json",
    ]);
    let wrong = tw(&[
        "sim",
        "--bench",
        "gcc",
        "--config",
        "promo-pack",
        "--insts",
        "30000",
        "--plan",
        p,
    ]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(sim.status.code(), Some(0), "stderr: {}", stderr_line(&sim));
    let sim_out = String::from_utf8_lossy(&sim.stdout);
    assert!(sim_out.contains("\"plan\""), "no plan stats: {sim_out}");
    // A plan profiled for compress must be rejected on gcc.
    assert_diagnostic(&wrong, 1);
}

#[test]
fn malformed_plans_are_runtime_errors() {
    let bad = temp_file("bad-plan.json", "{\"schema\": \"tw-plan/v9\"}");
    let p = bad.to_str().expect("utf-8 path");
    let check = tw(&["analyze", "--check", p]);
    let sim = tw(&[
        "sim",
        "--bench",
        "compress",
        "--config",
        "promotion",
        "--plan",
        p,
    ]);
    let _ = std::fs::remove_file(&bad);
    assert_diagnostic(&check, 1);
    assert_diagnostic(&sim, 1);
    let missing = tw(&["analyze", "--check", "/nonexistent/definitely-missing.json"]);
    assert_diagnostic(&missing, 1);
    // bench only accepts `--plan auto` (one plan per benchmark).
    assert_diagnostic(&tw(&["bench", "--smoke", "--plan", "plan.json"]), 2);
    // analyze without a workload is a usage error.
    assert_diagnostic(&tw(&["analyze"]), 2);
}

#[test]
fn faults_subcommand_reports_deterministic_counters() {
    let run = |seed: &str| {
        let out = tw(&[
            "faults",
            "--workload",
            "compress",
            "--preset",
            "headline",
            "--seed",
            seed,
            "--rate",
            "1e-3",
            "--insts",
            "20000",
            "--json",
        ]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_line(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(stdout.contains("\"fault\""), "no fault stats: {stdout}");
        assert!(stdout.contains("\"injected\""), "{stdout}");
        assert!(stdout.contains("\"escaped\""), "{stdout}");
        stdout
    };
    // Same seed twice: bit-identical output. Different seed: same shape.
    let a = run("11");
    let b = run("11");
    assert_eq!(a, b, "same seed+plan must reproduce exactly");
    let _ = run("12");
}

/// `tw` with an overridden `TW_JOBS` environment value.
fn tw_env(args: &[&str], key: &str, value: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tw"))
        .args(args)
        .env(key, value)
        .output()
        .expect("tw binary runs")
}

#[test]
fn jobs_flag_enforces_the_range_contract() {
    assert_diagnostic(&tw(&["compare", "--bench", "gcc", "--jobs", "0"]), 2);
    assert_diagnostic(&tw(&["compare", "--bench", "gcc", "--jobs", "1000000"]), 2);
    assert_diagnostic(&tw(&["compare", "--bench", "gcc", "--jobs", "-3"]), 2);
    assert_diagnostic(&tw(&["compare", "--bench", "gcc", "--jobs", "many"]), 2);
    let err = stderr_line(&tw(&["compare", "--bench", "gcc", "--jobs", "1000000"]));
    assert!(err.contains("cap"), "names the cap: {err}");
}

#[test]
fn malformed_tw_jobs_is_a_usage_error_not_a_silent_fallback() {
    // `list` exercises flag parsing without simulating anything.
    assert_diagnostic(&tw_env(&["list"], "TW_JOBS", "abc"), 2);
    assert_diagnostic(&tw_env(&["list"], "TW_JOBS", "0"), 2);
    assert_diagnostic(&tw_env(&["list"], "TW_JOBS", "1000000"), 2);
    let err = stderr_line(&tw_env(&["list"], "TW_JOBS", "abc"));
    assert!(err.contains("TW_JOBS"), "names the variable: {err}");

    // Benign spellings still work: unset, empty-trimmed digits, spaces.
    let ok = tw_env(&["list"], "TW_JOBS", " 8 ");
    assert_eq!(ok.status.code(), Some(0), "stderr: {}", stderr_line(&ok));
}

fn temp_bytes(name: &str, contents: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tw-cli-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp file writes");
    path
}

#[test]
fn rv_inspects_a_committed_image() {
    // Committed workload images live in the source tree; integration
    // tests run with the package root as the working directory.
    let out = tw(&["rv", "crates/rv/programs/crc.rv.bin"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_line(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rv instructions"), "{stdout}");
    assert!(stdout.contains("translated"), "{stdout}");
    assert!(stdout.contains("expansion"), "{stdout}");
}

#[test]
fn malformed_rv_images_are_structured_usage_errors() {
    // Not an image at all.
    let garbage = temp_bytes("garbage.rv.bin", b"ELF\x7fdefinitely not RV32");
    let out = tw(&["rv", garbage.to_str().expect("utf-8 path")]);
    let _ = std::fs::remove_file(&garbage);
    assert_diagnostic(&out, 2);
    assert!(stderr_line(&out).contains("magic"), "{}", stderr_line(&out));

    // A valid image truncated mid-segment.
    let whole = std::fs::read("crates/rv/programs/fib.rv.bin").expect("committed image");
    let cut = temp_bytes("trunc.rv.bin", &whole[..whole.len() - 5]);
    let out = tw(&["rv", cut.to_str().expect("utf-8 path")]);
    let _ = std::fs::remove_file(&cut);
    assert_diagnostic(&out, 2);
    assert!(
        stderr_line(&out).contains("truncated"),
        "{}",
        stderr_line(&out)
    );

    // Missing file is a runtime error; missing operand a usage error.
    assert_diagnostic(&tw(&["rv", "/nonexistent/definitely-missing.rv.bin"]), 1);
    assert_diagnostic(&tw(&["rv"]), 2);
    assert_diagnostic(&tw(&["rv", "a.rv.bin", "b.rv.bin"]), 2);
}

#[test]
fn rv_workloads_reach_the_sim_surface_by_family_name() {
    let out = tw(&[
        "sim", "--bench", "rv/crc", "--config", "headline", "--insts", "30000", "--json",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_line(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"benchmark\": \"rv/crc\""), "{stdout}");
    // Unknown rv/ names get the same usage diagnostic as synthetic ones.
    assert_diagnostic(
        &tw(&["sim", "--bench", "rv/nope", "--config", "headline"]),
        2,
    );
}

#[test]
fn serve_flags_are_validated_before_binding() {
    assert_diagnostic(&tw(&["serve", "--queue-depth", "0"]), 2);
    assert_diagnostic(&tw(&["serve", "--cache-entries", "0"]), 2);
    assert_diagnostic(&tw(&["serve", "--max-conns", "0"]), 2);
    assert_diagnostic(&tw(&["serve", "--max-body", "0"]), 2);
    assert_diagnostic(&tw(&["serve", "--max-insts", "0"]), 2);
    assert_diagnostic(&tw(&["serve", "--port", "99999"]), 2);
    assert_diagnostic(
        &tw(&["serve", "--addr", "127.0.0.1:0", "--port", "8080"]),
        2,
    );
    assert_diagnostic(
        &tw(&["serve", "--insts", "2000000", "--max-insts", "1000"]),
        2,
    );
    // An unbindable address is a runtime error (exit 1), not a panic.
    assert_diagnostic(&tw(&["serve", "--addr", "999.999.999.999:1"]), 1);
}

/// The durability contract end to end: artifacts written by `tw` are
/// CRC-stamped, a stamped artifact round-trips, and *any* corruption —
/// a flipped byte, a truncation — turns into an exit-1 one-liner that
/// names the crc32 mismatch instead of a confusing parse error (or
/// worse, silently wrong numbers).
#[test]
fn corrupted_checkpoint_fails_with_crc_diagnostic() {
    let out_path =
        std::env::temp_dir().join(format!("tw-cli-test-{}-ckpt.json", std::process::id()));
    let out_str = out_path.to_str().expect("utf-8 path");
    let save = tw(&[
        "checkpoint",
        "save",
        "--workload",
        "gcc",
        "--insts",
        "30000",
        "--out",
        out_str,
    ]);
    assert_eq!(
        save.status.code(),
        Some(0),
        "stderr: {}",
        stderr_line(&save)
    );
    let text = std::fs::read_to_string(&out_path).expect("checkpoint written");
    assert!(text.contains("\"crc32\""), "artifact is stamped: {text}");

    // The intact artifact restores cleanly.
    let restore = tw(&[
        "checkpoint",
        "restore",
        "--from",
        out_str,
        "--config",
        "promo-pack",
        "--insts",
        "20000",
    ]);
    assert_eq!(
        restore.status.code(),
        Some(0),
        "stderr: {}",
        stderr_line(&restore)
    );

    // One flipped byte in the payload: restore must refuse, naming the
    // CRC mismatch — before any parsing can misfire.
    let mut flipped = text.clone().into_bytes();
    let last = flipped.len() - 2;
    flipped[last] ^= 0x01;
    std::fs::write(&out_path, &flipped).expect("corrupt rewrite");
    let out = tw(&[
        "checkpoint",
        "restore",
        "--from",
        out_str,
        "--config",
        "promo-pack",
    ]);
    assert_diagnostic(&out, 1);
    assert!(
        stderr_line(&out).contains("crc32 mismatch"),
        "diagnostic names the crc: {}",
        stderr_line(&out)
    );

    // Truncation: the stamp leads the artifact, so a half file is still
    // recognizably stamped and fails the same way.
    std::fs::write(&out_path, &text.as_bytes()[..text.len() / 2]).expect("truncate");
    let out = tw(&[
        "checkpoint",
        "restore",
        "--from",
        out_str,
        "--config",
        "promo-pack",
    ]);
    let _ = std::fs::remove_file(&out_path);
    assert_diagnostic(&out, 1);
    assert!(
        stderr_line(&out).contains("crc32 mismatch"),
        "diagnostic names the crc: {}",
        stderr_line(&out)
    );
}

#[test]
fn corrupted_plan_fails_with_crc_diagnostic() {
    let out_path =
        std::env::temp_dir().join(format!("tw-cli-test-{}-plan.json", std::process::id()));
    let out_str = out_path.to_str().expect("utf-8 path");
    let analyze = tw(&[
        "analyze",
        "--workload",
        "gcc",
        "--insts",
        "30000",
        "--out",
        out_str,
    ]);
    assert_eq!(
        analyze.status.code(),
        Some(0),
        "stderr: {}",
        stderr_line(&analyze)
    );
    let text = std::fs::read_to_string(&out_path).expect("plan written");
    assert!(text.contains("\"crc32\""), "plan is stamped: {text}");
    let check = tw(&["analyze", "--check", out_str]);
    assert_eq!(
        check.status.code(),
        Some(0),
        "stderr: {}",
        stderr_line(&check)
    );

    let mut flipped = text.into_bytes();
    let last = flipped.len() - 2;
    flipped[last] ^= 0x01;
    std::fs::write(&out_path, &flipped).expect("corrupt rewrite");
    let check = tw(&["analyze", "--check", out_str]);
    let sim = tw(&[
        "sim",
        "--bench",
        "gcc",
        "--config",
        "promo-pack",
        "--insts",
        "20000",
        "--plan",
        out_str,
    ]);
    let _ = std::fs::remove_file(&out_path);
    assert_diagnostic(&check, 1);
    assert_diagnostic(&sim, 1);
    assert!(
        stderr_line(&check).contains("crc32 mismatch"),
        "{}",
        stderr_line(&check)
    );
}

/// Artifacts from before the integrity envelope (no `crc32` field) are
/// still accepted — the stamp is additive, not a format break.
#[test]
fn legacy_unstamped_artifacts_are_still_accepted() {
    let good = r#"{"schema":"tw-bench/v1","cells":[{"benchmark":"gcc","config":"icache","ns_per_cycle":1.0}]}"#;
    let path = temp_file("legacy.json", good);
    let path_str = path.to_str().expect("utf-8 path");
    let check = tw(&["bench", "--check", path_str]);
    let cmp = tw(&["bench", "--compare", path_str, path_str]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        check.status.code(),
        Some(0),
        "stderr: {}",
        stderr_line(&check)
    );
    assert_eq!(cmp.status.code(), Some(0), "stderr: {}", stderr_line(&cmp));
}

#[test]
fn corrupted_bench_artifact_names_the_crc_in_check_and_compare() {
    // A hand-stamped artifact (the same envelope `tw bench --out`
    // writes) with one payload byte flipped after stamping.
    let good = r#"{"schema":"tw-bench/v1","cells":[{"benchmark":"gcc","config":"icache","ns_per_cycle":1.0}]}"#;
    let stamped = trace_weave::sim::harness::stamp(good);
    let corrupt = stamped.replace("1.0", "9.0"); // flip payload bytes, keep JSON valid
    assert_ne!(stamped, corrupt, "corruption applied");
    let good_path = temp_file("stamped-good.json", &stamped);
    let bad_path = temp_file("stamped-bad.json", &corrupt);
    let good_str = good_path.to_str().expect("utf-8 path");
    let bad_str = bad_path.to_str().expect("utf-8 path");

    let ok = tw(&["bench", "--check", good_str]);
    assert_eq!(ok.status.code(), Some(0), "stderr: {}", stderr_line(&ok));

    let check = tw(&["bench", "--check", bad_str]);
    let cmp = tw(&["bench", "--compare", good_str, bad_str]);
    let _ = std::fs::remove_file(&good_path);
    let _ = std::fs::remove_file(&bad_path);
    assert_diagnostic(&check, 1);
    assert_diagnostic(&cmp, 1);
    for out in [&check, &cmp] {
        assert!(
            stderr_line(out).contains("crc32 mismatch"),
            "diagnostic names the crc: {}",
            stderr_line(out)
        );
    }
}
