//! Randomized tests over generated programs: the simulator must agree
//! with the functional interpreter on *what* executes, for any valid
//! program, under every front end.
//!
//! Programs come from the vendored seeded generator
//! (`trace_weave::workloads::rng`), so every run explores the same cases
//! and failures are reproducible from the reported seed.

use trace_weave::core::PackingPolicy;
use trace_weave::isa::{AluOp, Cond, Interpreter, Program, ProgramBuilder, Reg};
use trace_weave::sim::{Processor, SimConfig};
use trace_weave::workloads::rng::{Rng, Xoshiro256PlusPlus};
use trace_weave::workloads::Workload;

/// A random but always-terminating program: a forward DAG of basic
/// blocks. Each block does some ALU/memory work on registers seeded from
/// its index and ends with a conditional branch or jump to a *later*
/// block (forward edges only, so control flow cannot loop), plus
/// occasional bounded inner loops and call/return pairs.
fn arb_program(r: &mut Xoshiro256PlusPlus) -> Program {
    let blocks: Vec<(usize, u8, u16)> = {
        let n = r.gen_range(3usize..24);
        (0..n)
            .map(|_| {
                (
                    r.gen_range(1usize..8),
                    r.gen_range(0u8..4),
                    r.next_u32() as u16,
                )
            })
            .collect()
    };
    let mut b = ProgramBuilder::new();
    let n = blocks.len();
    let labels: Vec<_> = (0..n).map(|i| b.new_label(format!("blk{i}"))).collect();
    let end = b.new_label("end");
    // A tiny leaf function used by call blocks.
    let func = b.new_label("func");
    let start = b.new_label("start");
    b.entry(start);
    b.bind(func).unwrap();
    b.addi(Reg::A0, Reg::A0, 3);
    b.ret();
    b.bind(start).unwrap();
    b.li(Reg::SP, 2000); // keep stack clear of the scratch area

    for (i, (work, kind, seed)) in blocks.iter().enumerate() {
        b.bind(labels[i]).unwrap();
        b.li(Reg::T0, *seed as i32);
        for w in 0..*work {
            match (seed >> w) % 4 {
                0 => {
                    b.alui(AluOp::Add, Reg::T1, Reg::T0, w as i32 + 1);
                }
                1 => {
                    b.alui(AluOp::Xor, Reg::T0, Reg::T1, 0x55);
                }
                2 => {
                    b.store(Reg::T0, Reg::ZERO, 100 + (w as i32 % 32));
                }
                _ => {
                    b.load(Reg::T1, Reg::ZERO, 100 + (w as i32 % 32));
                }
            }
        }
        // Pick a strictly later target so the graph stays acyclic.
        let target = if i + 1 < n {
            labels[i + 1 + (*seed as usize) % (n - i - 1)]
        } else {
            end
        };
        match kind {
            0 => {
                // Conditional, data-dependent on T0 parity; both arms
                // continue forward.
                b.alui(AluOp::And, Reg::T2, Reg::T0, 1);
                b.branch(Cond::Ne, Reg::T2, Reg::ZERO, target);
                if i + 1 < n {
                    b.jump(labels[i + 1]);
                } else {
                    b.jump(end);
                }
            }
            1 => {
                b.jump(target);
            }
            2 => {
                // Bounded inner loop (4 iterations).
                let top = b.here(format!("inner{i}"));
                let out = b.new_label(format!("innerdone{i}"));
                b.addi(Reg::T3, Reg::T3, 1);
                b.alui(AluOp::And, Reg::T4, Reg::T3, 3);
                b.branch(Cond::Eq, Reg::T4, Reg::ZERO, out);
                b.jump(top);
                b.bind(out).unwrap();
                b.jump(target);
            }
            _ => {
                b.call(func);
                b.jump(target);
            }
        }
    }
    b.bind(end).unwrap();
    b.halt();
    b.build().expect("generated program is valid")
}

fn configs() -> [SimConfig; 4] {
    [
        SimConfig::icache(),
        SimConfig::baseline(),
        SimConfig::promotion(8),
        SimConfig::promotion_packing(8, PackingPolicy::Unregulated),
    ]
}

/// The simulator executes exactly the oracle's instruction stream — no
/// instruction invented, dropped, or reordered — for every front-end
/// configuration.
#[test]
fn simulator_matches_functional_execution() {
    for case in 0u64..24 {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(0x9199_0000 + case);
        let program = arb_program(&mut r);
        let oracle_len = Interpreter::new(&program, 4096).count() as u64;
        if oracle_len == 0 {
            continue;
        }
        let workload = Workload::new("prop", program, 4096, vec![]);
        for config in configs() {
            let report = Processor::new(config.with_max_insts(u64::MAX)).run(&workload);
            assert_eq!(
                report.instructions, oracle_len,
                "case {case}: config {} executed a different stream",
                report.config
            );
            // Machine-width bound and accounting sanity.
            assert!(report.cycles * 16 >= report.instructions, "case {case}");
            assert!(
                report.accounting.total() <= report.cycles + 1,
                "case {case}"
            );
            assert!(report.effective_fetch_rate() <= 16.0, "case {case}");
        }
    }
}

/// Simulation is deterministic for arbitrary programs.
#[test]
fn simulation_is_deterministic() {
    for case in 0u64..24 {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(0x9199_1000 + case);
        let program = arb_program(&mut r);
        let workload = Workload::new("prop", program, 4096, vec![]);
        let run =
            || Processor::new(SimConfig::headline_fetch().with_max_insts(50_000)).run(&workload);
        let (a, b) = (run(), run());
        assert_eq!(a.cycles, b.cycles, "case {case}");
        assert_eq!(a.instructions, b.instructions, "case {case}");
        assert_eq!(a.cond_mispredicts, b.cond_mispredicts, "case {case}");
    }
}
