//! Fault-injection integration tests: the headline invariant is that a
//! fault plan can corrupt live front-end structures at any rate without
//! a panic or architectural divergence — the quarantine-and-recover
//! path turns every detected corruption into an i-cache refetch, and
//! self-healing loci (predictor state) converge back on their own.

use tc_sim::harness::{report_to_json, run_matrix};
use tc_sim::{simulate, FaultLocus, FaultPlan, SimConfig};
use tc_workloads::Benchmark;

fn headline() -> SimConfig {
    tc_sim::harness::lookup("headline").expect("headline preset exists")
}

/// Satellite regression: corrupted trace segments are detected at the
/// hit/fill sanitizer checks, quarantined (invalidated), and recovered
/// through the i-cache — the run ends in the same architectural state
/// as the fault-free run.
#[test]
fn segment_corruption_is_detected_quarantined_and_recovered() {
    let insts = 200_000;
    let clean = simulate(Benchmark::Gcc, &headline().with_max_insts(insts));
    assert!(clean.fault.is_none(), "clean run must not report faults");

    let plan = FaultPlan::with_rate(5, 1e-3).targeting(&[FaultLocus::TcSegment]);
    let faulty = simulate(
        Benchmark::Gcc,
        &headline().with_max_insts(insts).with_fault_plan(plan),
    );
    let stats = faulty.fault.expect("fault plan must report stats");
    assert!(stats.injected > 0, "campaign landed no faults: {stats:?}");
    assert!(stats.detected > 0, "no corruption detected: {stats:?}");
    assert!(stats.recovered > 0, "no quarantine recovery: {stats:?}");
    assert!(stats.recovery_cycles > 0, "recovery was free: {stats:?}");
    // Recovery is by refetch, so the architectural instruction stream is
    // untouched: both runs retire exactly the same instructions.
    assert_eq!(faulty.instructions, clean.instructions);
    assert_eq!(faulty.benchmark, clean.benchmark);
    // Quarantine costs cycles; it must never *save* them.
    assert!(faulty.cycles >= clean.cycles - clean.cycles / 100);
}

/// The full-rate sweep of the acceptance checklist: every workload,
/// every locus enabled, 1e-3 faults/cycle — no panics, and the stats
/// always balance (`escaped` is reported, detected ≥ escaped).
#[test]
fn full_rate_sweep_over_all_workloads_never_panics() {
    let mut total_injected = 0;
    for (i, bench) in Benchmark::ALL.into_iter().enumerate() {
        let plan = FaultPlan::with_rate(0xFA17 + i as u64, 1e-3);
        let config = headline().with_max_insts(20_000).with_fault_plan(plan);
        let report = simulate(bench, &config);
        let stats = report.fault.expect("fault stats must be reported");
        assert!(
            stats.detected >= stats.escaped,
            "{}: escapes not counted as detected: {stats:?}",
            bench.name()
        );
        assert!(
            stats.injected >= stats.escaped,
            "{}: more escapes than injections: {stats:?}",
            bench.name()
        );
        assert!(report.instructions > 0);
        total_injected += stats.injected;
    }
    assert!(total_injected > 0, "sweep injected nothing anywhere");
}

/// Same seed + same plan ⇒ identical fault stats and identical reports,
/// whether the matrix runs serially or on worker threads.
#[test]
fn fault_campaigns_are_deterministic_serial_or_parallel() {
    let plan = FaultPlan::with_rate(77, 5e-4);
    let cells: Vec<(Benchmark, SimConfig)> = [
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Compress,
        Benchmark::Perl,
    ]
    .into_iter()
    .map(|b| {
        (
            b,
            headline()
                .with_max_insts(50_000)
                .with_fault_plan(plan.clone()),
        )
    })
    .collect();
    let serial = run_matrix(&cells, 1);
    let parallel = run_matrix(&cells, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.fault, p.fault, "{}", s.benchmark);
        assert_eq!(
            report_to_json(s).pretty(),
            report_to_json(p).pretty(),
            "{} diverged between serial and parallel",
            s.benchmark
        );
    }
    // The label carries the plan, so cached experiment cells can never
    // collide with their fault-free counterparts.
    assert!(
        cells[0].1.label().contains("+faults["),
        "{}",
        cells[0].1.label()
    );
}

/// `FaultPlan::none()` must be indistinguishable from never attaching a
/// plan: same label, same report, bit-identical JSON (no `fault` key).
#[test]
fn none_plan_is_bit_identical_to_no_plan() {
    let base = headline().with_max_insts(50_000);
    let with_none = base.clone().with_fault_plan(FaultPlan::none());
    assert_eq!(base.label(), with_none.label());
    let plain = simulate(Benchmark::Compress, &base);
    let none = simulate(Benchmark::Compress, &with_none);
    assert!(none.fault.is_none());
    let plain_json = report_to_json(&plain).pretty();
    assert_eq!(plain_json, report_to_json(&none).pretty());
    assert!(!plain_json.contains("\"fault\""));
}

/// Scheduled (`--at-cycles`) plans fire exactly once per listed cycle
/// even when the simulator's cycle counter jumps past them, and the
/// whole run stays panic-free with every locus in play.
#[test]
fn scheduled_plans_fire_and_stay_panic_free() {
    for locus in FaultLocus::ALL {
        let plan = FaultPlan::at_cycles(9, vec![50, 500, 5_000]).targeting(&[locus]);
        let config = headline().with_max_insts(30_000).with_fault_plan(plan);
        let report = simulate(Benchmark::Go, &config);
        let stats = report.fault.expect("fault stats must be reported");
        assert!(
            stats.injected <= 3,
            "{}: more firings than scheduled cycles: {stats:?}",
            locus.name()
        );
        assert!(report.instructions > 0);
    }
}
