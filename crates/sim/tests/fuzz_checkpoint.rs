//! Seeded never-panic fuzzing of the checkpoint reader.
//!
//! `tw checkpoint restore` consumes checkpoint documents from disk, so
//! `parse_checkpoint` must return `Err` (never panic) on arbitrary
//! bytes, and a document that happens to parse must restore through
//! `Checkpoint::restore` without panicking either. This feeds 1 000
//! deterministic mutations of a valid `tw-ckpt/v1` document through
//! both; a panic anywhere fails the test — no `catch_unwind`.

use tc_isa::{BlockCache, Interpreter};
use tc_sim::harness::{parse_checkpoint, Checkpoint};
use tc_workloads::Benchmark;

/// xoshiro256** seeded via SplitMix64 (Blackman & Vigna). Local copy:
/// the workspace builds offline with no external crates.
struct Xoshiro([u64; 4]);

impl Xoshiro {
    fn seeded(seed: u64) -> Xoshiro {
        let mut s = seed;
        let mut split = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro([split(), split(), split(), split()])
    }

    fn next(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.0;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.0 = [n0, n1, n2, n3];
        result
    }
}

fn mutate(rng: &mut Xoshiro, input: &[u8]) -> Vec<u8> {
    let mut bytes = input.to_vec();
    let edits = 1 + (rng.next() as usize % 8);
    for _ in 0..edits {
        if bytes.is_empty() {
            bytes.push(rng.next() as u8);
            continue;
        }
        let at = rng.next() as usize % bytes.len();
        match rng.next() % 4 {
            0 => bytes[at] = rng.next() as u8,
            1 => bytes.insert(at, rng.next() as u8),
            2 => {
                bytes.remove(at);
            }
            _ => bytes.truncate(at),
        }
    }
    bytes
}

#[test]
fn checkpoint_reader_never_panics_on_mutated_input() {
    // A real checkpoint as the fuzz corpus: go fast-forwarded a little
    // so registers and memory runs are populated (go's image keeps the
    // document small enough to parse a thousand mutants quickly).
    let workload = Benchmark::Go.build();
    let program = workload.program();
    let blocks = BlockCache::new(program);
    let mut interp = Interpreter::with_machine(program, workload.machine());
    assert_eq!(interp.fast_forward(&blocks, 10_000), 10_000);
    let valid = Checkpoint::capture(&workload, interp.machine())
        .to_json()
        .pretty();
    let round = parse_checkpoint(&valid).expect("fuzz corpus must start valid");
    round.restore(&workload).expect("fuzz corpus must restore");

    let mut rng = Xoshiro::seeded(0x0c4e_c401u64);
    let (mut parse_ok, mut parse_err) = (0u32, 0u32);
    for _ in 0..1_000 {
        let mutated = mutate(&mut rng, valid.as_bytes());
        let text = String::from_utf8_lossy(&mutated);
        match parse_checkpoint(&text) {
            Ok(ckpt) => {
                parse_ok += 1;
                // A structurally valid mutant must still restore (or be
                // rejected) without panicking.
                let _ = ckpt.restore(&workload);
            }
            Err(e) => {
                parse_err += 1;
                let line = format!("{e}");
                assert!(!line.is_empty(), "parse error must carry a diagnostic");
            }
        }
    }
    assert_eq!(parse_ok + parse_err, 1_000);
    assert!(parse_err > 0, "mutations never produced a parse error");
}
