//! Golden determinism test: the allocation-free fetch/fill hot path is
//! a pure restructuring, so every simulation result must be
//! bit-identical to the pre-change simulator.
//!
//! The fixtures under `tests/golden/` were captured from the simulator
//! *before* the hot path was restructured, via
//!
//! ```text
//! tw sim --bench <name> --config <baseline|headline> --insts 25000 --json
//! ```
//!
//! and are compared against the current code's full pretty-printed JSON
//! report, which covers every exported counter and derived metric. Do
//! not regenerate these fixtures from the current code — refreshing them
//! from the simulator under test would turn the determinism gate into a
//! tautology. Regenerate only when a change *intends* to alter
//! simulation results, and say so in the commit.

use tc_sim::harness::report_to_json;
use tc_sim::{simulate, SimConfig};
use tc_workloads::{Benchmark, RvBench, WorkloadId};

/// Instruction budget the fixtures were captured at.
const INSTS: u64 = 25_000;

/// Builds the capture configuration: the fixtures were emitted by the
/// release `tw` binary, where the invariant sanitizer defaults off, so
/// it is disabled explicitly here (tests compile with
/// `debug_assertions`, which would otherwise flip the default and the
/// `sanitizer.enabled` field).
fn capture_config(base: SimConfig) -> SimConfig {
    let mut config = base.with_max_insts(INSTS);
    config.front_end.sanitize = false;
    config
}

fn check<W: Into<WorkloadId>>(bench: W, config_name: &str, base: SimConfig, fixture: &str) {
    let bench: WorkloadId = bench.into();
    let report = simulate(bench, &capture_config(base));
    let rendered = format!("{}\n", report_to_json(&report).pretty());
    assert_eq!(
        rendered,
        fixture,
        "{} / {config_name}: report differs from the pre-change capture",
        bench.name()
    );
}

macro_rules! golden {
    ($($name:ident, $bench:ident, $file:literal;)*) => {
        $(
            #[test]
            fn $name() {
                let (config_name, config) = if $file.ends_with("-baseline.json") {
                    ("baseline", SimConfig::baseline())
                } else {
                    ("headline", SimConfig::headline_perf())
                };
                check(
                    Benchmark::$bench,
                    config_name,
                    config,
                    include_str!(concat!("golden/", $file)),
                );
            }
        )*
    };
}

golden! {
    compress_baseline, Compress, "compress-baseline.json";
    compress_headline, Compress, "compress-headline.json";
    gcc_baseline, Gcc, "gcc-baseline.json";
    gcc_headline, Gcc, "gcc-headline.json";
    go_baseline, Go, "go-baseline.json";
    go_headline, Go, "go-headline.json";
    ijpeg_baseline, Ijpeg, "ijpeg-baseline.json";
    ijpeg_headline, Ijpeg, "ijpeg-headline.json";
    li_baseline, Li, "li-baseline.json";
    li_headline, Li, "li-headline.json";
    m88ksim_baseline, M88ksim, "m88ksim-baseline.json";
    m88ksim_headline, M88ksim, "m88ksim-headline.json";
    perl_baseline, Perl, "perl-baseline.json";
    perl_headline, Perl, "perl-headline.json";
    vortex_baseline, Vortex, "vortex-baseline.json";
    vortex_headline, Vortex, "vortex-headline.json";
    gnuchess_baseline, Gnuchess, "gnuchess-baseline.json";
    gnuchess_headline, Gnuchess, "gnuchess-headline.json";
    gs_baseline, Ghostscript, "gs-baseline.json";
    gs_headline, Ghostscript, "gs-headline.json";
    pgp_baseline, Pgp, "pgp-baseline.json";
    pgp_headline, Pgp, "pgp-headline.json";
    python_baseline, Python, "python-baseline.json";
    python_headline, Python, "python-headline.json";
    gnuplot_baseline, Gnuplot, "gnuplot-baseline.json";
    gnuplot_headline, Gnuplot, "gnuplot-headline.json";
    ss_baseline, SimOutorder, "ss-baseline.json";
    ss_headline, SimOutorder, "ss-headline.json";
    tex_baseline, Tex, "tex-baseline.json";
    tex_headline, Tex, "tex-headline.json";
}

/// The compiled `rv/` family goes through the same determinism gate:
/// the fixtures were captured from the release `tw` binary the same
/// way as the synthetic ones, one RV workload under both presets.
macro_rules! golden_rv {
    ($($name:ident, $bench:ident, $file:literal;)*) => {
        $(
            #[test]
            fn $name() {
                let (config_name, config) = if $file.ends_with("-baseline.json") {
                    ("baseline", SimConfig::baseline())
                } else {
                    ("headline", SimConfig::headline_perf())
                };
                check(
                    RvBench::$bench,
                    config_name,
                    config,
                    include_str!(concat!("golden/", $file)),
                );
            }
        )*
    };
}

golden_rv! {
    rv_crc_baseline, Crc, "rv-crc-baseline.json";
    rv_crc_headline, Crc, "rv-crc-headline.json";
}
