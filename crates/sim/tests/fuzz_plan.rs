//! Seeded never-panic fuzzing of the analysis → promotion-plan pipeline.
//!
//! Two attack surfaces, both must return `Err` (never panic) on
//! arbitrary input — no `catch_unwind`, the property is that the panic
//! path is unreachable:
//!
//! * the front half: mutated assembly sources that still assemble are
//!   run through the full `tw analyze` pipeline (static passes,
//!   functional profile, classification, `tw-plan/v1` emission and
//!   re-parse);
//! * the back half: mutated `tw-plan/v1` documents through
//!   `parse_plan`, which `tw sim --plan FILE` feeds with whatever is on
//!   disk.

use tc_isa::assemble;
use tc_sim::harness::{build_plan, check_well_formed, parse_plan, plan_to_json};
use tc_workloads::{Benchmark, Workload};

/// xoshiro256** seeded via SplitMix64 (Blackman & Vigna). Local copy:
/// the workspace builds offline with no external crates.
struct Xoshiro([u64; 4]);

impl Xoshiro {
    fn seeded(seed: u64) -> Xoshiro {
        let mut s = seed;
        let mut split = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro([split(), split(), split(), split()])
    }

    fn next(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.0;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.0 = [n0, n1, n2, n3];
        result
    }
}

fn mutate(rng: &mut Xoshiro, input: &[u8]) -> Vec<u8> {
    let mut bytes = input.to_vec();
    let edits = 1 + (rng.next() as usize % 8);
    for _ in 0..edits {
        if bytes.is_empty() {
            bytes.push(rng.next() as u8);
            continue;
        }
        let at = rng.next() as usize % bytes.len();
        match rng.next() % 4 {
            0 => bytes[at] = rng.next() as u8,
            1 => bytes.insert(at, rng.next() as u8),
            2 => {
                bytes.remove(at);
            }
            _ => bytes.truncate(at),
        }
    }
    bytes
}

const VALID: &str = "\
# fuzz seed corpus: loops, calls, and branches of every shape
.entry main
main:
    li   t0, 0
    li   t1, 24
    li   t2, 0
outer:
    bge  t0, t1, done
    li   t3, 0
inner:
    bge  t3, t0, next
    add  t2, t2, t3
    andi t4, t2, 1
    beq  t4, zero, even
    addi t2, t2, 3
even:
    addi t3, t3, 1
    j    inner
next:
    call bump
    j    outer
bump:
    addi t0, t0, 1
    ret
done:
    halt
";

#[test]
fn analysis_pipeline_never_panics_on_mutated_source() {
    {
        let program = assemble(VALID).expect("fuzz corpus must start valid");
        let plan = build_plan(&Workload::new("fuzz", program, 1024, vec![]), 5_000, 2)
            .expect("fuzz corpus must profile cleanly");
        assert!(!plan.is_empty(), "corpus must contain conditional branches");
    }
    let mut rng = Xoshiro::seeded(0x9a7e_11d5u64);
    let (mut planned, mut rejected) = (0u32, 0u32);
    for _ in 0..1_000 {
        let mutated = mutate(&mut rng, VALID.as_bytes());
        let source = String::from_utf8_lossy(&mutated);
        let Ok(program) = assemble(&source) else {
            rejected += 1;
            continue;
        };
        // A mutant that still assembles must survive the whole pipeline:
        // profile (bounded — mutants may loop forever or fault, both
        // fine), classify, emit, and re-parse its own emission.
        let workload = Workload::new("fuzz", program, 1024, vec![]);
        match build_plan(&workload, 5_000, 2) {
            Ok(plan) => {
                planned += 1;
                let text = plan_to_json(&plan).pretty();
                check_well_formed(&text).expect("emitted plan must be well-formed JSON");
                assert_eq!(parse_plan(&text).expect("emitted plan must re-parse"), plan);
            }
            Err(e) => {
                rejected += 1;
                assert!(!e.message().contains('\n'), "one-line diagnostic");
            }
        }
    }
    assert!(planned > 0, "every mutant was rejected");
    assert!(rejected > 0, "mutations never produced an invalid program");
}

#[test]
fn plan_reader_never_panics_on_mutated_input() {
    let workload = Benchmark::Compress.build();
    let valid = plan_to_json(&build_plan(&workload, 100_000, 1).unwrap()).pretty();
    parse_plan(&valid).expect("fuzz corpus must start valid");

    let mut rng = Xoshiro::seeded(0x51a3_0cf7u64);
    let (mut ok, mut err) = (0u32, 0u32);
    for _ in 0..1_000 {
        let mutated = mutate(&mut rng, valid.as_bytes());
        let text = String::from_utf8_lossy(&mutated);
        match parse_plan(&text) {
            Ok(_) => ok += 1,
            Err(e) => {
                err += 1;
                assert!(!e.message().is_empty(), "error must carry a diagnostic");
                assert!(!e.message().contains('\n'), "one-line diagnostic");
                assert_eq!(e.exit_code(), 1);
            }
        }
    }
    assert_eq!(ok + err, 1_000);
    assert!(err > 0, "mutations never produced a parse error");
}
