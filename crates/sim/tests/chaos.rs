//! Crash-consistency and chaos integration tests: the daemon with a
//! persistent cache tier, under injected network and disk faults.
//!
//! The headline invariants, from the ISSUE's acceptance bar:
//!
//! * a server restarted on the same `--cache-dir` — even after an
//!   unclean death — serves bit-identical bodies for previously
//!   computed keys without recomputing them;
//! * corrupt cache entries are quarantined and recomputed, never
//!   served;
//! * disk-write failures degrade the tier to read-only instead of
//!   taking the daemon down;
//! * a seeded chaos proxy injecting resets, throttling, truncation,
//!   corruption, and accept delays at a 1e-2 rate over ≥1k mixed
//!   requests produces zero panics and zero hangs — every request ends
//!   in a valid response, a clean 4xx/5xx, or a client-visible
//!   transport error, and the fault sequence is deterministic in the
//!   seed;
//! * slow-loris and torn-upload connections are bounded by the server's
//!   read deadline and never wedge the accept loop.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tc_fault::chaos::{ChaosPlan, ChaosProxy, IoFaultKind, IoFaultPlan};
use tc_sim::harness::serve::{http_request, http_request_retry, RetryPolicy, ServeConfig, Server};
use tc_sim::harness::{parse_json, Value};

/// Small budgets keep each simulation job ~milliseconds.
const TEST_INSTS: &str = "20000";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tw-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(
    config: ServeConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<tc_sim::harness::ServeSummary>,
) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("query bound address");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 4,
        queue_depth: 4096,
        max_conns: 4096,
        ..ServeConfig::default()
    }
}

fn shutdown(addr: SocketAddr) {
    let resp = http_request(addr, "POST", "/v1/shutdown", "").expect("shutdown request");
    assert_eq!(resp.status, 200, "{}", resp.body);
}

fn sim_body(bench: &str) -> String {
    format!(r#"{{"bench": "{bench}", "preset": "baseline", "insts": {TEST_INSTS}}}"#)
}

fn stat_u64(stats_body: &str, object: &str, field: &str) -> u64 {
    parse_json(stats_body)
        .expect("stats body parses")
        .get(object)
        .and_then(|o| o.get(field))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("stats carries {object}.{field}: {stats_body}"))
}

/// The acceptance-criteria restart: compute on server A, end it, start
/// server B on the same cache dir — the key must come back from disk,
/// bit-identical, without touching the job queue.
#[test]
fn warm_restart_serves_bit_identical_bodies_without_recompute() {
    let dir = tmp_dir("restart");
    let config = || ServeConfig {
        cache_dir: Some(dir.clone()),
        ..test_config()
    };

    let (addr, handle) = start(config());
    let first = http_request(addr, "POST", "/v1/sim", &sim_body("compress")).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));
    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);

    // Server B: a different process lifetime as far as the cache is
    // concerned — only the directory carries state across.
    let (addr, handle) = start(config());
    let again = http_request(addr, "POST", "/v1/sim", &sim_body("compress")).unwrap();
    assert_eq!(again.status, 200, "{}", again.body);
    assert_eq!(
        again.header("x-cache"),
        Some("disk"),
        "a restart must warm-start from the persistent tier"
    );
    assert_eq!(first.body, again.body, "disk bodies are bit-identical");

    // The disk hit bypassed the queue entirely: nothing was recomputed.
    let stats = http_request(addr, "GET", "/v1/stats", "").unwrap();
    assert_eq!(
        stat_u64(&stats.body, "queue", "pushed"),
        0,
        "{}",
        stats.body
    );
    assert!(stat_u64(&stats.body, "disk", "hits") >= 1, "{}", stats.body);

    // Once promoted into memory, repeats are ordinary hits.
    let third = http_request(addr, "POST", "/v1/sim", &sim_body("compress")).unwrap();
    assert_eq!(third.header("x-cache"), Some("hit"));
    assert_eq!(first.body, third.body);

    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flip one byte in every on-disk entry: the restarted server must
/// quarantine them at scan time and recompute on demand — it must never
/// serve corrupt bytes.
#[test]
fn corrupt_disk_entries_are_quarantined_and_recomputed() {
    let dir = tmp_dir("corrupt");
    let config = || ServeConfig {
        cache_dir: Some(dir.clone()),
        ..test_config()
    };

    let (addr, handle) = start(config());
    let first = http_request(addr, "POST", "/v1/sim", &sim_body("li")).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);

    let mut flipped = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("twc") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            flipped += 1;
        }
    }
    assert!(flipped >= 1, "the first server must have persisted entries");

    let (addr, handle) = start(config());
    let stats = http_request(addr, "GET", "/v1/stats", "").unwrap();
    assert_eq!(
        stat_u64(&stats.body, "disk", "quarantined"),
        flipped,
        "{}",
        stats.body
    );
    assert!(
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| e.path().to_string_lossy().ends_with(".corrupt")),
        "quarantined entries are kept for post-mortem"
    );

    let again = http_request(addr, "POST", "/v1/sim", &sim_body("li")).unwrap();
    assert_eq!(again.status, 200, "{}", again.body);
    assert_eq!(
        again.header("x-cache"),
        Some("miss"),
        "a quarantined key recomputes instead of serving corrupt bytes"
    );
    assert_eq!(first.body, again.body, "recompute reproduces the bytes");

    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected store failures flip the tier to read-only degraded mode;
/// the daemon itself keeps serving from memory as if nothing happened.
#[test]
fn disk_write_failure_degrades_to_read_only_not_fatal() {
    let dir = tmp_dir("degraded");
    let (addr, handle) = start(ServeConfig {
        cache_dir: Some(dir.clone()),
        disk_faults: IoFaultPlan::always(IoFaultKind::TornTemp),
        ..test_config()
    });

    let first = http_request(addr, "POST", "/v1/sim", &sim_body("go")).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);

    let stats = http_request(addr, "GET", "/v1/stats", "").unwrap();
    assert!(
        stat_u64(&stats.body, "disk", "store_errors") >= 1,
        "{}",
        stats.body
    );
    let degraded = parse_json(&stats.body)
        .unwrap()
        .get("disk")
        .and_then(|d| d.get("degraded"))
        .and_then(|v| v.as_bool());
    assert_eq!(degraded, Some(true), "{}", stats.body);

    // Memory cache still serves; the failure stayed contained.
    let second = http_request(addr, "POST", "/v1/sim", &sim_body("go")).unwrap();
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body);

    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The chaos soak: ≥1k mixed requests through the seeded proxy at a
/// 1e-2 fault rate, with the retrying client. Zero panics, zero hangs,
/// every outcome a valid response / clean 4xx / client-visible
/// transport error, bodies bit-identical per key — and the injected
/// fault sequence is a pure function of the seed.
#[test]
fn chaos_soak_mixed_requests_zero_panics_deterministic_faults() {
    const TOTAL: usize = 1024;
    const SEED: u64 = 0xC4A0_5EED;
    let (addr, handle) = start(test_config());
    let plan = ChaosPlan::with_rate(SEED, 1e-2);
    let proxy = ChaosProxy::spawn(addr, plan.clone()).expect("spawn chaos proxy");
    let target = proxy.addr();

    let benches = ["compress", "li", "go", "perl"];
    let presets = ["baseline", "promo-pack"];
    let faulted = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let bodies: Mutex<HashMap<String, String>> = Mutex::new(HashMap::new());
    let fail = |msg: String| {
        let mut failures = failures.lock().unwrap();
        if failures.len() < 10 {
            failures.push(msg);
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..16 {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= TOTAL {
                    break;
                }
                let policy = RetryPolicy::retries(4, SEED ^ i as u64);
                match i % 10 {
                    8 => match http_request_retry(target, "POST", "/v1/sim", "[[[", &policy) {
                        Err(_) => {
                            faulted.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(resp) if (400..500).contains(&resp.status) => {}
                        Ok(resp) => fail(format!("req {i}: malformed got {}", resp.status)),
                    },
                    9 => match http_request_retry(target, "GET", "/v1/nope", "", &policy) {
                        Err(_) => {
                            faulted.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(resp) if resp.status == 404 => {}
                        Ok(resp) => fail(format!("req {i}: bad route got {}", resp.status)),
                    },
                    slot => {
                        let bench = benches[slot % benches.len()];
                        let preset = presets[(slot / benches.len()) % presets.len()];
                        let body = format!(
                            r#"{{"bench": "{bench}", "preset": "{preset}", "insts": {TEST_INSTS}}}"#
                        );
                        match http_request_retry(target, "POST", "/v1/sim", &body, &policy) {
                            Err(_) => {
                                faulted.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(resp) if resp.status == 503 => {}
                            Ok(resp) if resp.status != 200 => {
                                fail(format!("req {i}: valid job got {}", resp.status));
                            }
                            Ok(resp) => {
                                let key = format!("{bench}|{preset}");
                                let mut bodies = bodies.lock().unwrap();
                                match bodies.get(&key) {
                                    None => {
                                        bodies.insert(key, resp.body);
                                    }
                                    Some(prior) if *prior != resp.body => {
                                        fail(format!("req {i}: body differs for {key}"));
                                    }
                                    Some(_) => {}
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    let failures = failures.into_inner().unwrap();
    assert!(failures.is_empty(), "{failures:?}");
    assert_eq!(bodies.into_inner().unwrap().len(), 8, "all 8 keys answered");

    // Determinism: the proxy's injected faults are exactly what the
    // plan draws for the accepted connection indices — nothing more,
    // nothing random.
    let stats = proxy.stats();
    assert!(stats.connections >= TOTAL as u64);
    let expected: u64 = (0..stats.connections)
        .filter(|i| plan.draw(*i).is_some())
        .count() as u64;
    assert_eq!(stats.faulted, expected, "fault count is seed-determined");
    assert!(stats.faulted > 0, "a 1e-2 rate over 1k+ conns must fire");
    // Client-visible faults can only come from injected ones (retries
    // mask most of them).
    assert!(faulted.load(Ordering::Relaxed) <= stats.faulted);

    proxy.shutdown();
    shutdown(addr);
    let summary = handle.join().expect("server thread must not panic");
    assert_eq!(summary.job_panics, 0, "{summary:?}");
}

/// A slow-loris client (header bytes trickling in forever) is bounded
/// by the server's read deadline: the connection dies within the
/// deadline plus slack, and the daemon keeps serving others.
#[test]
fn slow_loris_and_torn_uploads_are_bounded_by_read_deadline() {
    let (addr, handle) = start(ServeConfig {
        read_timeout: Duration::from_millis(300),
        ..test_config()
    });

    // Send a partial request, then go silent — longer than the server's
    // 300 ms read deadline. The server must cut the connection rather
    // than hold a reader thread hostage; our read unblocks promptly.
    let started = Instant::now();
    let mut loris = TcpStream::connect(addr).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    loris.write_all(b"POST /v1/sim HTTP/1.1\r\nhos").unwrap();
    let mut reply = Vec::new();
    let outcome = loris.read_to_end(&mut reply);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "slow-loris connection must die within the read deadline, took {elapsed:?} ({outcome:?})"
    );

    // A torn upload — headers promise a body that never arrives — is
    // bounded the same way.
    let started = Instant::now();
    let mut torn = TcpStream::connect(addr).unwrap();
    torn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    torn.write_all(b"POST /v1/sim HTTP/1.1\r\ncontent-length: 4096\r\n\r\n{\"be")
        .unwrap();
    let mut reply = String::new();
    let _ = torn.read_to_string(&mut reply);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "torn upload must be bounded by the read deadline"
    );

    // The daemon is still perfectly healthy.
    let ok = http_request(addr, "POST", "/v1/sim", &sim_body("compress")).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);

    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);
}

/// The new observability surface: `deadline_errors` is always present,
/// `disk` is `null` without a cache dir and a populated object with one.
#[test]
fn stats_surface_carries_deadline_and_disk_fields() {
    let (addr, handle) = start(test_config());
    let stats = http_request(addr, "GET", "/v1/stats", "").unwrap();
    let doc = parse_json(&stats.body).unwrap();
    assert!(
        doc.get("deadline_errors")
            .and_then(|v| v.as_u64())
            .is_some(),
        "{}",
        stats.body
    );
    assert!(
        matches!(doc.get("disk"), Some(Value::Null)),
        "disk must be null without --cache-dir: {}",
        stats.body
    );
    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);

    let dir = tmp_dir("stats");
    let (addr, handle) = start(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..test_config()
    });
    let stats = http_request(addr, "GET", "/v1/stats", "").unwrap();
    let degraded = parse_json(&stats.body)
        .unwrap()
        .get("disk")
        .and_then(|d| d.get("degraded"))
        .and_then(|v| v.as_bool());
    assert_eq!(degraded, Some(false), "{}", stats.body);
    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
