//! Allocation gate for the whole-processor run loop, including the
//! oracle refill buffer and the sampling phases.
//!
//! A counting global allocator wraps `System` and the single test in
//! this binary (one test, so no concurrent tests pollute the counter)
//! asserts that heap allocations do **not** scale with instruction
//! count: the oracle and retire queues live on the `Processor` and are
//! refilled in place, records are moved by value, and the sampled
//! warm-up path touches no per-instruction heap. Quadrupling the
//! instruction budget must leave the allocation count within a small
//! constant of the shorter run, in full-timing and sampled mode alike.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tc_sim::{Processor, SimConfig};
use tc_workloads::Benchmark;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_for(config: &SimConfig, insts: u64) -> u64 {
    let workload = Benchmark::Compress.build();
    let mut processor = Processor::new(config.clone().with_max_insts(insts));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let report = processor.run(&workload);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(report.instructions > 0);
    after - before
}

#[test]
fn run_loop_allocations_do_not_scale_with_instruction_count() {
    // Measure the release hot path: the sanitizer (a debug/test tool
    // with its own bookkeeping) stays off.
    let mut config = SimConfig::baseline();
    config.front_end.sanitize = false;

    // Full timing: the 40k run issues 4x the instructions of the 10k
    // run through fetch, refill, the engine, and retirement. The only
    // extra allocations allowed are amortized buffer growth (oracle /
    // retire-queue capacity, trace-cache fill paths reaching their
    // final shape) — a small constant, not a per-instruction cost.
    let short = allocations_for(&config, 10_000);
    let long = allocations_for(&config, 40_000);
    let growth = long.saturating_sub(short);
    assert!(
        growth <= 64,
        "full-timing allocations scale with instructions: \
         {short} at 10k insts vs {long} at 40k insts (+{growth})"
    );

    // Sampled mode adds the fast-forward interpreter, the functional
    // warm-up loop, and inter-window drains; all of them must be
    // equally allocation-free per instruction.
    let sampled = config.clone().with_sampling(1_000, 1_000, 4_000);
    let short = allocations_for(&sampled, 10_000);
    let long = allocations_for(&sampled, 40_000);
    let growth = long.saturating_sub(short);
    assert!(
        growth <= 64,
        "sampled-mode allocations scale with instructions: \
         {short} at 10k insts vs {long} at 40k insts (+{growth})"
    );

    // Re-running on the same processor must reuse the oracle and
    // retire-queue buffers: the second run may allocate only the
    // per-run constant (report strings, RAS mirror), far below a fresh
    // processor's construction cost.
    let workload = Benchmark::Compress.build();
    let mut processor = Processor::new(config.with_max_insts(20_000));
    let _ = processor.run(&workload);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let _ = processor.run(&workload);
    let rerun = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(
        rerun <= 256,
        "re-running a processor must reuse its buffers ({rerun} allocations)"
    );
}
