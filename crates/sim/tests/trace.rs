//! Event-tracing integration gates.
//!
//! Three properties the tracing subsystem must keep:
//!
//! 1. **Observation does not perturb**: a traced run's simulation
//!    results are bit-identical to the untraced run's (the tracer only
//!    watches; it never feeds back).
//! 2. **Determinism**: the simulator is seed-free and deterministic, so
//!    two identical traced runs produce identical event streams.
//! 3. **Stable export**: the Chrome `trace_event` serialization of a
//!    small fixed workload matches a committed golden fixture
//!    byte-for-byte. The fixture was captured via
//!
//!    ```text
//!    tw trace --workload compress --preset headline --insts 2000 \
//!       --events tc,promote --interval 500 --limit 64 \
//!       --out crates/sim/tests/golden/trace-compress-headline.chrome.json
//!    ```
//!
//!    Regenerate it with the same command only when a change *intends*
//!    to alter the event stream or the export format, and say so in the
//!    commit.

use tc_sim::harness::{
    check_well_formed, chrome_trace_json, report_to_json, run_traced, TraceOptions,
};
use tc_sim::{Processor, SimConfig};
use tc_trace::EventFilter;
use tc_workloads::Benchmark;

/// Mirrors the release `tw` binary, where the invariant sanitizer
/// defaults off (tests compile with `debug_assertions`, which would
/// otherwise flip the default).
fn capture_config(base: SimConfig, insts: u64) -> SimConfig {
    let mut config = base.with_max_insts(insts);
    config.front_end.sanitize = false;
    config
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let workload = Benchmark::Gcc.build_scaled(2);
    let config = capture_config(SimConfig::headline_perf(), 30_000);
    let untraced = Processor::new(config.clone()).run(&workload);
    let traced = run_traced(config, &workload, &TraceOptions::default());

    assert!(traced.report.trace.is_some());
    assert!(untraced.trace.is_none());
    let mut scrubbed = traced.report.clone();
    scrubbed.trace = None;
    assert_eq!(
        report_to_json(&untraced).pretty(),
        report_to_json(&scrubbed).pretty(),
        "attaching a tracer changed the simulation"
    );
}

#[test]
fn identical_runs_produce_identical_event_streams() {
    let workload = Benchmark::Go.build_scaled(2);
    let options = TraceOptions {
        filter: EventFilter::all(),
        interval: Some(1_000),
        limit: 10_000,
    };
    let config = capture_config(SimConfig::headline_perf(), 20_000);
    let a = run_traced(config.clone(), &workload, &options);
    let b = run_traced(config, &workload, &options);
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.records, b.records);
    assert_eq!(
        a.timeline.as_ref().map(tc_trace::Timeline::windows),
        b.timeline.as_ref().map(tc_trace::Timeline::windows)
    );
}

#[test]
fn ring_limit_bounds_recording_with_exact_drop_accounting() {
    let workload = Benchmark::Compress.build_scaled(2);
    let options = TraceOptions {
        filter: EventFilter::all(),
        interval: None,
        limit: 100,
    };
    let run = run_traced(
        capture_config(SimConfig::baseline(), 20_000),
        &workload,
        &options,
    );
    assert_eq!(run.records.len(), 100, "ring stores exactly its capacity");
    assert!(run.summary.dropped > 0);
    assert_eq!(
        run.summary.emitted,
        run.summary.recorded + run.summary.dropped + run.summary.filtered,
        "every emitted event is recorded, dropped, or filtered"
    );
    // Per-kind counts fold before the capacity check, so they cover all
    // emitted events, not just the stored prefix.
    let counted: u64 = run.summary.counts.iter().sum();
    assert_eq!(counted, run.summary.emitted);
}

#[test]
fn chrome_export_matches_the_golden_fixture() {
    let fixture = include_str!("golden/trace-compress-headline.chrome.json");
    let workload = Benchmark::Compress.build();
    let options = TraceOptions {
        filter: EventFilter::parse("tc,promote").expect("valid filter"),
        interval: Some(500),
        limit: 64,
    };
    let run = run_traced(
        capture_config(SimConfig::headline_perf(), 2_000),
        &workload,
        &options,
    );
    let rendered = format!("{}\n", chrome_trace_json(&run).pretty());
    check_well_formed(&rendered).expect("chrome export is well-formed");
    assert_eq!(
        rendered, fixture,
        "chrome trace export differs from the committed capture"
    );
}
