//! Golden tests for `tw lint`: the JSON schema is pinned (like the
//! simulation report's), the whole workload suite is clean at error
//! severity, and the table renderer covers every benchmark.

use tc_sim::harness::{
    lint_all, lint_benchmark, lint_entry_to_json, lint_errors, lint_table, Json,
};
use tc_workloads::{Benchmark, RvBench, WorkloadId};

fn keys(v: &Json) -> Vec<&'static str> {
    match v {
        Json::Object(fields) => fields.iter().map(|(k, _)| *k).collect(),
        _ => panic!("expected object"),
    }
}

/// Golden test: the key set of one lint entry is stable. Extend it
/// additively — downstream scripts consume `tw lint --json`.
#[test]
fn lint_json_schema_is_stable() {
    let entry = lint_benchmark(Benchmark::Compress);
    let json = lint_entry_to_json(&entry);

    assert_eq!(
        keys(&json),
        [
            "benchmark",
            "passes",
            "instructions",
            "blocks",
            "reachable_blocks",
            "errors",
            "warnings",
            "infos",
            "taxonomy",
            "loops",
            "findings",
        ]
    );
    assert_eq!(
        keys(json.get("taxonomy").expect("taxonomy object")),
        [
            "cond_branches",
            "cond_backward",
            "cond_short_backward",
            "promotion_candidates",
            "jumps",
            "calls",
            "returns",
            "indirect_jumps",
            "indirect_calls",
            "traps",
            "back_edges",
        ]
    );
    match json.get("loops").expect("loops array") {
        Json::Array(loops) => {
            assert!(!loops.is_empty(), "compress has natural loops");
            for l in loops {
                assert_eq!(
                    keys(l),
                    [
                        "header",
                        "latch",
                        "blocks",
                        "instructions",
                        "depth",
                        "trip_count",
                        "static_taken_prob",
                    ]
                );
            }
        }
        _ => panic!("expected array"),
    }
    // The pass list names the eight-pass pipeline, in execution order.
    match json.get("passes").expect("passes array") {
        Json::Array(passes) => {
            let names: Vec<&str> = passes
                .iter()
                .map(|p| match p {
                    Json::Str(s) => s.as_str(),
                    _ => panic!("pass names are strings"),
                })
                .collect();
            assert_eq!(
                names,
                [
                    "well-formed",
                    "reachability",
                    "def-use",
                    "call-return",
                    "dominators",
                    "loops",
                    "trip-count",
                    "taxonomy"
                ]
            );
        }
        _ => panic!("expected array"),
    }
}

/// Findings serialize with pass, severity, location, and message.
#[test]
fn lint_findings_carry_structured_fields() {
    // li is known to carry def-use warnings (stack-pointer reads before
    // any write — benign zero-register idiom), so its findings list is
    // non-empty.
    let entry = lint_benchmark(Benchmark::Li);
    assert!(entry.report.warnings() > 0, "li carries def-use warnings");
    let json = lint_entry_to_json(&entry);
    match json.get("findings").expect("findings array") {
        Json::Array(findings) => {
            assert!(!findings.is_empty());
            for f in findings {
                assert_eq!(keys(f), ["pass", "severity", "at", "message"]);
            }
        }
        _ => panic!("expected array"),
    }
}

/// The RV family goes through the same pinned schema: a translated
/// program lints like a synthetic one, with the `rv/` name in the
/// benchmark field.
#[test]
fn lint_json_schema_covers_rv_workloads() {
    let entry = lint_benchmark(RvBench::Crc);
    assert_eq!(entry.benchmark, "rv/crc");
    let json = lint_entry_to_json(&entry);
    assert_eq!(
        keys(&json),
        [
            "benchmark",
            "passes",
            "instructions",
            "blocks",
            "reachable_blocks",
            "errors",
            "warnings",
            "infos",
            "taxonomy",
            "loops",
            "findings",
        ]
    );
    match json.get("loops").expect("loops array") {
        Json::Array(loops) => assert!(!loops.is_empty(), "crc is loop-structured"),
        _ => panic!("expected array"),
    }
}

/// The entire workload suite — both families — lints clean at error
/// severity: every target in bounds, no fallthrough off the end, Halt
/// reachable — the invariant `scripts/verify.sh` gates on.
#[test]
fn whole_suite_is_error_clean() {
    let entries = lint_all();
    assert_eq!(entries.len(), WorkloadId::COUNT);
    for e in &entries {
        assert_eq!(
            e.report.errors(),
            0,
            "{} has error-severity findings: {:?}",
            e.benchmark,
            e.report.findings
        );
        assert!(e.report.instructions > 0);
        assert_eq!(
            e.report.blocks, e.report.reachable_blocks,
            "{} has unreachable blocks",
            e.benchmark
        );
    }
    assert_eq!(lint_errors(&entries), 0);
}

/// The summary table renders one row per workload plus the header,
/// covering both families.
#[test]
fn lint_table_covers_the_suite() {
    let entries = lint_all();
    let text = lint_table(&entries);
    assert_eq!(text.lines().count(), 2 + entries.len());
    for w in WorkloadId::all() {
        assert!(text.contains(w.name()), "missing row for {}", w.name());
    }
}
