//! Integration tests for the experiment-harness layer: registry
//! round-trips, parallel-vs-serial determinism of the matrix runner, and
//! the JSON report schema.

use tc_sim::harness::{
    check_well_formed, lookup, preset, presets, report_to_json, run_matrix, standard_five, Json,
    MatrixRunner, STANDARD_FIVE,
};
use tc_sim::{simulate, SimConfig};
use tc_workloads::{Benchmark, RvBench, WorkloadId};

// --- registry ---------------------------------------------------------

#[test]
fn every_registry_name_round_trips() {
    for p in presets() {
        let by_name = lookup(p.name).expect("name resolves");
        assert_eq!(by_name.label(), p.build().label(), "{}", p.name);
        for alias in p.aliases {
            let by_alias = lookup(alias).expect("alias resolves");
            assert_eq!(by_alias.label(), by_name.label(), "{alias} != {}", p.name);
        }
    }
    assert!(lookup("no-such-config").is_none());
    assert!(preset("no-such-config").is_none());
}

#[test]
fn registry_labels_are_unique() {
    let mut labels: Vec<String> = presets().iter().map(|p| p.build().label()).collect();
    labels.sort();
    let before = labels.len();
    labels.dedup();
    assert_eq!(
        labels.len(),
        before,
        "two presets build the same configuration"
    );
}

#[test]
fn standard_five_covers_figure_10() {
    let five = standard_five();
    assert_eq!(five.len(), STANDARD_FIVE.len());
    for ((name, config), expected) in five.iter().zip(STANDARD_FIVE) {
        assert_eq!(*name, expected);
        assert_eq!(
            config.label(),
            lookup(expected).expect("registered").label()
        );
    }
}

// --- matrix runner ----------------------------------------------------

/// Mixed-family cells (two synthetic benchmarks and one translated
/// RV32I workload) under the five standard configurations: the
/// parallel run must be bit-identical to the serial run, in the same
/// order. Reports are compared through their full JSON rendering, which
/// covers every exported counter.
#[test]
fn parallel_matrix_is_bit_identical_to_serial() {
    let workloads = [
        WorkloadId::Synth(Benchmark::Compress),
        WorkloadId::Synth(Benchmark::Li),
        WorkloadId::Rv(RvBench::Crc),
    ];
    let cells: Vec<(WorkloadId, SimConfig)> = workloads
        .into_iter()
        .flat_map(|bench| {
            standard_five()
                .into_iter()
                .map(move |(_, config)| (bench, config.with_max_insts(30_000)))
        })
        .collect();
    let serial = run_matrix(&cells, 1);
    let parallel = run_matrix(&cells, 4);
    assert_eq!(serial.len(), cells.len());
    assert_eq!(parallel.len(), cells.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            report_to_json(s).render(),
            report_to_json(p).render(),
            "cell {i} ({} / {}) differs between serial and parallel runs",
            cells[i].0.name(),
            cells[i].1.label()
        );
    }
}

/// Determinism survives an attached promotion plan: a plan-carrying
/// matrix (per-branch bias overrides + per-class attribution) is
/// bit-identical between serial and parallel runs, and the plan itself
/// is byte-identical whether profiled with one worker or many.
#[test]
fn planned_matrix_is_bit_identical_to_serial() {
    let bench = Benchmark::Compress;
    let plan = tc_sim::harness::build_plan(&bench.build(), 100_000, 1).unwrap();
    assert_eq!(
        plan,
        tc_sim::harness::build_plan(&bench.build(), 100_000, 4).unwrap()
    );
    let cells: Vec<(Benchmark, SimConfig)> = standard_five()
        .into_iter()
        .map(|(_, config)| {
            (
                bench,
                config
                    .with_max_insts(30_000)
                    .with_promotion_plan(plan.clone()),
            )
        })
        .collect();
    let serial = run_matrix(&cells, 1);
    let parallel = run_matrix(&cells, 4);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert!(s.plan.is_some(), "plan stats attached");
        assert_eq!(
            report_to_json(s).render(),
            report_to_json(p).render(),
            "planned cell {i} ({}) differs between serial and parallel runs",
            cells[i].1.label()
        );
    }
}

/// The matrix runner's worker threads really run the cells (results are
/// collected in caller order regardless of completion order).
#[test]
fn run_matrix_preserves_caller_order() {
    let cells = vec![
        (Benchmark::Li, SimConfig::baseline().with_max_insts(20_000)),
        (
            Benchmark::Compress,
            SimConfig::icache().with_max_insts(20_000),
        ),
        (Benchmark::Li, SimConfig::icache().with_max_insts(20_000)),
    ];
    let reports = run_matrix(&cells, 3);
    assert_eq!(reports[0].benchmark, "li");
    assert_eq!(reports[0].config, "tc");
    assert_eq!(reports[1].benchmark, "compress");
    assert_eq!(reports[2].benchmark, "li");
    assert_eq!(reports[2].config, "icache");
}

/// The memoizing runner returns the same report for repeated cells and
/// agrees with a direct simulation at the same budget.
#[test]
fn matrix_runner_memoizes() {
    let mut runner = MatrixRunner::new(20_000, false).with_jobs(2);
    let config = SimConfig::baseline();
    let first = runner.run(Benchmark::Compress, &config).clone();
    let again = runner.run(Benchmark::Compress, &config).clone();
    assert_eq!(
        report_to_json(&first).render(),
        report_to_json(&again).render()
    );
    let direct = simulate(Benchmark::Compress, &config.with_max_insts(20_000));
    assert_eq!(first.cycles, direct.cycles);
    assert_eq!(first.instructions, direct.instructions);
}

// --- JSON report schema ----------------------------------------------

fn keys(v: &Json) -> Vec<&'static str> {
    match v {
        Json::Object(fields) => fields.iter().map(|(k, _)| *k).collect(),
        _ => panic!("expected object"),
    }
}

/// Golden test: the top-level key set of a report is stable, contains
/// the headline metrics and the six cycle-accounting categories, and
/// every numeric leaf is finite.
#[test]
fn json_report_schema_is_stable() {
    let report = simulate(
        Benchmark::Compress,
        &SimConfig::baseline().with_max_insts(30_000),
    );
    let json = report_to_json(&report);

    assert_eq!(
        keys(&json),
        [
            "benchmark",
            "config",
            "instructions",
            "cycles",
            "ipc",
            "effective_fetch_rate",
            "cond_mispredict_rate",
            "avg_resolution_time",
            "cond_branches",
            "cond_mispredicts",
            "promoted_executed",
            "promoted_faults",
            "indirect_executed",
            "indirect_mispredicts",
            "return_mispredicts",
            "salvaged",
            "accounting",
            "fetch",
            "trace_cache",
            "promotions",
            "caches",
            "engine",
            "sanitizer",
        ]
    );
    assert_eq!(
        keys(json.get("sanitizer").expect("sanitizer object")),
        [
            "enabled",
            "checked_fills",
            "checked_hits",
            "errors",
            "warnings"
        ]
    );
    assert_eq!(
        keys(json.get("accounting").expect("accounting object")),
        [
            "useful_fetch",
            "branch_misses",
            "cache_misses",
            "full_window",
            "traps",
            "misfetches",
            "unaccounted",
        ]
    );

    fn assert_finite(v: &Json, path: &str) {
        match v {
            Json::Float(f) => assert!(f.is_finite(), "non-finite float at {path}"),
            Json::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    assert_finite(item, &format!("{path}[{i}]"));
                }
            }
            Json::Object(fields) => {
                for (k, item) in fields {
                    assert_finite(item, &format!("{path}.{k}"));
                }
            }
            Json::Null | Json::Bool(_) | Json::UInt(_) | Json::Str(_) => {}
        }
    }
    assert_finite(&json, "report");

    // The rendering passes the harness's structural well-formedness
    // scan (the same gate `tw bench --check` applies to emitted
    // artifacts): balanced braces outside strings, terminated strings,
    // no trailing commas.
    check_well_formed(&json.render()).expect("compact render is well-formed");
    check_well_formed(&json.pretty()).expect("pretty render is well-formed");

    // Headline metrics agree with the report's accessors.
    match json.get("ipc") {
        Some(Json::Float(v)) => assert!((v - report.ipc()).abs() < 1e-12),
        other => panic!("ipc not a float: {other:?}"),
    }
    match json.get("effective_fetch_rate") {
        Some(Json::Float(v)) => {
            assert!((v - report.effective_fetch_rate()).abs() < 1e-12);
        }
        other => panic!("effective_fetch_rate not a float: {other:?}"),
    }
}

/// `trace_cache` and `promotions` are null exactly when the front end
/// has no such structure.
#[test]
fn json_optional_sections_track_config() {
    let icache = simulate(
        Benchmark::Compress,
        &SimConfig::icache().with_max_insts(20_000),
    );
    let json = report_to_json(&icache);
    assert!(matches!(json.get("trace_cache"), Some(Json::Null)));
    assert!(matches!(json.get("promotions"), Some(Json::Null)));

    let promo = simulate(
        Benchmark::Compress,
        &SimConfig::promotion(64).with_max_insts(20_000),
    );
    let json = report_to_json(&promo);
    assert!(matches!(json.get("trace_cache"), Some(Json::Object(_))));
    assert!(matches!(json.get("promotions"), Some(Json::Object(_))));
}

// --- invariant sanitizer ----------------------------------------------

/// In test builds the sanitizer defaults to on; a healthy simulation
/// validates every fill and trace-cache hit without a single violation.
#[test]
fn sanitizer_runs_clean_on_a_real_workload() {
    let report = simulate(
        Benchmark::Compress,
        &SimConfig::baseline().with_max_insts(30_000),
    );
    assert!(report.sanitizer.enabled, "sanitizer is on in debug builds");
    assert!(report.sanitizer.checked_fills > 0, "fills were validated");
    assert!(report.sanitizer.checked_hits > 0, "hits were validated");
    assert_eq!(report.sanitizer.errors, 0);
    assert_eq!(report.sanitizer.warnings, 0);
}

/// Promotion configurations also run violation-free (stale-bias
/// warnings would show up here).
#[test]
fn sanitizer_runs_clean_with_promotion_and_packing() {
    let report = simulate(
        Benchmark::Li,
        &SimConfig::headline_perf().with_max_insts(30_000),
    );
    assert!(report.sanitizer.checked_fills > 0);
    assert_eq!(report.sanitizer.errors, 0);
}

/// The sanitizer is a pure observer: toggling it must leave every other
/// field of the report bit-identical. Compared through the full JSON
/// rendering with the `sanitizer` section (the only legitimate
/// difference) removed.
#[test]
fn sanitizer_toggle_leaves_simulation_results_bit_identical() {
    fn strip_sanitizer(json: Json) -> Json {
        match json {
            Json::Object(fields) => Json::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| *k != "sanitizer")
                    .collect(),
            ),
            other => other,
        }
    }
    for (bench, config) in [
        (Benchmark::Compress, SimConfig::baseline()),
        (Benchmark::Li, SimConfig::headline_perf()),
    ] {
        let mut on = config.clone().with_max_insts(25_000);
        on.front_end.sanitize = true;
        let mut off = on.clone();
        off.front_end.sanitize = false;
        let with_sanitizer = strip_sanitizer(report_to_json(&simulate(bench, &on)));
        let without_sanitizer = strip_sanitizer(report_to_json(&simulate(bench, &off)));
        assert_eq!(
            with_sanitizer.render(),
            without_sanitizer.render(),
            "{} / {}: the sanitizer perturbed simulation results",
            bench.name(),
            config.label()
        );
    }
}

/// Explicitly disabled, the sanitizer is inert and reports all-zero
/// counters.
#[test]
fn sanitizer_can_be_disabled() {
    let mut config = SimConfig::baseline().with_max_insts(20_000);
    config.front_end.sanitize = false;
    let report = simulate(Benchmark::Compress, &config);
    assert!(!report.sanitizer.enabled);
    assert_eq!(report.sanitizer.checked_fills, 0);
    assert_eq!(report.sanitizer.checked_hits, 0);
}
