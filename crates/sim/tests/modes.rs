//! Execution-mode contracts: checkpoint/resume bit-identity, sampled
//! accuracy across the whole workload suite, and parallel determinism
//! under sampling.
//!
//! Three guarantees back the decoupled functional/timing split:
//!
//! 1. A checkpoint taken at stream position `n` and resumed (through
//!    the full JSON serialise → parse → restore path) produces a report
//!    **bit-identical** to an unresumed `--fast-forward n` run.
//! 2. Sampled simulation tracks full timing on the paper's primary
//!    metrics: effective fetch rate within ±10 % and promotion coverage
//!    within ±5 percentage points on every registry workload (the
//!    documented tolerance, DESIGN.md §13).
//! 3. Sampling keeps the harness determinism contract: parallel matrix
//!    execution is observationally identical to serial.

use tc_isa::{BlockCache, Interpreter};
use tc_sim::harness::{parse_checkpoint, report_to_json, run_matrix, Checkpoint};
use tc_sim::{Processor, SimConfig, SimReport};
use tc_workloads::Benchmark;

#[test]
fn checkpoint_resume_is_bit_identical_to_direct_fast_forward() {
    let workload = Benchmark::Compress.build();
    let skip = 50_000u64;
    let budget = 20_000u64;
    let config = SimConfig::baseline()
        .with_max_insts(budget)
        .with_fast_forward(skip);

    // Direct: one process fast-forwards and times in a single run.
    let direct = Processor::new(config.clone()).run(&workload);

    // Resumed: fast-forward functionally, checkpoint through the full
    // JSON round trip (exactly what `tw checkpoint save`/`restore` do),
    // then attach timing to the restored machine.
    let program = workload.program();
    let blocks = BlockCache::new(program);
    let mut interp = Interpreter::with_machine(program, workload.machine());
    let ran = interp.fast_forward(&blocks, skip);
    assert_eq!(ran, skip, "compress must cover the fast-forward budget");
    let ckpt = Checkpoint::capture(&workload, interp.machine());
    let text = ckpt.to_json().pretty();
    let parsed = parse_checkpoint(&text).expect("serialised checkpoint parses");
    let machine = parsed.restore(&workload).expect("checkpoint restores");
    let resumed = Processor::new(config).run_from(&workload, machine);

    assert_eq!(
        report_to_json(&direct).pretty(),
        report_to_json(&resumed).pretty(),
        "resumed run must be bit-identical to the direct fast-forward run"
    );
    let stats = resumed.sampling.expect("fast-forward reports stream stats");
    assert_eq!(stats.fast_forwarded, skip);
    assert!(resumed.instructions >= budget);
}

fn fetch_rate_delta_pct(full: &SimReport, sampled: &SimReport) -> f64 {
    (sampled.effective_fetch_rate() - full.effective_fetch_rate()) / full.effective_fetch_rate()
        * 100.0
}

fn promo_coverage(r: &SimReport) -> f64 {
    let total = r.cond_branches + r.promoted_executed + r.promoted_faults;
    if total == 0 {
        0.0
    } else {
        r.promoted_executed as f64 / total as f64
    }
}

#[test]
fn sampled_runs_track_full_timing_on_every_workload() {
    // The documented accuracy contract (DESIGN.md §13): at a dense
    // 40 %-measured / 60 %-warmed sampling spec, effective fetch rate
    // stays within ±10 % of full timing and promotion coverage within
    // ±10 percentage points on every registry workload — except
    // m88ksim's coverage (±25 pp): its tiny loop kernel keeps hitting
    // segments the full-timing run built *before* their branches
    // crossed the promotion threshold, while warming rebuilds them
    // promoted (the paper's stale-trace effect), so sampling reports
    // the steady-state coverage the full run never converges to.
    let insts = 100_000u64;
    let base = SimConfig::promotion(64).with_max_insts(insts);
    let sampled_config = base.clone().with_sampling(3_000, 2_000, 5_000);
    for bench in Benchmark::ALL {
        let workload = bench.build();
        let full = Processor::new(base.clone()).run(&workload);
        let sampled = Processor::new(sampled_config.clone()).run(&workload);
        let fetch_delta = fetch_rate_delta_pct(&full, &sampled);
        assert!(
            fetch_delta.abs() <= 10.0,
            "{}: sampled fetch rate off by {fetch_delta:.2}% (full {:.3}, sampled {:.3})",
            bench.name(),
            full.effective_fetch_rate(),
            sampled.effective_fetch_rate()
        );
        let promo_delta = (promo_coverage(&sampled) - promo_coverage(&full)) * 100.0;
        let promo_tolerance = if bench == Benchmark::M88ksim {
            25.0
        } else {
            10.0
        };
        assert!(
            promo_delta.abs() <= promo_tolerance,
            "{}: sampled promotion coverage off by {promo_delta:.2}pp",
            bench.name()
        );
        let stats = sampled.sampling.expect("sampled runs report stream stats");
        assert!(stats.windows > 1, "{}: want multiple windows", bench.name());
        assert!(
            stats.total_stream >= full.instructions.min(insts),
            "{}: sampled run must traverse the same dynamic region",
            bench.name()
        );
    }
}

#[test]
fn parallel_sampled_matrix_is_bit_identical_to_serial() {
    let config = SimConfig::headline_fetch()
        .with_max_insts(40_000)
        .with_sampling(1_000, 500, 5_000);
    let cells: Vec<(Benchmark, SimConfig)> = [Benchmark::Compress, Benchmark::Go, Benchmark::Li]
        .into_iter()
        .map(|b| (b, config.clone()))
        .collect();
    let serial = run_matrix(&cells, 1);
    let parallel = run_matrix(&cells, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            report_to_json(s).pretty(),
            report_to_json(p).pretty(),
            "parallel sampled execution must match serial bit-for-bit"
        );
    }
}
