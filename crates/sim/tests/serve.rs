//! `tw serve` integration tests: the daemon under concurrent load.
//!
//! The headline invariant is the ISSUE's acceptance bar — hundreds of
//! simultaneous requests, a mix of identical, distinct, and malformed
//! bodies, and the server must (a) never panic, (b) answer every
//! request with the right status code, (c) run each distinct cache key
//! **exactly once** (single-flight), (d) hand every requester of one
//! key bit-identical bytes, and (e) drain cleanly on shutdown.

use std::net::SocketAddr;
use std::sync::Arc;

use tc_sim::harness::parse_json;
use tc_sim::harness::serve::{http_request, raw_request, ServeConfig, Server};

/// Reads `cache.computed` out of a `/v1/stats` body.
fn computed_count(stats_body: &str) -> u64 {
    parse_json(stats_body)
        .expect("stats body parses")
        .get("cache")
        .and_then(|c| c.get("computed"))
        .and_then(|v| v.as_u64())
        .expect("stats carries cache.computed")
}

/// Small budgets keep each simulation job ~milliseconds.
const TEST_INSTS: &str = "20000";

fn start(
    config: ServeConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<tc_sim::harness::ServeSummary>,
) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("query bound address");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 4,
        queue_depth: 4096,
        max_conns: 4096,
        ..ServeConfig::default()
    }
}

fn shutdown(addr: SocketAddr) {
    let resp = http_request(addr, "POST", "/v1/shutdown", "").expect("shutdown request");
    assert_eq!(resp.status, 200, "{}", resp.body);
}

fn sim_body(bench: &str) -> String {
    format!(r#"{{"bench": "{bench}", "preset": "baseline", "insts": {TEST_INSTS}}}"#)
}

#[test]
fn health_discovery_and_unknown_routes() {
    let (addr, handle) = start(test_config());

    let health = http_request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\": true") || health.body.contains("\"ok\":true"));

    let presets = http_request(addr, "GET", "/v1/presets", "").unwrap();
    assert_eq!(presets.status, 200);
    assert!(presets.body.contains("promo-pack"), "{}", presets.body);

    let workloads = http_request(addr, "GET", "/v1/workloads", "").unwrap();
    assert!(workloads.body.contains("compress"), "{}", workloads.body);

    let missing = http_request(addr, "GET", "/v1/nope", "").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.body.contains("error"), "{}", missing.body);

    let wrong_method = http_request(addr, "GET", "/v1/sim", "").unwrap();
    assert_eq!(wrong_method.status, 405);

    // Raw protocol garbage gets a 400, not a dropped process.
    let garbage = raw_request(addr, b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");

    shutdown(addr);
    let summary = handle.join().expect("server thread must not panic");
    assert_eq!(summary.job_panics, 0);
}

#[test]
fn sim_responses_are_cached_by_content_address() {
    let (addr, handle) = start(test_config());
    let body = sim_body("compress");

    let first = http_request(addr, "POST", "/v1/sim", &body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert!(first.body.contains("\"report\""), "{}", first.body);

    let second = http_request(addr, "POST", "/v1/sim", &body).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hits are bit-identical");
    assert_eq!(first.header("x-key"), second.header("x-key"));

    // An alias resolves to the same content address.
    let alias = format!(r#"{{"bench": "compress", "preset": "tc", "insts": {TEST_INSTS}}}"#);
    let third = http_request(addr, "POST", "/v1/sim", &alias).unwrap();
    assert_eq!(
        third.header("x-cache"),
        Some("hit"),
        "alias shares the entry"
    );
    assert_eq!(first.body, third.body);

    let stats = http_request(addr, "GET", "/v1/stats", "").unwrap();
    assert_eq!(computed_count(&stats.body), 1, "{}", stats.body);

    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);
}

/// The compiled `rv/` family is a first-class serve citizen: it shows
/// up in workload discovery with its family tag, and a sim job on an
/// RV workload goes through the result cache like a synthetic one.
#[test]
fn rv_workloads_are_served_and_cached() {
    let (addr, handle) = start(test_config());

    let workloads = http_request(addr, "GET", "/v1/workloads", "").unwrap();
    assert_eq!(workloads.status, 200);
    let listing = parse_json(&workloads.body).expect("workloads body parses");
    let entries = listing
        .get("workloads")
        .and_then(|w| w.as_array())
        .expect("workloads array");
    let family_of = |name: &str| {
        entries
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
            .and_then(|e| e.get("family"))
            .and_then(|f| f.as_str())
            .map(str::to_owned)
    };
    assert_eq!(family_of("compress").as_deref(), Some("synthetic"));
    assert_eq!(family_of("rv/crc").as_deref(), Some("rv32i"));

    let body = sim_body("rv/crc");
    let first = http_request(addr, "POST", "/v1/sim", &body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert!(
        first.body.contains("\"benchmark\":\"rv/crc\""),
        "{}",
        first.body
    );

    let second = http_request(addr, "POST", "/v1/sim", &body).unwrap();
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hits are bit-identical");

    // The short name is an alias onto the same content address.
    let alias = format!(r#"{{"bench": "crc", "preset": "baseline", "insts": {TEST_INSTS}}}"#);
    let third = http_request(addr, "POST", "/v1/sim", &alias).unwrap();
    assert_eq!(third.header("x-cache"), Some("hit"), "{}", third.body);

    let stats = http_request(addr, "GET", "/v1/stats", "").unwrap();
    assert_eq!(computed_count(&stats.body), 1, "{}", stats.body);

    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);
}

#[test]
fn malformed_jobs_answer_400_without_disturbing_the_daemon() {
    let (addr, handle) = start(test_config());
    let post = |body: &str| http_request(addr, "POST", "/v1/sim", body).unwrap();

    assert_eq!(post("").status, 400);
    assert_eq!(post("not json at all").status, 400);
    assert_eq!(
        post(r#"{"bench": "compress", "preset": "zap"}"#).status,
        400
    );
    assert_eq!(post(r#"{"bench": "compress", "bogus": 1}"#).status, 400);
    assert_eq!(post(r#"{"bench": "compress", "insts": 1e30}"#).status, 400);
    // The depth bomb that would overflow a naive recursive parser.
    let bomb = "[".repeat(50_000);
    assert_eq!(post(&bomb).status, 400);
    // An oversized body sheds with 413 before any parsing.
    let huge = format!(r#"{{"bench": "{}"}}"#, "x".repeat(2 * 1024 * 1024));
    assert_eq!(post(&huge).status, 413);

    // The daemon is still perfectly healthy.
    let ok = post(&sim_body("compress"));
    assert_eq!(ok.status, 200, "{}", ok.body);

    shutdown(addr);
    let summary = handle.join().unwrap();
    assert_eq!(summary.job_panics, 0);
    assert!(summary.client_errors >= 7, "{summary:?}");
}

#[test]
fn every_job_kind_round_trips() {
    let (addr, handle) = start(test_config());
    let post = |path: &str, body: String| {
        let resp = http_request(addr, "POST", path, &body).unwrap();
        assert_eq!(resp.status, 200, "{path}: {}", resp.body);
        resp
    };

    let sim = post("/v1/sim", sim_body("compress"));
    let kind = parse_json(&sim.body)
        .expect("sim body parses")
        .get("kind")
        .and_then(|v| v.as_str().map(str::to_string));
    assert_eq!(kind.as_deref(), Some("sim"), "{}", sim.body);

    let timeline = post(
        "/v1/sim",
        format!(
            r#"{{"bench": "compress", "preset": "baseline", "insts": {TEST_INSTS}, "timeline": true}}"#
        ),
    );
    assert!(timeline.body.contains("\"timeline\""), "{}", timeline.body);

    let compare = post(
        "/v1/compare",
        format!(r#"{{"bench": "li", "insts": {TEST_INSTS}}}"#),
    );
    assert!(compare.body.contains("\"configs\""), "{}", compare.body);
    assert!(compare.body.contains("promo-pack"), "{}", compare.body);

    let faults = post(
        "/v1/faults",
        format!(r#"{{"bench": "compress", "rate": 0.001, "insts": {TEST_INSTS}}}"#),
    );
    assert!(faults.body.contains("\"report\""), "{}", faults.body);

    let trace = post(
        "/v1/trace",
        format!(r#"{{"bench": "compress", "preset": "baseline", "insts": {TEST_INSTS}}}"#),
    );
    assert!(trace.body.contains("\"chrome_trace\""), "{}", trace.body);
    assert!(trace.body.contains("traceEvents"), "{}", trace.body);

    let analyze = post(
        "/v1/analyze",
        format!(r#"{{"bench": "compress", "insts": {TEST_INSTS}}}"#),
    );
    assert!(analyze.body.contains("tw-plan/v1"), "{}", analyze.body);

    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);
}

/// The acceptance-criteria hammer: hundreds of concurrent requests —
/// identical, distinct, and malformed — against one daemon.
#[test]
fn concurrent_hammer_single_flight_and_bit_identical() {
    let (addr, handle) = start(test_config());

    // 8 distinct keys (4 benches x 2 presets), hit by many threads
    // each, interleaved with malformed bodies.
    let benches = ["compress", "li", "go", "perl"];
    let presets = ["baseline", "promo-pack"];
    let threads = 120;
    let mut joins = Vec::new();
    for t in 0..threads {
        joins.push(std::thread::spawn(move || {
            if t % 6 == 5 {
                // Malformed traffic mixed into the storm.
                let resp = http_request(
                    addr,
                    "POST",
                    "/v1/sim",
                    r#"{"bench": "compress", "zap": 1}"#,
                )
                .expect("malformed request still gets a response");
                assert_eq!(resp.status, 400);
                return None;
            }
            let bench = benches[t % benches.len()];
            let preset = presets[(t / benches.len()) % presets.len()];
            let body =
                format!(r#"{{"bench": "{bench}", "preset": "{preset}", "insts": {TEST_INSTS}}}"#);
            let resp = http_request(addr, "POST", "/v1/sim", &body).expect("sim request");
            assert_eq!(resp.status, 200, "{}", resp.body);
            let disposition = resp.header("x-cache").expect("x-cache header").to_string();
            assert!(
                ["hit", "miss", "join"].contains(&disposition.as_str()),
                "unexpected disposition {disposition}"
            );
            Some((format!("{bench}|{preset}"), resp.body))
        }));
    }

    let mut bodies: std::collections::HashMap<String, Arc<String>> =
        std::collections::HashMap::new();
    let mut ok_responses = 0;
    for join in joins {
        let Some((key, body)) = join.join().expect("no client thread panicked") else {
            continue;
        };
        ok_responses += 1;
        match bodies.get(&key) {
            None => {
                bodies.insert(key, Arc::new(body));
            }
            Some(prior) => assert_eq!(
                **prior, body,
                "every response for one key must be bit-identical"
            ),
        }
    }
    assert_eq!(bodies.len(), benches.len() * presets.len());
    assert_eq!(ok_responses, threads - threads / 6);

    // Single-flight: exactly one computation per distinct key.
    let stats = http_request(addr, "GET", "/v1/stats", "").unwrap();
    assert_eq!(
        computed_count(&stats.body),
        bodies.len() as u64,
        "single computation per distinct key: {}",
        stats.body
    );

    shutdown(addr);
    let summary = handle.join().expect("server thread must not panic");
    assert_eq!(summary.job_panics, 0);
    assert_eq!(summary.server_errors, 0, "{summary:?}");
}

#[test]
fn queue_overflow_sheds_with_503_and_recovers() {
    // One worker and a one-deep queue: with several long jobs in
    // flight, later distinct jobs must shed with 503 rather than
    // queueing unboundedly.
    let (addr, handle) = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        max_conns: 4096,
        ..ServeConfig::default()
    });

    let mut joins = Vec::new();
    for t in 0..24 {
        joins.push(std::thread::spawn(move || {
            // Distinct keys (distinct insts), so nothing coalesces;
            // budgets large enough that jobs overlap the burst.
            let body = format!(
                r#"{{"bench": "compress", "preset": "baseline", "insts": {}}}"#,
                100_000 + t
            );
            http_request(addr, "POST", "/v1/sim", &body)
                .expect("request gets an answer")
                .status
        }));
    }
    let statuses: Vec<u16> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 503),
        "only 200 and 503 are acceptable: {statuses:?}"
    );
    assert!(statuses.contains(&200), "some jobs completed");
    assert!(
        statuses.contains(&503),
        "a one-deep queue under 24 distinct jobs must shed: {statuses:?}"
    );

    // After the burst drains, the daemon accepts work again.
    let after = http_request(addr, "POST", "/v1/sim", &sim_body("compress")).unwrap();
    assert_eq!(after.status, 200, "{}", after.body);

    shutdown(addr);
    assert_eq!(handle.join().unwrap().job_panics, 0);
}

#[test]
fn shutdown_drains_open_work_and_refuses_new_jobs() {
    let (addr, handle) = start(ServeConfig {
        workers: 2,
        queue_depth: 4096,
        max_conns: 4096,
        ..ServeConfig::default()
    });

    // Launch a wave of jobs, then shut down while they are in flight.
    let mut joins = Vec::new();
    for t in 0..16 {
        joins.push(std::thread::spawn(move || {
            let body = format!(
                r#"{{"bench": "li", "preset": "baseline", "insts": {}}}"#,
                30_000 + t
            );
            http_request(addr, "POST", "/v1/sim", &body).map(|r| r.status)
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    shutdown(addr);

    // In-flight work drains to completion (200) or was refused at the
    // drain gate (503); nothing hangs, nothing panics.
    for join in joins {
        if let Ok(status) = join.join().expect("client thread") {
            assert!(status == 200 || status == 503, "got {status}");
        }
    }
    let summary = handle.join().expect("clean exit");
    assert_eq!(summary.job_panics, 0);
}
