//! Promotion plans: the consumed form of `tw-plan/v1`.
//!
//! `tw analyze` classifies every static conditional branch of a
//! workload into the four-class predictability taxonomy and emits a
//! *promotion plan*: per-branch bias-threshold overrides (promote
//! earlier than the paper's global 64-outcome threshold, keep the
//! default, or never promote). [`PromotionPlan`] is that plan as the
//! simulator consumes it — attach one with
//! [`crate::SimConfig::with_promotion_plan`] and the processor installs
//! the overrides into the bias table and attributes promotion activity
//! per class in the report's [`PlanStats`] section.

use std::collections::HashMap;

use tc_predict::{BiasOverride, BranchClass, PlanAction};

/// One branch's plan entry: the override plus the profile evidence it
/// was derived from (carried through to the plan JSON for audit).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntry {
    /// Byte address of the branch (matches bias-table indexing).
    pub pc: u64,
    /// The classifier's verdict: class + promotion action.
    pub over: BiasOverride,
    /// Dynamic executions observed while profiling (0 = static-only).
    pub executed: u64,
    /// Taken executions.
    pub taken: u64,
    /// Direction transitions between consecutive executions.
    pub transitions: u64,
    /// Dominant-direction fraction of executions.
    pub bias: f64,
    /// Mean same-direction run length.
    pub avg_run: f64,
    /// Ideal order-2 history self-prediction accuracy.
    pub markov_accuracy: f64,
    /// Static loop-nesting depth of the branch.
    pub loop_depth: usize,
    /// Static taken-probability from the trip-count pass, if inferred.
    pub static_taken_prob: Option<f64>,
}

/// A complete per-workload promotion plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromotionPlan {
    /// Workload the plan was derived for.
    pub workload: String,
    /// Instructions functionally profiled to build it.
    pub profiled_insts: u64,
    /// Per-branch entries, in ascending `pc` order.
    pub entries: Vec<PlanEntry>,
}

impl PromotionPlan {
    /// Number of branch entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The override map the bias table consumes.
    #[must_use]
    pub fn overrides(&self) -> HashMap<u64, BiasOverride> {
        self.entries.iter().map(|e| (e.pc, e.over)).collect()
    }

    /// Branch pc → dense class index, for per-class attribution.
    #[must_use]
    pub fn class_indices(&self) -> HashMap<u64, usize> {
        self.entries
            .iter()
            .map(|e| (e.pc, e.over.class.index()))
            .collect()
    }

    /// Static branches per class, indexed by [`BranchClass::index`].
    #[must_use]
    pub fn class_counts(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        for e in &self.entries {
            counts[e.over.class.index()] += 1;
        }
        counts
    }

    /// Entries whose action is never-promote.
    #[must_use]
    pub fn never_promote(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.over.action == PlanAction::Never)
            .count() as u64
    }
}

/// Plan provenance and per-class promotion activity, reported by a run
/// that consumed a promotion plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStats {
    /// Workload the attached plan was derived for.
    pub workload: String,
    /// Instructions the plan's profile covered.
    pub profiled_insts: u64,
    /// Branch entries in the plan.
    pub entries: u64,
    /// Entries prescribing never-promote.
    pub never_promote: u64,
    /// Static branches per class.
    pub class_branches: [u64; 4],
    /// Dynamic executions of plan-covered conditional branches,
    /// per class (promoted or not, faults included).
    pub class_execs: [u64; 4],
    /// Executions of those branches while promoted (correct-path).
    pub class_promoted: [u64; 4],
    /// Promoted-branch faults per class.
    pub class_faults: [u64; 4],
    /// Bias-table promotion events attributed per class.
    pub class_promotions: [u64; 4],
}

impl PlanStats {
    /// Promotion coverage of one class: the fraction of its dynamic
    /// executions that ran promoted (faults count as executions).
    #[must_use]
    pub fn coverage(&self, class: BranchClass) -> f64 {
        let i = class.index();
        if self.class_execs[i] == 0 {
            0.0
        } else {
            (self.class_promoted[i] + self.class_faults[i]) as f64 / self.class_execs[i] as f64
        }
    }

    /// Total dynamic executions of plan-covered branches.
    #[must_use]
    pub fn total_execs(&self) -> u64 {
        self.class_execs.iter().sum()
    }

    /// Total promoted executions (faults included) of covered branches.
    #[must_use]
    pub fn total_promoted(&self) -> u64 {
        self.class_promoted.iter().sum::<u64>() + self.class_faults.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u64, class: BranchClass, action: PlanAction) -> PlanEntry {
        PlanEntry {
            pc,
            over: BiasOverride { class, action },
            executed: 100,
            taken: 90,
            transitions: 10,
            bias: 0.9,
            avg_run: 9.0,
            markov_accuracy: 0.5,
            loop_depth: 1,
            static_taken_prob: None,
        }
    }

    #[test]
    fn plan_aggregates_count_classes_and_actions() {
        let plan = PromotionPlan {
            workload: "w".into(),
            profiled_insts: 1000,
            entries: vec![
                entry(8, BranchClass::StronglyBiased, PlanAction::Threshold(8)),
                entry(16, BranchClass::DataDependent, PlanAction::Never),
                entry(24, BranchClass::DataDependent, PlanAction::Never),
            ],
        };
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.class_counts(), [1, 0, 0, 2]);
        assert_eq!(plan.never_promote(), 2);
        assert_eq!(plan.overrides().len(), 3);
        assert_eq!(plan.class_indices()[&16], 3);
    }

    #[test]
    fn coverage_is_promoted_fraction_per_class() {
        let stats = PlanStats {
            workload: "w".into(),
            profiled_insts: 0,
            entries: 1,
            never_promote: 0,
            class_branches: [1, 0, 0, 0],
            class_execs: [100, 0, 0, 0],
            class_promoted: [70, 0, 0, 0],
            class_faults: [10, 0, 0, 0],
            class_promotions: [1, 0, 0, 0],
        };
        assert!((stats.coverage(BranchClass::StronglyBiased) - 0.8).abs() < 1e-12);
        assert_eq!(stats.coverage(BranchClass::PhaseBiased), 0.0);
        assert_eq!(stats.total_execs(), 100);
        assert_eq!(stats.total_promoted(), 80);
    }
}
