//! A minimal JSON reader for artifact comparison.
//!
//! The workspace builds offline with no external crates, so artifact
//! *emission* is hand-rolled ([`super::json`]) and artifact *reading*
//! lives here: a small recursive-descent parser producing an owned
//! [`Value`] tree. It accepts exactly the JSON this repo emits (and any
//! standard JSON document); it is not a validator of exotic inputs —
//! numbers are parsed through `f64`, which is lossless for every counter
//! the artifacts carry below 2^53.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers up to 2^53 are exact).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order (duplicate keys are kept as-is).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere or when absent.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is `true` or `false`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer: a number that is whole,
    /// non-negative, and small enough (≤ 2^53) that the `f64` carrier
    /// still represents it exactly. Anything else — including counters
    /// large enough to have been silently rounded by the parser —
    /// returns `None` rather than a truncated value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let f = self.as_f64()?;
        if f.is_finite() && f >= 0.0 && f.fract() == 0.0 && f <= 9_007_199_254_740_992.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(f as u64)
        } else {
            None
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a byte-offset-tagged description of the first syntax error,
/// including trailing garbage after the top-level value.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

/// Maximum container nesting accepted by [`parse_json`].
///
/// The parser is recursive-descent, so unbounded nesting is unbounded
/// stack: a document of a few hundred thousand `[` characters would
/// overflow the stack and *abort* the process — an uncatchable crash,
/// remotely triggerable once a network API feeds this parser. Every
/// artifact this repo emits nests a handful of levels; 128 is far past
/// any legitimate document.
pub const MAX_JSON_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // The scanned range contains only ASCII digit/sign/exponent
        // bytes, but fail soft rather than trusting that invariant on
        // arbitrary input.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged;
                    // advance by whole characters, not bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let Some(c) = rest.chars().next() else {
                        return Err("unterminated string".to_string());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_JSON_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_JSON_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_json(
            r#"{"schema":"tw-bench/v1","cells":[{"benchmark":"gcc","ns_per_cycle":12.5,"ok":true,"note":null}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("tw-bench/v1"));
        let cells = v.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(
            cells[0].get("ns_per_cycle").and_then(Value::as_f64),
            Some(12.5)
        );
        assert_eq!(cells[0].get("ok"), Some(&Value::Bool(true)));
        assert_eq!(cells[0].get("note"), Some(&Value::Null));
    }

    #[test]
    fn decodes_escapes_and_negative_exponent_numbers() {
        let v = parse_json(r#"{"s":"a\"b\\c\ndA","n":-1.5e-2}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\\c\ndA"));
        assert!((v.get("n").and_then(Value::as_f64).unwrap() + 0.015).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // A recursive-descent parser fed 200k open brackets would blow
        // the stack and abort the process if nesting were unbounded;
        // the depth limit must turn that into an ordinary error.
        let bomb = "[".repeat(200_000);
        let err = parse_json(&bomb).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let obj_bomb = "{\"k\":".repeat(200_000);
        assert!(parse_json(&obj_bomb).unwrap_err().contains("nesting"));
    }

    #[test]
    fn nesting_at_the_limit_parses_and_siblings_do_not_accumulate() {
        // Depth is the *current* nesting, not a running total: a long
        // flat array of shallow objects must not trip the limit.
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(parse_json(&deep).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH + 1),
            "]".repeat(MAX_JSON_DEPTH + 1)
        );
        assert!(parse_json(&over).is_err());
        let flat = format!("[{}{{}}]", "{},".repeat(10_000));
        assert!(parse_json(&flat).is_ok());
    }

    #[test]
    fn round_trips_emitted_reports() {
        // The emitter and parser must agree on the repo's own output.
        let text = crate::harness::Json::Object(vec![
            ("x", crate::harness::Json::Float(0.25)),
            ("y", crate::harness::Json::Str("hi \"there\"".to_string())),
        ])
        .pretty();
        let v = parse_json(&text).unwrap();
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(0.25));
        assert_eq!(v.get("y").and_then(Value::as_str), Some("hi \"there\""));
    }
}
