//! Plain-text table rendering and the shared statistics helpers.
//!
//! Moved here from `tc-bench` so every driver (the `tw` CLI, the
//! `paper` regenerator, `experiments`) formats results the same way.

/// A plain-text table printer with right-aligned numeric columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float to 2 decimal places.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with sign to one decimal place.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

/// Percent change from `from` to `to`.
#[must_use]
pub fn percent_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

/// Arithmetic mean (0 for an empty input).
#[must_use]
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["long-name".into(), "123.45".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(10.0), "+10.0%");
        assert!((percent_change(10.0, 12.0) - 20.0).abs() < 1e-12);
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean([]), 0.0);
    }
}
