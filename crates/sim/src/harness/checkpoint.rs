//! Architectural-state checkpoints (`tw checkpoint save` / `restore`).
//!
//! A checkpoint captures a [`Machine`]'s complete architectural state —
//! registers, memory, program counter, retired-instruction count, halt
//! flag — as a `tw-ckpt/v1` JSON document, so a long functional
//! fast-forward can be paid once and every later run resumed from the
//! saved position via [`Processor::run_from`].
//!
//! The format rides the workspace's hand-rolled JSON layer
//! ([`json`](super::json) to write, [`parse`](super::parse) to read).
//! The reader stores numbers as `f64`, which holds integers exactly
//! only up to 2^53 — register and memory words are full 64-bit values,
//! so they are written as `"0x…"` hex *strings* and round-trip
//! bit-identically. Addresses and counts that are structurally below
//! 2^32 stay plain numbers.
//!
//! Memory is stored sparsely: runs of consecutive non-zero words as
//! `[base, [words…]]` pairs. Workload images touch a small fraction of
//! the 64K-word address space, so checkpoints stay compact.
//!
//! [`Processor::run_from`]: crate::Processor::run_from

use tc_isa::{Addr, Machine, Reg};
use tc_workloads::Workload;

use super::error::TwError;
use super::json::Json;
use super::parse::{parse_json, Value};

/// Format marker of the checkpoint schema this module reads and
/// writes.
pub const CHECKPOINT_FORMAT: &str = "tw-ckpt/v1";

/// A parsed checkpoint: everything needed to rebuild the machine,
/// plus the workload identity it must be resumed against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Workload (benchmark) name the state belongs to.
    pub workload: String,
    /// Program counter (instruction index).
    pub pc: u32,
    /// Instructions retired so far (the stream position).
    pub retired: u64,
    /// Whether the machine has executed `halt`.
    pub halted: bool,
    /// Total data-memory size in words.
    pub mem_words: usize,
    /// Register file.
    pub regs: [u64; Reg::COUNT],
    /// Sparse memory image: `(base, words)` runs of non-zero words.
    pub mem: Vec<(usize, Vec<u64>)>,
}

impl Checkpoint {
    /// Captures `machine` (running `workload`) as a checkpoint.
    #[must_use]
    pub fn capture(workload: &Workload, machine: &Machine) -> Checkpoint {
        let mem = machine.memory();
        let mut runs: Vec<(usize, Vec<u64>)> = Vec::new();
        let mut i = 0;
        while i < mem.len() {
            if mem[i] == 0 {
                i += 1;
                continue;
            }
            let base = i;
            let mut words = Vec::new();
            while i < mem.len() && mem[i] != 0 {
                words.push(mem[i]);
                i += 1;
            }
            runs.push((base, words));
        }
        Checkpoint {
            workload: workload.name().to_owned(),
            pc: machine.pc().raw(),
            retired: machine.retired(),
            halted: machine.is_halted(),
            mem_words: mem.len(),
            regs: *machine.regs(),
            mem: runs,
        }
    }

    /// The structured (`tw-ckpt/v1`) form of this checkpoint.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("format", Json::Str(CHECKPOINT_FORMAT.to_owned())),
            ("workload", Json::Str(self.workload.clone())),
            ("pc", Json::UInt(u64::from(self.pc))),
            ("retired", Json::Str(hex(self.retired))),
            ("halted", Json::Bool(self.halted)),
            ("mem_words", Json::UInt(self.mem_words as u64)),
            (
                "regs",
                Json::Array(self.regs.iter().map(|&v| Json::Str(hex(v))).collect()),
            ),
            (
                "mem",
                Json::Array(
                    self.mem
                        .iter()
                        .map(|(base, words)| {
                            Json::Array(vec![
                                Json::UInt(*base as u64),
                                Json::Array(words.iter().map(|&w| Json::Str(hex(w))).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds the architectural machine state, validating the
    /// checkpoint against the workload it is resumed on.
    pub fn restore(&self, workload: &Workload) -> Result<Machine, TwError> {
        if self.workload != workload.name() {
            return Err(TwError::runtime(format!(
                "checkpoint belongs to workload '{}', not '{}'",
                self.workload,
                workload.name()
            )));
        }
        if self.mem_words != workload.mem_words() {
            return Err(TwError::runtime(format!(
                "checkpoint memory is {} words but workload '{}' uses {}",
                self.mem_words,
                workload.name(),
                workload.mem_words()
            )));
        }
        if (self.pc as usize) > workload.program().len() {
            return Err(TwError::runtime(format!(
                "checkpoint pc {} is outside the {}-instruction program",
                self.pc,
                workload.program().len()
            )));
        }
        let mut mem = vec![0u64; self.mem_words];
        for (base, words) in &self.mem {
            let end = base.checked_add(words.len()).ok_or_else(|| {
                TwError::runtime("checkpoint memory run overflows the address space".to_owned())
            })?;
            if end > mem.len() {
                return Err(TwError::runtime(format!(
                    "checkpoint memory run [{base}, {end}) exceeds {} words",
                    mem.len()
                )));
            }
            mem[*base..end].copy_from_slice(words);
        }
        Ok(Machine::from_parts(
            self.regs,
            mem,
            Addr::new(self.pc),
            self.retired,
            self.halted,
        ))
    }
}

fn hex(v: u64) -> String {
    format!("{v:#x}")
}

/// Parses a `tw-ckpt/v1` document. Never panics: every malformation —
/// truncated text, wrong types, out-of-range numbers, bad hex — comes
/// back as a runtime [`TwError`].
pub fn parse_checkpoint(text: &str) -> Result<Checkpoint, TwError> {
    let v = parse_json(text).map_err(|e| TwError::runtime(format!("bad checkpoint JSON: {e}")))?;
    let format = field_str(&v, "format")?;
    if format != CHECKPOINT_FORMAT {
        return Err(TwError::runtime(format!(
            "unsupported checkpoint format '{format}' (expected '{CHECKPOINT_FORMAT}')"
        )));
    }
    let workload = field_str(&v, "workload")?.to_owned();
    let pc = field_index(&v, "pc")?;
    let pc = u32::try_from(pc)
        .map_err(|_| TwError::runtime(format!("checkpoint pc {pc} exceeds the address space")))?;
    let retired = parse_hex(field_str(&v, "retired")?, "retired")?;
    let halted = match v.get("halted") {
        Some(Value::Bool(b)) => *b,
        _ => return Err(missing("halted", "a boolean")),
    };
    let mem_words = usize::try_from(field_index(&v, "mem_words")?)
        .map_err(|_| TwError::runtime("checkpoint mem_words does not fit".to_owned()))?;

    let regs_v = v
        .get("regs")
        .and_then(Value::as_array)
        .ok_or_else(|| missing("regs", "an array"))?;
    if regs_v.len() != Reg::COUNT {
        return Err(TwError::runtime(format!(
            "checkpoint has {} registers, expected {}",
            regs_v.len(),
            Reg::COUNT
        )));
    }
    let mut regs = [0u64; Reg::COUNT];
    for (i, rv) in regs_v.iter().enumerate() {
        let s = rv
            .as_str()
            .ok_or_else(|| TwError::runtime(format!("register {i} is not a hex string")))?;
        regs[i] = parse_hex(s, "register")?;
    }

    let mem_v = v
        .get("mem")
        .and_then(Value::as_array)
        .ok_or_else(|| missing("mem", "an array"))?;
    let mut mem = Vec::with_capacity(mem_v.len());
    for run in mem_v {
        let pair = run
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| TwError::runtime("memory run is not a [base, words] pair".to_owned()))?;
        let base = usize::try_from(value_index(&pair[0], "memory base")?)
            .map_err(|_| TwError::runtime("memory base does not fit".to_owned()))?;
        let words_v = pair[1]
            .as_array()
            .ok_or_else(|| TwError::runtime("memory words is not an array".to_owned()))?;
        let mut words = Vec::with_capacity(words_v.len());
        for wv in words_v {
            let s = wv
                .as_str()
                .ok_or_else(|| TwError::runtime("memory word is not a hex string".to_owned()))?;
            words.push(parse_hex(s, "memory word")?);
        }
        mem.push((base, words));
    }

    Ok(Checkpoint {
        workload,
        pc,
        retired,
        halted,
        mem_words,
        regs,
        mem,
    })
}

fn missing(key: &str, want: &str) -> TwError {
    TwError::runtime(format!("checkpoint field '{key}' is missing or not {want}"))
}

fn field_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, TwError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| missing(key, "a string"))
}

/// Reads a field that must be a non-negative integer small enough to
/// be exact in `f64` (addresses and sizes, not data words).
fn field_index(v: &Value, key: &str) -> Result<u64, TwError> {
    let f = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| missing(key, "a number"))?;
    float_index(f).ok_or_else(|| {
        TwError::runtime(format!(
            "checkpoint field '{key}' is not a whole non-negative integer"
        ))
    })
}

fn value_index(v: &Value, what: &str) -> Result<u64, TwError> {
    let f = v
        .as_f64()
        .ok_or_else(|| TwError::runtime(format!("{what} is not a number")))?;
    float_index(f)
        .ok_or_else(|| TwError::runtime(format!("{what} is not a whole non-negative integer")))
}

fn float_index(f: f64) -> Option<u64> {
    // 2^53: beyond this an f64 no longer represents every integer, so
    // the value may already have been silently rounded by the parser.
    if f.is_finite() && f >= 0.0 && f.fract() == 0.0 && f <= 9_007_199_254_740_992.0 {
        Some(f as u64)
    } else {
        None
    }
}

fn parse_hex(s: &str, what: &str) -> Result<u64, TwError> {
    let digits = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    u64::from_str_radix(digits, 16)
        .map_err(|_| TwError::runtime(format!("checkpoint {what} '{s}' is not a hex value")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_workloads::Benchmark;

    #[test]
    fn round_trip_is_bit_identical() {
        let workload = Benchmark::Compress.build_scaled(2);
        let mut machine = workload.machine();
        let program = workload.program();
        let blocks = tc_isa::BlockCache::new(program);
        machine.fast_forward(program, &blocks, 10_000).unwrap();

        let ckpt = Checkpoint::capture(&workload, &machine);
        let text = ckpt.to_json().pretty();
        let parsed = parse_checkpoint(&text).unwrap();
        assert_eq!(parsed, ckpt);

        let restored = parsed.restore(&workload).unwrap();
        assert_eq!(restored.pc(), machine.pc());
        assert_eq!(restored.retired(), machine.retired());
        assert_eq!(restored.is_halted(), machine.is_halted());
        assert_eq!(restored.regs(), machine.regs());
        assert_eq!(restored.memory(), machine.memory());
    }

    #[test]
    fn large_words_survive_the_f64_parser() {
        let workload = Benchmark::Compress.build_scaled(2);
        let mut machine = workload.machine();
        let program = workload.program();
        let blocks = tc_isa::BlockCache::new(program);
        machine.fast_forward(program, &blocks, 5_000).unwrap();

        let mut ckpt = Checkpoint::capture(&workload, &machine);
        // Force a register value no f64 can hold exactly.
        ckpt.regs[7] = u64::MAX - 1;
        let parsed = parse_checkpoint(&ckpt.to_json().render()).unwrap();
        assert_eq!(parsed.regs[7], u64::MAX - 1);
    }

    #[test]
    fn wrong_workload_is_rejected() {
        let compress = Benchmark::Compress.build_scaled(2);
        let go = Benchmark::Go.build_scaled(2);
        let ckpt = Checkpoint::capture(&compress, &compress.machine());
        assert!(ckpt.restore(&go).is_err());
    }

    #[test]
    fn malformed_documents_error_without_panicking() {
        for text in [
            "",
            "{",
            "null",
            "[]",
            r#"{"format":"tw-ckpt/v9"}"#,
            r#"{"format":"tw-ckpt/v1"}"#,
            r#"{"format":"tw-ckpt/v1","workload":"x","pc":-1}"#,
            r#"{"format":"tw-ckpt/v1","workload":"x","pc":1.5}"#,
            r#"{"format":"tw-ckpt/v1","workload":"x","pc":0,"retired":"zz"}"#,
        ] {
            assert!(parse_checkpoint(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn pc_boundary_values_convert_checked_not_truncated() {
        // `pc` crosses the document's only u64→u32 conversion: u32::MAX
        // must parse exactly and u32::MAX + 1 must error — a lossy cast
        // would silently fold it to 0.
        let doc = |pc: u64| {
            format!(
                r#"{{"format":"tw-ckpt/v1","workload":"x","pc":{pc},"retired":"0x0",
                    "halted":false,"mem_words":0,"regs":[{regs}],"mem":[]}}"#,
                regs = vec!["\"0x0\""; Reg::COUNT].join(",")
            )
        };
        let max = parse_checkpoint(&doc(u64::from(u32::MAX))).unwrap();
        assert_eq!(max.pc, u32::MAX);
        let over = parse_checkpoint(&doc(u64::from(u32::MAX) + 1)).unwrap_err();
        assert!(over.message().contains("address space"), "{over}");
        assert!(parse_checkpoint(&doc(u64::from(u32::MAX) - 1)).is_ok());
    }

    #[test]
    fn oversized_memory_run_is_rejected_at_restore() {
        let workload = Benchmark::Compress.build_scaled(2);
        let mut ckpt = Checkpoint::capture(&workload, &workload.machine());
        ckpt.mem.push((ckpt.mem_words - 1, vec![1, 2, 3]));
        assert!(ckpt.restore(&workload).is_err());
    }
}
