//! The event-trace sink: traced runs, the Chrome/Perfetto export, and
//! the interval-timeline renderers behind `tw trace` / `--timeline`.
//!
//! A traced run attaches a [`RingTracer`] to the processor and, after
//! the simulation, carries away three things: the bounded event stream
//! (with drop accounting), the exact per-kind [`TraceSummary`], and the
//! optional interval [`Timeline`]. [`chrome_trace_json`] serializes the
//! stream into the Chrome `trace_event` JSON format — one instant event
//! (`"ph": "i"`) per record with the simulated cycle as its timestamp,
//! plus one counter track (`"ph": "C"`) per timeline metric — which
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly.

use std::fmt::Write as _;

use tc_trace::{
    EventFilter, IntervalStats, RingTracer, Timeline, TraceEvent, TraceRecord, TraceSummary, Tracer,
};
use tc_workloads::Workload;

use crate::config::SimConfig;
use crate::harness::json::Json;
use crate::processor::Processor;
use crate::report::SimReport;

/// Default ring-buffer capacity for `tw trace` (`--limit` overrides).
pub const DEFAULT_TRACE_LIMIT: usize = 100_000;

/// Default timeline window width in cycles (`--interval` overrides).
pub const DEFAULT_TRACE_INTERVAL: u64 = 10_000;

/// How a traced run is instrumented.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Which event kinds the ring buffer stores (aggregates always see
    /// everything).
    pub filter: EventFilter,
    /// Timeline window width in cycles; `None` folds no timeline.
    pub interval: Option<u64>,
    /// Ring-buffer capacity in events.
    pub limit: usize,
}

impl Default for TraceOptions {
    fn default() -> TraceOptions {
        TraceOptions {
            filter: EventFilter::all(),
            interval: Some(DEFAULT_TRACE_INTERVAL),
            limit: DEFAULT_TRACE_LIMIT,
        }
    }
}

/// Everything a traced simulation produced.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The ordinary simulation report (its `trace` field is populated).
    pub report: SimReport,
    /// The recorded event stream, in emit order.
    pub records: Vec<TraceRecord>,
    /// Exact aggregate accounting (drop-immune).
    pub summary: TraceSummary,
    /// The interval timeline, when one was requested.
    pub timeline: Option<Timeline>,
}

/// Runs `workload` under `config` with a recording tracer attached.
#[must_use]
pub fn run_traced(config: SimConfig, workload: &Workload, options: &TraceOptions) -> TracedRun {
    let mut tracer = RingTracer::new(options.limit).with_filter(options.filter);
    if let Some(interval) = options.interval {
        tracer = tracer.with_interval(interval);
    }
    let mut processor = Processor::with_tracer(config, tracer);
    let report = processor.run(workload);
    let tracer = processor.tracer();
    TracedRun {
        // `RingTracer::summary` always returns `Some`; an all-zero
        // summary beats a panic if that invariant ever slips.
        summary: tracer.summary().unwrap_or_default(),
        records: tracer.records().to_vec(),
        timeline: tracer.timeline().cloned(),
        report,
    }
}

/// Serializes a traced run into Chrome `trace_event` JSON.
///
/// The document shape is `{"traceEvents": [...], "otherData": {...}}`:
/// process/thread-name metadata first, then the recorded instant
/// events, then the timeline counter tracks. Timestamps are simulated
/// cycles (the viewer's "µs" axis reads as cycles).
#[must_use]
pub fn chrome_trace_json(run: &TracedRun) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(run.records.len() + 8);
    events.push(metadata_event(
        "process_name",
        format!(
            "trace-weave: {} / {}",
            run.report.benchmark, run.report.config
        ),
    ));
    events.push(metadata_event("thread_name", "front end".to_string()));
    for record in &run.records {
        events.push(instant_event(record));
    }
    if let Some(timeline) = &run.timeline {
        push_counter_tracks(&mut events, timeline);
    }
    Json::Object(vec![
        ("traceEvents", Json::Array(events)),
        (
            "otherData",
            Json::Object(vec![
                ("benchmark", Json::Str(run.report.benchmark.clone())),
                ("config", Json::Str(run.report.config.clone())),
                ("cycles", Json::UInt(run.report.cycles)),
                ("emitted", Json::UInt(run.summary.emitted)),
                ("recorded", Json::UInt(run.summary.recorded)),
                ("dropped", Json::UInt(run.summary.dropped)),
                ("filtered", Json::UInt(run.summary.filtered)),
            ]),
        ),
    ])
}

fn metadata_event(name: &'static str, value: String) -> Json {
    Json::Object(vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::UInt(0)),
        ("tid", Json::UInt(0)),
        ("args", Json::Object(vec![("name", Json::Str(value))])),
    ])
}

fn instant_event(record: &TraceRecord) -> Json {
    let kind = record.event.kind();
    let mut args = event_args(&record.event);
    args.push(("seq", Json::UInt(record.seq)));
    Json::Object(vec![
        ("name", Json::Str(kind.name().to_string())),
        ("cat", Json::Str(kind.category().to_string())),
        ("ph", Json::Str("i".to_string())),
        ("ts", Json::UInt(record.cycle)),
        ("pid", Json::UInt(0)),
        ("tid", Json::UInt(0)),
        ("s", Json::Str("t".to_string())),
        ("args", Json::Object(args)),
    ])
}

fn hex(addr: tc_isa::Addr) -> Json {
    Json::Str(format!("0x{:x}", addr.byte_addr()))
}

fn event_args(event: &TraceEvent) -> Vec<(&'static str, Json)> {
    match *event {
        TraceEvent::TcHit {
            pc,
            active,
            total,
            full,
        } => vec![
            ("pc", hex(pc)),
            ("active", Json::UInt(u64::from(active))),
            ("total", Json::UInt(u64::from(total))),
            ("full", Json::Bool(full)),
        ],
        TraceEvent::TcMiss { pc }
        | TraceEvent::PromotedFault { pc }
        | TraceEvent::IndirectMispredict { pc }
        | TraceEvent::ReturnMispredict { pc }
        | TraceEvent::Misfetch { pc }
        | TraceEvent::L2Miss { pc }
        | TraceEvent::Retire { pc } => vec![("pc", hex(pc))],
        TraceEvent::TcFill {
            start,
            len,
            evicted,
            duplicate,
        } => vec![
            ("start", hex(start)),
            ("len", Json::UInt(u64::from(len))),
            ("evicted", Json::Bool(evicted)),
            ("duplicate", Json::Bool(duplicate)),
        ],
        TraceEvent::FillFinalize {
            start,
            len,
            dynamic_branches,
            promoted,
            reason,
        } => vec![
            ("start", hex(start)),
            ("len", Json::UInt(u64::from(len))),
            ("dynamic_branches", Json::UInt(u64::from(dynamic_branches))),
            ("promoted", Json::UInt(u64::from(promoted))),
            ("reason", Json::Str(reason.label().to_string())),
        ],
        TraceEvent::PackPerformed {
            head,
            tail,
            verdict,
        } => vec![
            ("head", Json::UInt(u64::from(head))),
            ("tail", Json::UInt(u64::from(tail))),
            ("verdict", Json::Str(verdict.label().to_string())),
        ],
        TraceEvent::PackRefused {
            pending,
            block,
            verdict,
        } => vec![
            ("pending", Json::UInt(u64::from(pending))),
            ("block", Json::UInt(u64::from(block))),
            ("verdict", Json::Str(verdict.label().to_string())),
        ],
        TraceEvent::Promotion { pc, dir } => vec![
            ("pc", hex(pc)),
            (
                "dir",
                Json::Str(if dir { "taken" } else { "not_taken" }.to_string()),
            ),
        ],
        TraceEvent::Demotion { pc, cause } => vec![
            ("pc", hex(pc)),
            ("cause", Json::Str(cause.label().to_string())),
        ],
        TraceEvent::CondMispredict { pc, taken } => {
            vec![("pc", hex(pc)), ("taken", Json::Bool(taken))]
        }
        TraceEvent::Repair { redirect_pc, lost } => vec![
            ("redirect_pc", hex(redirect_pc)),
            ("lost", Json::UInt(u64::from(lost))),
        ],
        TraceEvent::IcacheMiss { pc, latency } => {
            vec![("pc", hex(pc)), ("latency", Json::UInt(u64::from(latency)))]
        }
        TraceEvent::Fetch {
            pc,
            size,
            source,
            cond_branches,
            promoted,
            mispredicted,
        } => vec![
            ("pc", hex(pc)),
            ("size", Json::UInt(u64::from(size))),
            (
                "source",
                Json::Str(
                    match source {
                        tc_trace::FetchOrigin::TraceCache => "trace_cache",
                        tc_trace::FetchOrigin::ICache => "icache",
                    }
                    .to_string(),
                ),
            ),
            ("cond_branches", Json::UInt(u64::from(cond_branches))),
            ("promoted", Json::UInt(u64::from(promoted))),
            ("mispredicted", Json::Bool(mispredicted)),
        ],
        TraceEvent::WindowStall { wait, occupancy } => vec![
            ("wait", Json::UInt(u64::from(wait))),
            ("occupancy", Json::UInt(u64::from(occupancy))),
        ],
        TraceEvent::FaultInjected { locus, pc } => vec![
            ("locus", Json::Str(locus.name().to_string())),
            ("pc", hex(pc)),
        ],
        TraceEvent::FaultDetected { pc }
        | TraceEvent::FaultQuarantined { pc }
        | TraceEvent::FaultRecovered { pc } => vec![("pc", hex(pc))],
        TraceEvent::ModeBoundary { phase, insts } => vec![
            ("phase", Json::Str(phase.label().to_string())),
            ("insts", Json::UInt(insts)),
        ],
    }
}

/// Extracts one timeline metric from a window's tallies.
type MetricFn = fn(&IntervalStats) -> f64;

/// The four timeline metrics, as (track name, extractor) pairs.
const TIMELINE_TRACKS: [(&str, MetricFn); 4] = [
    ("fetch_rate", IntervalStats::fetch_rate),
    ("tc_hit_rate", IntervalStats::tc_hit_rate),
    ("mispredict_rate", IntervalStats::mispredict_rate),
    ("promotion_coverage", IntervalStats::promotion_coverage),
];

fn push_counter_tracks(events: &mut Vec<Json>, timeline: &Timeline) {
    for (name, metric) in TIMELINE_TRACKS {
        for (i, window) in timeline.windows().iter().enumerate() {
            events.push(Json::Object(vec![
                ("name", Json::Str(name.to_string())),
                ("ph", Json::Str("C".to_string())),
                ("ts", Json::UInt(i as u64 * timeline.interval())),
                ("pid", Json::UInt(0)),
                (
                    "args",
                    Json::Object(vec![("value", Json::Float(metric(window)))]),
                ),
            ]));
        }
    }
}

/// Serializes a timeline as an array of per-window objects (raw tallies
/// plus the derived rates).
#[must_use]
pub fn timeline_to_json(timeline: &Timeline) -> Json {
    Json::Object(vec![
        ("interval", Json::UInt(timeline.interval())),
        (
            "windows",
            Json::Array(
                timeline
                    .windows()
                    .iter()
                    .enumerate()
                    .map(|(i, w)| {
                        Json::Object(vec![
                            ("start_cycle", Json::UInt(i as u64 * timeline.interval())),
                            ("fetches", Json::UInt(w.fetches)),
                            ("insts", Json::UInt(w.insts)),
                            ("tc_lookups", Json::UInt(w.tc_lookups)),
                            ("tc_hits", Json::UInt(w.tc_hits)),
                            ("cond_branches", Json::UInt(w.cond_branches)),
                            ("promoted", Json::UInt(w.promoted)),
                            ("mispredicts", Json::UInt(w.mispredicts)),
                            ("fetch_rate", Json::Float(w.fetch_rate())),
                            ("tc_hit_rate", Json::Float(w.tc_hit_rate())),
                            ("mispredict_rate", Json::Float(w.mispredict_rate())),
                            ("promotion_coverage", Json::Float(w.promotion_coverage())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders a timeline as the plain-text table `--timeline` prints.
#[must_use]
pub fn timeline_table(timeline: &Timeline) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>9} {:>9} {:>9}",
        "cycle", "fetch rate", "tc hit%", "mispred%", "promo%"
    );
    for (i, w) in timeline.windows().iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>12} {:>10.2} {:>8.1}% {:>8.2}% {:>8.1}%",
            i as u64 * timeline.interval(),
            w.fetch_rate(),
            w.tc_hit_rate() * 100.0,
            w.mispredict_rate() * 100.0,
            w.promotion_coverage() * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::json::check_well_formed;
    use tc_workloads::Benchmark;

    fn small_traced() -> TracedRun {
        let workload = Benchmark::Compress.build_scaled(2);
        let config = SimConfig::headline_perf().with_max_insts(10_000);
        run_traced(
            config,
            &workload,
            &TraceOptions {
                filter: EventFilter::all(),
                interval: Some(1_000),
                limit: 2_000,
            },
        )
    }

    #[test]
    fn traced_run_records_events_and_timeline() {
        let run = small_traced();
        assert!(!run.records.is_empty());
        assert!(run.summary.emitted > 0);
        assert_eq!(run.summary.recorded, run.records.len() as u64);
        assert_eq!(
            run.report.trace.as_ref().map(|t| t.emitted),
            Some(run.summary.emitted)
        );
        let timeline = run.timeline.as_ref().expect("interval requested");
        assert!(!timeline.windows().is_empty());
        // Records arrive in emit order with strictly increasing seq.
        for pair in run.records.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].cycle <= pair[1].cycle);
        }
    }

    #[test]
    fn chrome_export_is_well_formed_and_accounts_drops() {
        let run = small_traced();
        assert!(run.summary.dropped > 0, "2k ring must overflow");
        let text = chrome_trace_json(&run).pretty();
        check_well_formed(&text).expect("chrome export is well-formed");
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\": \"i\""));
        assert!(text.contains("\"ph\": \"C\""));
        assert!(text.contains("\"dropped\""));
    }

    #[test]
    fn timeline_renderers_cover_every_window() {
        let run = small_traced();
        let timeline = run.timeline.as_ref().unwrap();
        let table = timeline_table(timeline);
        assert_eq!(table.lines().count(), timeline.windows().len() + 1);
        let json = timeline_to_json(timeline).pretty();
        check_well_formed(&json).expect("timeline json is well-formed");
        assert_eq!(
            json.matches("\"start_cycle\"").count(),
            timeline.windows().len()
        );
    }
}
