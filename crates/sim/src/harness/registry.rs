//! The named configuration registry.
//!
//! Every driver — `tw`, `paper`, the examples — resolves configuration
//! names through this table, and `tw list` prints it. Adding a preset
//! here is the whole job: parsing, listing, and the standard comparison
//! set all follow.

use tc_core::PackingPolicy;

use crate::config::SimConfig;

/// A named, buildable configuration preset.
pub struct ConfigPreset {
    /// Canonical CLI name.
    pub name: &'static str,
    /// Accepted alternate spellings (the paper's figures write
    /// `promo+pack`; the CLI historically accepted `promo-pack`).
    pub aliases: &'static [&'static str],
    /// One-line description for `tw list`.
    pub summary: &'static str,
    build: fn() -> SimConfig,
}

impl ConfigPreset {
    /// Builds a fresh configuration for this preset.
    #[must_use]
    pub fn build(&self) -> SimConfig {
        (self.build)()
    }

    /// Whether `name` names this preset (canonical or alias).
    #[must_use]
    pub fn matches(&self, name: &str) -> bool {
        self.name == name || self.aliases.contains(&name)
    }
}

/// The registry, in the paper's presentation order.
static PRESETS: [ConfigPreset; 6] = [
    ConfigPreset {
        name: "icache",
        aliases: &[],
        summary: "128 KB instruction cache, hybrid predictor (reference front end)",
        build: SimConfig::icache,
    },
    ConfigPreset {
        name: "baseline",
        aliases: &["tc"],
        summary: "128 KB trace cache, gshare multiple-branch predictor (section 3)",
        build: SimConfig::baseline,
    },
    ConfigPreset {
        name: "packing",
        aliases: &["pack"],
        summary: "baseline + unregulated trace packing (section 5)",
        build: build_packing,
    },
    ConfigPreset {
        name: "promotion",
        aliases: &["promo"],
        summary: "baseline + branch promotion at threshold 64 (section 4)",
        build: build_promotion,
    },
    ConfigPreset {
        name: "promo-pack",
        aliases: &["promo+pack", "headline-fetch"],
        summary: "promotion (t=64) + unregulated packing (Figure 10's best fetch rate)",
        build: SimConfig::headline_fetch,
    },
    ConfigPreset {
        name: "headline",
        aliases: &["headline-perf", "promo-pack-cost"],
        summary: "promotion (t=64) + cost-regulated packing (Figure 11's machine)",
        build: SimConfig::headline_perf,
    },
];

fn build_packing() -> SimConfig {
    SimConfig::packing(PackingPolicy::Unregulated)
}

fn build_promotion() -> SimConfig {
    SimConfig::promotion(64)
}

/// All presets, in presentation order.
#[must_use]
pub fn presets() -> &'static [ConfigPreset] {
    &PRESETS
}

/// Finds a preset by canonical name or alias.
#[must_use]
pub fn preset(name: &str) -> Option<&'static ConfigPreset> {
    PRESETS.iter().find(|p| p.matches(name))
}

/// Builds the configuration a name refers to.
#[must_use]
pub fn lookup(name: &str) -> Option<SimConfig> {
    preset(name).map(ConfigPreset::build)
}

/// The five standard front ends of Figure 10, in column order.
pub const STANDARD_FIVE: [&str; 5] = ["icache", "baseline", "packing", "promotion", "promo-pack"];

/// Builds Figure 10's five standard configurations with their names.
#[must_use]
pub fn standard_five() -> [(&'static str, SimConfig); 5] {
    STANDARD_FIVE.map(|name| (name, lookup(name).expect("standard preset registered")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_and_alias_resolves() {
        for p in presets() {
            assert!(lookup(p.name).is_some(), "{} missing", p.name);
            for a in p.aliases {
                assert!(lookup(a).is_some(), "alias {a} missing");
            }
        }
        assert!(lookup("no-such-config").is_none());
    }

    #[test]
    fn names_and_aliases_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in presets() {
            assert!(seen.insert(p.name), "duplicate name {}", p.name);
            for a in p.aliases {
                assert!(seen.insert(a), "duplicate alias {a}");
            }
        }
    }

    #[test]
    fn standard_five_matches_figure_10() {
        let five = standard_five();
        assert_eq!(five.len(), 5);
        assert_eq!(five[0].0, "icache");
        assert_eq!(five[4].0, "promo-pack");
        // The combined front end really carries both techniques.
        let combined = &five[4].1;
        assert!(combined.front_end.promotion.is_some());
    }

    #[test]
    fn aliases_build_identical_configs() {
        assert_eq!(
            lookup("promo-pack").unwrap().label(),
            lookup("promo+pack").unwrap().label()
        );
        assert_eq!(
            lookup("headline").unwrap().label(),
            lookup("headline-perf").unwrap().label()
        );
    }
}
