//! Crash-consistent artifact I/O: atomic writes and a CRC32 integrity
//! envelope.
//!
//! Every durable artifact the `tw` binary produces (`tw-ckpt/v1`,
//! `tw-plan/v1`, `tw-bench/v1`, Chrome traces) flows through
//! [`write_atomic`]: the bytes land in a temp file *in the target
//! directory*, are fsynced, and are then renamed over the final path.
//! A crash at any point leaves either the complete old artifact or the
//! complete new one at the final path — never a truncated hybrid. Torn
//! temp files are invisible to readers (they live under a dotted
//! `.name.tmp.pid.seq` name) and are overwritten or ignored on the next
//! run.
//!
//! Atomicity protects the rename window; the **CRC32 envelope** protects
//! everything after it (bit rot, partial copies, truncation in transit).
//! [`stamp`] splices a `"crc32"` field — 8 hex digits over the entire
//! document with the field itself zeroed — into the top of a rendered
//! JSON object; [`verify`] recomputes and compares. The field is
//! additive: every artifact parser in the workspace looks fields up by
//! name and ignores extras, so stamped artifacts load everywhere, and
//! unstamped artifacts from older versions verify as
//! [`Integrity::Unstamped`] and load unchanged. The CRC32 (IEEE,
//! reflected 0xEDB88320) is vendored below, consistent with the
//! workspace's no-external-crates discipline.
//!
//! Crashes cannot be scheduled in a test, so [`write_atomic_with`]
//! accepts an injected [`IoFaultKind`] from `tc-fault` that dies at the
//! two interesting points (torn temp write, crash before rename); the
//! contract tests drive it to prove the final path survives.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use tc_fault::chaos::IoFaultKind;

use super::error::TwError;

/// CRC32 lookup table (IEEE polynomial, reflected), built at compile
/// time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC32 (IEEE 802.3) of `bytes` — the same checksum `gzip`,
/// `zlib`, and PNG use.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(*b)) & 0xFF) as usize];
    }
    !crc
}

/// The placeholder digits a stamp is computed over; [`verify`] restores
/// them before recomputing.
const CRC_PLACEHOLDER: &str = "00000000";

/// The verification outcome for an artifact's integrity envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrity {
    /// A `"crc32"` stamp was present and matched.
    Verified(u32),
    /// No stamp — an artifact from before the envelope existed (or an
    /// external document). Accepted: the envelope is additive.
    Unstamped,
}

/// Splices a CRC32 stamp into a rendered JSON object.
///
/// The `"crc32"` field is inserted as the *first* member — right after
/// the opening brace — so truncation anywhere later in the document
/// cannot silently drop it. The checksum covers every byte of the
/// final text with the stamp digits zeroed, including any trailing
/// newline. Text that is not a non-empty JSON object (nothing we stamp)
/// is returned unchanged.
#[must_use]
pub fn stamp(text: &str) -> String {
    let field = if text.starts_with("{\n") {
        format!("  \"crc32\": \"{CRC_PLACEHOLDER}\",\n")
    } else if text.starts_with("{\"") {
        format!("\"crc32\":\"{CRC_PLACEHOLDER}\",")
    } else {
        return text.to_string();
    };
    let insert_at = if text.starts_with("{\n") { 2 } else { 1 };
    let mut out = String::with_capacity(text.len() + field.len());
    out.push_str(&text[..insert_at]);
    out.push_str(&field);
    out.push_str(&text[insert_at..]);
    let crc = crc32(out.as_bytes());
    let digits = format!("{crc:08x}");
    let pos = out
        .find(CRC_PLACEHOLDER)
        .expect("placeholder was just inserted");
    out.replace_range(pos..pos + 8, &digits);
    out
}

/// Checks the integrity envelope of `text`.
///
/// Returns [`Integrity::Unstamped`] when no `"crc32"` field exists
/// (legacy artifacts load unchanged), [`Integrity::Verified`] when the
/// recomputed checksum matches, and a one-line description on mismatch
/// — the caller wraps it with the file path.
pub fn verify(text: &str) -> Result<Integrity, String> {
    let Some((start, end)) = find_stamp(text) else {
        return Ok(Integrity::Unstamped);
    };
    let digits = &text[start..end];
    let Ok(stored) = u32::from_str_radix(digits, 16) else {
        return Err(format!(
            "crc32 stamp '{digits}' is not 8 hex digits (artifact is corrupt)"
        ));
    };
    let mut zeroed = text.to_string();
    zeroed.replace_range(start..end, CRC_PLACEHOLDER);
    let computed = crc32(zeroed.as_bytes());
    if computed == stored {
        Ok(Integrity::Verified(stored))
    } else {
        Err(format!(
            "crc32 mismatch: stored {stored:08x}, computed {computed:08x} \
             (artifact is corrupt or truncated)"
        ))
    }
}

/// Locates the 8 stamp digits: the value of the first `"crc32"` member.
fn find_stamp(text: &str) -> Option<(usize, usize)> {
    let key = text.find("\"crc32\"")?;
    let rest = &text[key + 7..];
    let after_colon = rest.trim_start().strip_prefix(':')?;
    let value = after_colon.trim_start().strip_prefix('"')?;
    let start = text.len() - value.len();
    let end = start + value.find('"')?;
    (end - start == 8).then_some((start, end))
}

/// Monotonic sequence for temp-file names, so concurrent writers in one
/// process never collide.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically replaces `path` with `text`: temp file in the same
/// directory, write, fsync, rename, directory fsync. A crash mid-write
/// leaves the previous contents of `path` intact.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    write_atomic_with(path, text, None)
}

/// [`write_atomic`] with an injectable crash point for contract tests.
///
/// `TornTemp` writes only a prefix of the bytes and then fails;
/// `CrashBeforeRename` writes and syncs the full temp file but fails
/// before the rename publishes it. Both leave the temp file behind —
/// exactly what a real crash would — and both must leave `path`
/// untouched.
pub fn write_atomic_with(path: &Path, text: &str, injected: Option<IoFaultKind>) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("not a writable file path: {}", path.display()),
        )
    })?;
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        seq
    ));

    let mut file = File::create(&tmp)?;
    match injected {
        Some(IoFaultKind::TornTemp) => {
            let half = text.len() / 2;
            file.write_all(&text.as_bytes()[..half])?;
            let _ = file.flush();
            return Err(io::Error::other("injected crash: torn temp write"));
        }
        Some(IoFaultKind::CrashBeforeRename) => {
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
            return Err(io::Error::other("injected crash: before rename"));
        }
        None => {}
    }

    let written = file
        .write_all(text.as_bytes())
        .and_then(|()| file.sync_all());
    drop(file);
    if let Err(e) = written {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Make the rename itself durable. Failure here is not actionable
    // (the data is already at the final path); best effort.
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads an artifact and checks its integrity envelope, mapping every
/// failure to a one-line [`TwError`] naming the path. This is the read
/// half every `tw` artifact consumer uses: corruption surfaces as
/// `tw: <path>: crc32 mismatch: …` instead of a downstream parse error.
pub fn read_verified(path: &str) -> Result<String, TwError> {
    let text = fs::read_to_string(path)
        .map_err(|e| TwError::runtime(format!("cannot read {path}: {e}")))?;
    match verify(&text) {
        Ok(_) => Ok(text),
        Err(why) => Err(TwError::runtime(format!("{path}: {why}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer checks against the IEEE CRC32 everyone else computes.
    #[test]
    fn crc32_matches_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn stamp_then_verify_round_trips_pretty_and_compact() {
        for text in [
            "{\n  \"format\": \"tw-ckpt/v1\",\n  \"n\": 3\n}\n",
            "{\"schema\":\"tw-plan/v1\",\"branches\":[]}",
        ] {
            let stamped = stamp(text);
            assert!(stamped.contains("\"crc32\""));
            match verify(&stamped) {
                Ok(Integrity::Verified(_)) => {}
                other => panic!("expected verified, got {other:?}"),
            }
            // Stamping is idempotent-adjacent: the stamped text still
            // parses and keeps every original field.
            let doc = super::super::parse::parse_json(&stamped).expect("stamped text parses");
            assert!(doc.get("crc32").is_some());
        }
    }

    #[test]
    fn verify_detects_every_single_byte_flip() {
        let stamped = stamp("{\n  \"format\": \"tw-ckpt/v1\",\n  \"cycles\": 12345\n}\n");
        // A flip inside the envelope itself (the `"crc32": "…"` member)
        // can at worst make the artifact look unstamped — the additive
        // envelope cannot distinguish "never stamped" from "stamp
        // destroyed". What it guarantees: no flip anywhere verifies as
        // intact, and every flip outside the envelope is a hard error.
        let env_start = stamped.find("\"crc32\"").unwrap();
        let (_, digits_end) = find_stamp(&stamped).unwrap();
        let envelope = env_start..=digits_end;
        for i in 0..stamped.len() {
            let mut bytes = stamped.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(corrupt) = String::from_utf8(bytes) else {
                continue;
            };
            let got = verify(&corrupt);
            assert!(
                !matches!(got, Ok(Integrity::Verified(_))),
                "flip at byte {i} verified as intact"
            );
            if !envelope.contains(&i) {
                assert!(got.is_err(), "flip at byte {i} went undetected: {got:?}");
            }
        }
    }

    #[test]
    fn verify_detects_truncation() {
        let stamped = stamp("{\n  \"format\": \"tw-ckpt/v1\",\n  \"cycles\": 12345\n}\n");
        for keep in [stamped.len() / 2, stamped.len() - 1] {
            assert!(
                verify(&stamped[..keep]).is_err(),
                "truncation to {keep} bytes accepted"
            );
        }
    }

    #[test]
    fn unstamped_text_is_accepted_as_legacy() {
        assert_eq!(
            verify("{\"schema\":\"tw-bench/v1\",\"cells\":[]}"),
            Ok(Integrity::Unstamped)
        );
        assert_eq!(verify("not json at all"), Ok(Integrity::Unstamped));
    }

    #[test]
    fn non_object_text_is_not_stamped() {
        assert_eq!(stamp("[1,2,3]"), "[1,2,3]");
        assert_eq!(stamp(""), "");
    }

    #[test]
    fn write_atomic_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("tw-artifact-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replace.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crashes_never_touch_the_final_path() {
        let dir = std::env::temp_dir().join(format!("tw-artifact-crash-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        let v1 = stamp("{\n  \"format\": \"tw-ckpt/v1\",\n  \"generation\": 1\n}\n");
        write_atomic(&path, &v1).unwrap();

        let v2 = stamp("{\n  \"format\": \"tw-ckpt/v1\",\n  \"generation\": 2\n}\n");
        for kind in [IoFaultKind::TornTemp, IoFaultKind::CrashBeforeRename] {
            let err = write_atomic_with(&path, &v2, Some(kind))
                .expect_err("injected crash must surface as an error");
            assert!(err.to_string().contains("injected crash"));
            let survivor = fs::read_to_string(&path).unwrap();
            assert_eq!(survivor, v1, "{kind:?} damaged the final path");
            assert!(matches!(verify(&survivor), Ok(Integrity::Verified(_))));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_verified_names_the_path_and_the_mismatch() {
        let dir = std::env::temp_dir().join(format!("tw-artifact-read-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.json");
        write_atomic(&path, &stamp("{\n  \"format\": \"x\"\n}\n")).unwrap();
        assert!(read_verified(&path.to_string_lossy()).is_ok());

        let bad = dir.join("bad.json");
        let mut text = stamp("{\n  \"format\": \"x\",\n  \"n\": 7\n}\n");
        text = text.replace("\"n\": 7", "\"n\": 9");
        fs::write(&bad, text).unwrap();
        let err = read_verified(&bad.to_string_lossy()).expect_err("corrupt must fail");
        assert_eq!(err.exit_code(), 1);
        assert!(
            err.message().contains("crc32 mismatch"),
            "{}",
            err.message()
        );
        assert!(err.message().contains("bad.json"));

        let err = read_verified("/nonexistent/missing.json").expect_err("missing must fail");
        assert_eq!(err.exit_code(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
