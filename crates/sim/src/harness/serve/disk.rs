//! The on-disk tier behind the single-flight result cache.
//!
//! With `--cache-dir`, every fulfilled 200 body is persisted as one
//! entry file, so a restarted daemon — even after `kill -9` — serves
//! previously computed keys from disk instead of re-simulating, with
//! bit-identical bodies. The tier is strictly best-effort and
//! fail-safe:
//!
//! * **Writes are atomic** (`harness::artifact::write_atomic`): a crash
//!   mid-store leaves either no entry or a complete one, never a
//!   truncated file at a live name.
//! * **Every read is validated**: a schema/CRC/length/key check guards
//!   each entry, so bit rot or a torn copy can never reach a client.
//!   Invalid entries are *quarantined* — renamed to `<name>.corrupt`,
//!   out of the namespace, kept for post-mortem — and the key is
//!   recomputed.
//! * **Disk trouble degrades, never breaks**: the first failed store
//!   flips the tier into read-only degraded mode (logged once to
//!   stderr, visible in `/v1/stats`); the daemon keeps serving from
//!   memory and still *reads* valid disk entries.
//!
//! Entry format (filename is the FNV-1a key hash + `.twc`):
//!
//! ```text
//! tw-cache/v1 <crc32 of everything below, 8 hex> <body length>
//! <canonical cache key, one line>
//! <body bytes>
//! ```
//!
//! The full cache key is stored and compared on load, so a hash
//! collision (or a file copied between cache dirs) can never alias a
//! different job's result.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use tc_fault::chaos::IoFaultPlan;

use crate::harness::artifact::{crc32, write_atomic_with};

use super::wire::fnv1a64;

/// First token of every entry file; bump on layout change.
pub const DISK_SCHEMA: &str = "tw-cache/v1";

/// Entry-file suffix. Anything else in the directory is ignored.
const ENTRY_SUFFIX: &str = ".twc";

/// Counters exported via `/v1/stats` under `"disk"`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Valid entries found by the startup scan (warm-start inventory).
    pub scanned: u64,
    /// Entries currently resident (approximate under concurrency).
    pub entries: u64,
    /// Lookups served from a valid disk entry.
    pub hits: u64,
    /// Bodies persisted.
    pub stored: u64,
    /// Failed stores (each flips or confirms degraded mode).
    pub store_errors: u64,
    /// Invalid entries renamed to `.corrupt`.
    pub quarantined: u64,
    /// Entries removed by the capacity sweep.
    pub evicted: u64,
    /// Whether the tier is read-only after a store failure.
    pub degraded: bool,
}

/// The persistent tier. All methods are `&self`; the tier is shared
/// across connection handlers and workers.
pub struct DiskTier {
    dir: PathBuf,
    /// Most entry files kept on disk; oldest-modified are swept first.
    capacity: usize,
    degraded: AtomicBool,
    entries: AtomicUsize,
    scanned: u64,
    hits: AtomicU64,
    stored: AtomicU64,
    store_errors: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
    /// Injected store failures for degraded-mode tests.
    faults: IoFaultPlan,
    write_seq: AtomicU64,
}

impl DiskTier {
    /// Opens (creating if needed) a cache directory and validates every
    /// existing entry: valid ones become the warm-start inventory,
    /// invalid ones are quarantined immediately so a corrupt file can
    /// never be served later.
    pub fn open(dir: &Path) -> std::io::Result<DiskTier> {
        DiskTier::open_with(dir, usize::MAX, IoFaultPlan::none())
    }

    /// [`DiskTier::open`] with an entry cap and injectable store
    /// faults (tests).
    pub fn open_with(
        dir: &Path,
        capacity: usize,
        faults: IoFaultPlan,
    ) -> std::io::Result<DiskTier> {
        fs::create_dir_all(dir)?;
        let mut scanned = 0u64;
        let mut quarantined = 0u64;
        for entry in fs::read_dir(dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.ends_with(ENTRY_SUFFIX) {
                continue;
            }
            match fs::read(&path) {
                Ok(bytes) if parse_entry(&bytes, None).is_some() => scanned += 1,
                // Unreadable or invalid: out of the namespace, kept
                // for post-mortem.
                _ => {
                    quarantine(&path);
                    quarantined += 1;
                }
            }
        }
        let tier = DiskTier {
            dir: dir.to_path_buf(),
            capacity: capacity.max(1),
            degraded: AtomicBool::new(false),
            entries: AtomicUsize::new(usize::try_from(scanned).unwrap_or(usize::MAX)),
            scanned,
            hits: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(quarantined),
            evicted: AtomicU64::new(0),
            faults,
            write_seq: AtomicU64::new(0),
        };
        Ok(tier)
    }

    /// The directory this tier persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a store failure has made the tier read-only.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}{ENTRY_SUFFIX}", fnv1a64(key.as_bytes())))
    }

    /// Loads the body stored for `key`, if a valid entry exists. An
    /// entry that fails validation (CRC, length, schema, or key
    /// mismatch) is quarantined and reported as a miss, so the caller
    /// recomputes.
    pub fn load(&self, key: &str) -> Option<String> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => return None,
        };
        match parse_entry(&bytes, Some(key)) {
            Some(body) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            None => {
                quarantine(&path);
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a fulfilled body. A failure flips the tier into
    /// read-only degraded mode (logged once); the in-memory cache is
    /// unaffected either way.
    pub fn store(&self, key: &str, body: &str) {
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let path = self.entry_path(key);
        let fresh = !path.exists();
        let entry = render_entry(key, body);
        let injected = self
            .faults
            .draw(self.write_seq.fetch_add(1, Ordering::Relaxed));
        match write_atomic_with(&path, &entry, injected) {
            Ok(()) => {
                self.stored.fetch_add(1, Ordering::Relaxed);
                if fresh && self.entries.fetch_add(1, Ordering::Relaxed) >= self.capacity {
                    self.sweep();
                }
            }
            Err(e) => {
                self.store_errors.fetch_add(1, Ordering::Relaxed);
                if !self.degraded.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "tw serve: cache-dir write failed ({e}); \
                         entering read-only degraded mode: {}",
                        self.dir.display()
                    );
                }
            }
        }
    }

    /// Removes the oldest-modified entries until the count is back
    /// under capacity. Racing sweeps may both run; removal is
    /// idempotent and the count self-corrects via `NotFound`.
    fn sweep(&self) {
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut entries: Vec<(std::time::SystemTime, PathBuf)> = dir
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(ENTRY_SUFFIX))
            .filter_map(|e| {
                let modified = e.metadata().ok()?.modified().ok()?;
                Some((modified, e.path()))
            })
            .collect();
        if entries.len() <= self.capacity {
            self.entries.store(entries.len(), Ordering::Relaxed);
            return;
        }
        entries.sort();
        let excess = entries.len() - self.capacity;
        for (_, path) in entries.iter().take(excess) {
            if fs::remove_file(path).is_ok() {
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.entries
            .store(entries.len() - excess, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            scanned: self.scanned,
            entries: u64::try_from(self.entries.load(Ordering::Relaxed)).unwrap_or(u64::MAX),
            hits: self.hits.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

fn quarantine(path: &Path) {
    let mut corrupt = path.as_os_str().to_os_string();
    corrupt.push(".corrupt");
    if fs::rename(path, &corrupt).is_err() {
        // Rename failed (another handler won the race, or the file
        // vanished); make sure the bad entry is at least gone.
        let _ = fs::remove_file(path);
    }
}

fn render_entry(key: &str, body: &str) -> String {
    let payload_crc = entry_crc(key, body);
    format!(
        "{DISK_SCHEMA} {payload_crc:08x} {}\n{key}\n{body}",
        body.len()
    )
}

fn entry_crc(key: &str, body: &str) -> u32 {
    let mut payload = Vec::with_capacity(key.len() + 1 + body.len());
    payload.extend_from_slice(key.as_bytes());
    payload.push(b'\n');
    payload.extend_from_slice(body.as_bytes());
    crc32(&payload)
}

/// Validates one entry file; returns the body. `expect_key` of `None`
/// (the startup scan) accepts any internally consistent entry;
/// `Some(key)` additionally requires the stored key to match exactly.
fn parse_entry(bytes: &[u8], expect_key: Option<&str>) -> Option<String> {
    let text = std::str::from_utf8(bytes).ok()?;
    let (header, payload) = text.split_once('\n')?;
    let mut fields = header.split(' ');
    if fields.next()? != DISK_SCHEMA {
        return None;
    }
    let stored_crc = u32::from_str_radix(fields.next()?, 16).ok()?;
    let body_len: usize = fields.next()?.parse().ok()?;
    if fields.next().is_some() {
        return None;
    }
    let (key, body) = payload.split_once('\n')?;
    if body.len() != body_len {
        return None;
    }
    if expect_key.is_some_and(|want| want != key) {
        return None;
    }
    (crc32(&bytes[header.len() + 1..]) == stored_crc).then(|| body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_fault::chaos::IoFaultKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tw-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let tier = DiskTier::open(&dir).unwrap();
        assert_eq!(tier.load("kind=sim|bench=gcc"), None);
        tier.store("kind=sim|bench=gcc", "{\"report\":1}");
        assert_eq!(
            tier.load("kind=sim|bench=gcc").as_deref(),
            Some("{\"report\":1}")
        );
        drop(tier);

        // A fresh tier on the same directory — the kill -9 shape —
        // serves the identical bytes.
        let tier = DiskTier::open(&dir).unwrap();
        assert_eq!(tier.stats().scanned, 1);
        assert_eq!(
            tier.load("kind=sim|bench=gcc").as_deref(),
            Some("{\"report\":1}")
        );
        // A different key never aliases, even though only the hash is
        // in the filename.
        assert_eq!(tier.load("kind=sim|bench=perl"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_served() {
        let dir = tmp_dir("quarantine");
        let tier = DiskTier::open(&dir).unwrap();
        tier.store("key-a", "body-a");
        let entry = tier.entry_path("key-a");
        let mut bytes = fs::read(&entry).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&entry, &bytes).unwrap();

        assert_eq!(tier.load("key-a"), None, "corrupt entry must miss");
        assert!(!entry.exists(), "corrupt entry must leave the namespace");
        let corrupt = entry.with_extension("twc.corrupt");
        assert!(corrupt.exists(), "corrupt entry kept for post-mortem");
        assert_eq!(tier.stats().quarantined, 1);

        // The startup scan quarantines too.
        tier.store("key-b", "body-b");
        let entry_b = tier.entry_path("key-b");
        fs::write(&entry_b, b"tw-cache/v1 deadbeef 6\nkey-b\nbody-b").unwrap();
        drop(tier);
        let tier = DiskTier::open(&dir).unwrap();
        assert_eq!(tier.stats().scanned, 0);
        assert_eq!(tier.stats().quarantined, 1);
        assert_eq!(tier.load("key-b"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_mislabeled_entries_are_rejected() {
        let full = render_entry("the-key", "the-body");
        assert_eq!(
            parse_entry(full.as_bytes(), Some("the-key")).as_deref(),
            Some("the-body")
        );
        for keep in 0..full.len() {
            assert_eq!(
                parse_entry(full[..keep].as_bytes(), Some("the-key")),
                None,
                "truncation to {keep} bytes accepted"
            );
        }
        assert_eq!(
            parse_entry(full.as_bytes(), Some("another-key")),
            None,
            "key mismatch accepted"
        );
        let wrong_schema = full.replace(DISK_SCHEMA, "tw-cache/v9");
        assert_eq!(parse_entry(wrong_schema.as_bytes(), Some("the-key")), None);
    }

    #[test]
    fn bodies_with_newlines_survive() {
        let dir = tmp_dir("newlines");
        let tier = DiskTier::open(&dir).unwrap();
        let body = "line one\nline two\n\nline four";
        tier.store("multiline", body);
        assert_eq!(tier.load("multiline").as_deref(), Some(body));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_failure_enters_read_only_degraded_mode() {
        let dir = tmp_dir("degraded");
        let tier = DiskTier::open_with(&dir, usize::MAX, IoFaultPlan::none()).unwrap();
        tier.store("good", "good-body");
        drop(tier);

        let tier =
            DiskTier::open_with(&dir, usize::MAX, IoFaultPlan::always(IoFaultKind::TornTemp))
                .unwrap();
        assert!(!tier.is_degraded());
        tier.store("doomed", "doomed-body");
        assert!(tier.is_degraded(), "failed store must degrade");
        assert_eq!(tier.load("doomed"), None, "failed store left no entry");
        // Degraded is read-only, not dead: valid entries still load,
        // and further stores are silently skipped.
        assert_eq!(tier.load("good").as_deref(), Some("good-body"));
        tier.store("late", "late-body");
        let stats = tier.stats();
        assert_eq!((stats.store_errors, stats.stored), (1, 0));
        assert!(stats.degraded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_sweep_removes_oldest_entries() {
        let dir = tmp_dir("sweep");
        let tier = DiskTier::open_with(&dir, 4, IoFaultPlan::none()).unwrap();
        for i in 0..8 {
            tier.store(&format!("key-{i}"), &format!("body-{i}"));
            // mtime granularity: keep insertion order observable.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let stats = tier.stats();
        assert!(stats.entries <= 5, "sweep kept {} entries", stats.entries);
        assert!(stats.evicted >= 3, "sweep evicted {}", stats.evicted);
        // The newest entry always survives.
        assert_eq!(tier.load("key-7").as_deref(), Some("body-7"));
        let _ = fs::remove_dir_all(&dir);
    }
}
