//! A minimal, hardened HTTP/1.1 layer over `std::net`.
//!
//! The workspace builds offline with no external crates, so the wire
//! protocol is hand-rolled: just enough HTTP/1.1 to serve JSON — one
//! request per connection (every response carries `Connection: close`),
//! `Content-Length` bodies on the way in, `Content-Length` or chunked
//! transfer encoding on the way out.
//!
//! Everything read from the socket is untrusted. Every field is
//! length-limited ([`HttpLimits`]), malformations come back as
//! [`HttpError`] values carrying the HTTP status the server should
//! answer with, and no input — truncated, oversized, non-UTF-8, or
//! hostile — panics.

use std::io::{BufRead, Write};

/// Hard limits on inbound requests; everything past them is rejected
/// with the corresponding 4xx before any further work happens.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Longest accepted request line or header line, in bytes.
    pub max_line: usize,
    /// Most header lines accepted.
    pub max_headers: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// A parsed inbound request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served, and how to answer.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request; there
    /// is nobody to answer.
    Closed,
    /// A socket-level failure (including read timeouts) mid-request;
    /// the connection is unusable.
    Io(std::io::Error),
    /// The request violates the protocol or the limits: answer with
    /// `status` and the one-line reason, then close.
    Malformed {
        /// HTTP status to answer with (400/405/413/431).
        status: u16,
        /// One-line diagnostic for the response body.
        reason: String,
    },
}

impl HttpError {
    fn bad(reason: impl Into<String>) -> HttpError {
        HttpError::Malformed {
            status: 400,
            reason: reason.into(),
        }
    }
}

/// Reads one line (through `\n`), enforcing the line-length cap.
fn read_line_limited(
    reader: &mut impl BufRead,
    max_line: usize,
    what: &str,
) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf().map_err(HttpError::Io)?;
        if buf.is_empty() {
            if line.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::bad(format!("{what}: truncated request")));
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if line.len() + take > max_line {
            reader.consume(take);
            return Err(HttpError::Malformed {
                status: 431,
                reason: format!("{what}: line exceeds {max_line} bytes"),
            });
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::bad(format!("{what}: not valid UTF-8")))
}

/// Reads and validates one full request from the stream.
///
/// # Errors
///
/// [`HttpError::Closed`] on a clean pre-request disconnect,
/// [`HttpError::Io`] on socket failures, and [`HttpError::Malformed`]
/// (with the status to answer) on protocol or limit violations.
pub fn read_request(reader: &mut impl BufRead, limits: &HttpLimits) -> Result<Request, HttpError> {
    let request_line = read_line_limited(reader, limits.max_line, "request line")?;
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad(format!(
            "malformed request line {request_line:?}"
        )));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!(
            "malformed request line {request_line:?}"
        )));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::bad(format!("malformed method {method:?}")));
    }
    // Strip the query string; no endpoint takes query parameters.
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(HttpError::bad(format!(
            "malformed request target {target:?}"
        )));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line_limited(reader, limits.max_line, "header")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::Malformed {
                status: 431,
                reason: format!("more than {} header lines", limits.max_headers),
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad(format!("malformed header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Chunked request bodies are not supported; insisting on
    // Content-Length keeps body handling a single bounded read.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::Malformed {
            status: 411,
            reason: "chunked request bodies are not supported; send Content-Length".to_string(),
        });
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => {
            let n: u64 = v
                .parse()
                .map_err(|_| HttpError::bad(format!("malformed Content-Length {v:?}")))?;
            usize::try_from(n)
                .ok()
                .filter(|&n| n <= limits.max_body)
                .ok_or(HttpError::Malformed {
                    status: 413,
                    reason: format!(
                        "body of {n} bytes exceeds the {}-byte limit",
                        limits.max_body
                    ),
                })?
        }
    };
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;

    Ok(Request {
        method: method.to_string(),
        path,
        headers,
        body,
    })
}

/// The reason phrase for the status codes this server emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// An outbound response: status, extra headers, JSON body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra `(name, value)` headers (e.g. `X-Cache`).
    pub headers: Vec<(&'static str, String)>,
    /// The body; always `application/json` in this server.
    pub body: String,
}

impl Response {
    /// A JSON response with no extra headers.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body,
        }
    }

    /// Adds an extra response header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }
}

/// Chunk size for streamed (chunked transfer-encoding) bodies.
pub const STREAM_CHUNK: usize = 64 * 1024;

/// Writes `response`, streaming bodies larger than [`STREAM_CHUNK`]
/// with chunked transfer encoding so multi-megabyte trace exports go
/// out incrementally instead of being buffered behind one write.
///
/// # Errors
///
/// Propagates socket write failures (the connection is then dropped).
pub fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\nconnection: close\r\n",
        response.status,
        reason_phrase(response.status)
    );
    for (name, value) in &response.headers {
        // Defensive: a header value with CR/LF would let a bug inject
        // response lines; none of ours ever carry them.
        debug_assert!(!value.contains(['\r', '\n']));
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    let body = response.body.as_bytes();
    if body.len() <= STREAM_CHUNK {
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
    } else {
        head.push_str("transfer-encoding: chunked\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        for chunk in body.chunks(STREAM_CHUNK) {
            stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
            stream.write_all(chunk)?;
            stream.write_all(b"\r\n")?;
        }
        stream.write_all(b"0\r\n\r\n")?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(text.as_bytes()), &HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body_and_strips_query() {
        let req =
            parse("POST /v1/sim?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\n{\"a\"rest")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sim");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn malformed_requests_map_to_statuses() {
        let status = |text: &str| match parse(text) {
            Err(HttpError::Malformed { status, .. }) => status,
            other => panic!("expected Malformed, got {other:?}"),
        };
        assert_eq!(status("nonsense\r\n\r\n"), 400);
        assert_eq!(status("GET /x HTTP/2\r\n\r\n"), 400);
        assert_eq!(status("get /x HTTP/1.1\r\n\r\n"), 400, "lower-case method");
        assert_eq!(status("GET x HTTP/1.1\r\n\r\n"), 400, "relative target");
        assert_eq!(status("POST / HTTP/1.1\r\nbroken header\r\n\r\n"), 400);
        assert_eq!(status("POST / HTTP/1.1\r\nContent-Length: zz\r\n\r\n"), 400);
        assert_eq!(
            status("POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"),
            413
        );
        assert_eq!(
            status("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            411
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert_eq!(status(&long), 431);
        let many = format!("GET / HTTP/1.1\r\n{}\r\n", "h: v\r\n".repeat(100));
        assert_eq!(status(&many), 431);
    }

    #[test]
    fn closed_and_truncated_are_distinguished() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(
            parse("GET / HT"),
            Err(HttpError::Malformed { status: 400, .. })
        ));
        // Truncated body: read_exact fails with Io.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn responses_write_content_length_or_chunked() {
        let mut out = Vec::new();
        let small = Response::json(200, "{}".to_string()).with_header("X-Cache", "hit");
        write_response(&mut out, &small).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"), "{text}");
        assert!(text.contains("X-Cache: hit\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");

        let mut out = Vec::new();
        let big = Response::json(200, "x".repeat(STREAM_CHUNK + 10));
        write_response(&mut out, &big).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked\r\n"), "chunked");
        assert!(text.ends_with("0\r\n\r\n"), "chunk terminator");
        assert!(
            text.contains(&format!("{STREAM_CHUNK:x}\r\n")),
            "chunk size"
        );
    }
}
