//! The `tw serve` daemon: accept loop, router, worker pool, and
//! graceful shutdown.
//!
//! One thread per connection reads a single request (bounded by
//! [`HttpLimits`]), routes it, and answers; simulation jobs go through
//! the single-flight [`ResultCache`] and the bounded [`JobQueue`] to a
//! fixed pool of worker threads. Every failure path — malformed HTTP,
//! bad JSON, a full queue, even a panicking job — turns into a
//! structured JSON error with the right status code; the daemon itself
//! never panics and never grows without bound.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tc_fault::chaos::IoFaultPlan;
use tc_workloads::{Workload, WorkloadId};

use crate::config::SimConfig;
use crate::processor::Processor;

use crate::harness::analyze::{build_plan, plan_to_json};
use crate::harness::error::TwError;
use crate::harness::json::{report_to_json, reports_to_json, trace_summary_to_json, Json};
use crate::harness::registry;
use crate::harness::runner::run_matrix;
use crate::harness::trace::{chrome_trace_json, run_traced, timeline_to_json, TraceOptions};

use super::cache::{Lookup, ResultCache};
use super::disk::DiskTier;
use super::http::{read_request, write_response, HttpError, HttpLimits, Request, Response};
use super::queue::JobQueue;
use super::wire::{
    error_body, error_status, parse_job, JobKind, JobLimits, JobSpec, StoredError, WIRE_SCHEMA,
};

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Most jobs queued before pushes shed with 503.
    pub queue_depth: usize,
    /// Most cached result bodies resident at once.
    pub cache_entries: usize,
    /// Most simultaneous connections before new ones shed with 503.
    pub max_conns: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Largest accepted per-job `insts`.
    pub max_insts: u64,
    /// `insts` when a job omits it.
    pub default_insts: u64,
    /// Directory for the persistent cache tier (`--cache-dir`);
    /// `None` keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Most entry files the persistent tier keeps before sweeping the
    /// oldest.
    pub cache_disk_entries: usize,
    /// Per-connection socket read deadline.
    pub read_timeout: Duration,
    /// Per-connection socket write deadline.
    pub write_timeout: Duration,
    /// Injected persistent-tier store failures (degraded-mode tests).
    pub disk_faults: IoFaultPlan,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: crate::harness::runner::default_jobs(),
            queue_depth: 256,
            cache_entries: 512,
            max_conns: 256,
            max_body: 1024 * 1024,
            max_insts: 100_000_000,
            default_insts: 2_000_000,
            cache_dir: None,
            cache_disk_entries: 65_536,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(30),
            disk_faults: IoFaultPlan::none(),
        }
    }
}

/// End-of-run accounting, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeSummary {
    /// Requests answered (all routes, all statuses).
    pub requests: u64,
    /// Responses in the 4xx class.
    pub client_errors: u64,
    /// Responses in the 5xx class.
    pub server_errors: u64,
    /// Jobs whose execution panicked (answered as 500s).
    pub job_panics: u64,
    /// Connections shed at the accept gate.
    pub conns_shed: u64,
}

/// One queued unit of work: the validated spec plus its cache key.
struct Job {
    spec: JobSpec,
    key: String,
}

/// State shared by the accept loop, connection handlers, and workers.
struct ServeState {
    config: ServeConfig,
    /// The resolved bound address (`:0` resolved to the real port);
    /// used by the shutdown path to wake the accept loop.
    bound: SocketAddr,
    queue: JobQueue<Job>,
    cache: ResultCache,
    /// The persistent tier, when `--cache-dir` is set.
    disk: Option<DiskTier>,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    requests: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    job_panics: AtomicU64,
    conns_shed: AtomicU64,
    /// Socket deadline arms that failed (logged once, counted here).
    deadline_errors: AtomicU64,
    deadline_logged: AtomicBool,
    /// Workloads are immutable once built; build each at most once and
    /// share it across jobs.
    workloads: Mutex<HashMap<&'static str, Arc<Workload>>>,
}

impl ServeState {
    fn workload(&self, bench: WorkloadId) -> Arc<Workload> {
        // Build outside the lock would race duplicate builds; builds
        // are fast (program assembly, no simulation), so holding the
        // lock across the miss is the simpler correct choice.
        let mut map = match self.workloads.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Arc::clone(
            map.entry(bench.name())
                .or_insert_with(|| Arc::new(bench.build())),
        )
    }

    fn job_limits(&self) -> JobLimits {
        JobLimits {
            max_insts: self.config.max_insts,
            default_insts: self.config.default_insts,
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the listener. The server is not serving until
    /// [`Server::run`] is called.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission).
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let disk = match &config.cache_dir {
            Some(dir) => Some(DiskTier::open_with(
                dir,
                config.cache_disk_entries,
                config.disk_faults,
            )?),
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        let bound = listener.local_addr()?;
        let state = Arc::new(ServeState {
            bound,
            queue: JobQueue::new(config.workers.clamp(1, 16), config.queue_depth),
            cache: ResultCache::new(config.cache_entries),
            disk,
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            job_panics: AtomicU64::new(0),
            conns_shed: AtomicU64::new(0),
            deadline_errors: AtomicU64::new(0),
            deadline_logged: AtomicBool::new(false),
            workloads: Mutex::new(HashMap::new()),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves `:0` to the real port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `POST /v1/shutdown` arrives, then drains: open
    /// connections finish, queued jobs complete, workers exit.
    #[must_use]
    pub fn run(self) -> ServeSummary {
        let state = &self.state;
        let workers: Vec<_> = (0..state.config.workers.max(1))
            .map(|home| {
                let state = Arc::clone(state);
                std::thread::spawn(move || worker_loop(&state, home))
            })
            .collect();

        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if state.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { continue };
            // Opportunistically reap finished handlers so the handle
            // list tracks live connections, not connection history.
            handlers.retain(|h| !h.is_finished());
            let active = state.active_conns.fetch_add(1, Ordering::AcqRel);
            if active >= state.config.max_conns {
                state.active_conns.fetch_sub(1, Ordering::AcqRel);
                state.conns_shed.fetch_add(1, Ordering::Relaxed);
                shed_connection(stream, state);
                continue;
            }
            let state = Arc::clone(state);
            handlers.push(std::thread::spawn(move || {
                // A panicking handler must not take the daemon down;
                // the connection just drops.
                let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(stream, &state)));
                state.active_conns.fetch_sub(1, Ordering::AcqRel);
            }));
        }

        // Drain: finish open connections (their queued jobs are served
        // by the still-running workers), then retire the workers.
        for h in handlers {
            let _ = h.join();
        }
        state.queue.close();
        for w in workers {
            let _ = w.join();
        }
        ServeSummary {
            requests: state.requests.load(Ordering::Relaxed),
            client_errors: state.client_errors.load(Ordering::Relaxed),
            server_errors: state.server_errors.load(Ordering::Relaxed),
            job_panics: state.job_panics.load(Ordering::Relaxed),
            conns_shed: state.conns_shed.load(Ordering::Relaxed),
        }
    }
}

/// Records a failed socket-deadline arm: logged to stderr once per
/// process (not per connection), counted in `/v1/stats` every time.
/// A connection whose deadline did not arm still gets served — but an
/// operator can see the regression instead of it being swallowed.
fn note_deadline_failure(state: &ServeState, what: &str, result: std::io::Result<()>) {
    if let Err(e) = result {
        state.deadline_errors.fetch_add(1, Ordering::Relaxed);
        if !state.deadline_logged.swap(true, Ordering::Relaxed) {
            eprintln!(
                "tw serve: failed to arm {what} deadline ({e}); \
                 counting further failures in /v1/stats"
            );
        }
    }
}

/// Answers an over-capacity connection with a 503 without spawning a
/// handler for it.
fn shed_connection(mut stream: TcpStream, state: &ServeState) {
    note_deadline_failure(
        state,
        "shed-write",
        stream.set_write_timeout(Some(Duration::from_secs(2))),
    );
    let response = Response::json(
        503,
        error_body(503, "connection limit reached; retry shortly"),
    )
    .with_header("X-Cache", "shed");
    count_response(state, response.status);
    let _ = write_response(&mut stream, &response);
}

fn count_response(state: &ServeState, status: u16) {
    state.requests.fetch_add(1, Ordering::Relaxed);
    if (400..500).contains(&status) {
        state.client_errors.fetch_add(1, Ordering::Relaxed);
    } else if status >= 500 {
        state.server_errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn handle_connection(stream: TcpStream, state: &ServeState) {
    note_deadline_failure(
        state,
        "read",
        stream.set_read_timeout(Some(state.config.read_timeout)),
    );
    note_deadline_failure(
        state,
        "write",
        stream.set_write_timeout(Some(state.config.write_timeout)),
    );
    let limits = HttpLimits {
        max_body: state.config.max_body,
        ..HttpLimits::default()
    };
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader, &limits) {
        Ok(request) => route(&request, state),
        // Nothing arrived, or the socket died: nobody to answer.
        Err(HttpError::Closed | HttpError::Io(_)) => return,
        Err(HttpError::Malformed { status, reason }) => {
            Response::json(status, error_body(status, &reason))
        }
    };
    count_response(state, response.status);
    let mut stream = reader.into_inner();
    let _ = write_response(&mut stream, &response);
    let _ = stream.flush();
}

fn route(request: &Request, state: &ServeState) -> Response {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Response::json(
            200,
            Json::Object(vec![
                ("schema", Json::Str(WIRE_SCHEMA.to_string())),
                ("ok", Json::Bool(true)),
            ])
            .render(),
        ),
        ("GET", "/v1/stats") => Response::json(200, stats_body(state)),
        ("GET", "/v1/presets") => Response::json(200, presets_body()),
        ("GET", "/v1/workloads") => Response::json(200, workloads_body()),
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::Release);
            // The accept loop is parked in `accept`; a throwaway
            // connection to ourselves wakes it to observe the flag.
            let _ = TcpStream::connect_timeout(&state.bound, Duration::from_secs(2));
            Response::json(
                200,
                Json::Object(vec![
                    ("schema", Json::Str(WIRE_SCHEMA.to_string())),
                    ("ok", Json::Bool(true)),
                    (
                        "draining",
                        Json::UInt(u64::try_from(state.queue.stats().depth).unwrap_or(u64::MAX)),
                    ),
                ])
                .render(),
            )
        }
        ("POST", "/v1/sim") => job_response(JobKind::Sim, request, state),
        ("POST", "/v1/compare") => job_response(JobKind::Compare, request, state),
        ("POST", "/v1/faults") => job_response(JobKind::Faults, request, state),
        ("POST", "/v1/trace") => job_response(JobKind::Trace, request, state),
        ("POST", "/v1/analyze") => job_response(JobKind::Analyze, request, state),
        (
            _,
            "/healthz" | "/v1/stats" | "/v1/presets" | "/v1/workloads" | "/v1/shutdown" | "/v1/sim"
            | "/v1/compare" | "/v1/faults" | "/v1/trace" | "/v1/analyze",
        ) => Response::json(
            405,
            error_body(405, &format!("{} does not accept {}", path, request.method)),
        ),
        _ => Response::json(404, error_body(404, &format!("no route {path:?}"))),
    }
}

fn job_response(kind: JobKind, request: &Request, state: &ServeState) -> Response {
    let spec = match parse_job(kind, &request.body, &state.job_limits()) {
        Ok(spec) => spec,
        Err(e) => {
            let status = error_status(&e);
            return Response::json(status, error_body(status, e.message()));
        }
    };
    let key = spec.cache_key();
    let hash = spec.key_hash();
    match state.cache.lookup(&key) {
        Lookup::Hit(body) => ok_cached(&body, "hit", &hash),
        Lookup::Join => match state.cache.wait(&key) {
            Ok(body) => ok_cached(&body, "join", &hash),
            Err(e) => Response::json(e.status, error_body(e.status, &e.message))
                .with_header("X-Cache", "join"),
        },
        Lookup::Owner => {
            // The single-flight slot is held; probe the persistent tier
            // before paying for a simulation. A valid entry fulfills
            // the slot (joiners get the same bytes) without touching
            // the queue.
            if let Some(disk) = &state.disk {
                if let Some(body) = disk.load(&key) {
                    let body = Arc::new(body);
                    state.cache.fulfill(&key, Arc::clone(&body));
                    return ok_cached(&body, "disk", &hash);
                }
            }
            if state.shutdown.load(Ordering::Acquire) {
                let e = StoredError {
                    status: 503,
                    message: "server is draining".to_string(),
                };
                state.cache.fail(&key, e.clone());
                return Response::json(e.status, error_body(e.status, &e.message));
            }
            if state
                .queue
                .push(Job {
                    spec,
                    key: key.clone(),
                })
                .is_err()
            {
                let e = StoredError {
                    status: 503,
                    message: "job queue is full; retry shortly".to_string(),
                };
                state.cache.fail(&key, e.clone());
                return Response::json(e.status, error_body(e.status, &e.message))
                    .with_header("X-Cache", "shed");
            }
            match state.cache.wait(&key) {
                Ok(body) => ok_cached(&body, "miss", &hash),
                Err(e) => Response::json(e.status, error_body(e.status, &e.message))
                    .with_header("X-Cache", "miss"),
            }
        }
    }
}

fn ok_cached(body: &Arc<String>, disposition: &'static str, hash: &str) -> Response {
    Response::json(200, String::clone(body))
        .with_header("X-Cache", disposition)
        .with_header("X-Key", hash.to_string())
}

fn worker_loop(state: &ServeState, home: usize) {
    while let Some(job) = state.queue.pop(home) {
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(state, &job.spec)));
        match outcome {
            Ok(Ok(body)) => {
                // Persist before publishing: once a client can see the
                // body, a crash must not lose it.
                if let Some(disk) = &state.disk {
                    disk.store(&job.key, &body);
                }
                state.cache.fulfill(&job.key, Arc::new(body));
            }
            Ok(Err(e)) => state.cache.fail(
                &job.key,
                StoredError {
                    status: error_status(&e),
                    message: e.message().to_string(),
                },
            ),
            Err(_panic) => {
                state.job_panics.fetch_add(1, Ordering::Relaxed);
                state.cache.fail(
                    &job.key,
                    StoredError {
                        status: 500,
                        message: "internal error: job panicked".to_string(),
                    },
                );
            }
        }
    }
}

fn preset_config(spec: &JobSpec) -> Result<SimConfig, TwError> {
    registry::lookup(spec.preset)
        .ok_or_else(|| TwError::runtime(format!("registry is missing {:?}", spec.preset)))
}

fn envelope(kind: JobKind, spec: &JobSpec, fields: Vec<(&'static str, Json)>) -> String {
    let mut members = vec![
        ("schema", Json::Str(WIRE_SCHEMA.to_string())),
        ("kind", Json::Str(kind.name().to_string())),
        ("key", Json::Str(spec.key_hash())),
    ];
    members.extend(fields);
    Json::Object(members).render()
}

/// Executes one validated job. Runs on a worker thread; any panic is
/// caught by the caller and reported as a 500.
fn run_job(state: &ServeState, spec: &JobSpec) -> Result<String, TwError> {
    let workload = state.workload(spec.bench);
    match spec.kind {
        JobKind::Sim => {
            let mut config = preset_config(spec)?.with_max_insts(spec.insts);
            if spec.perfect {
                config = config.with_perfect_disambiguation();
            }
            if spec.auto_plan {
                // Worker threads are the parallelism; the plan profiler
                // runs serially within one.
                config = config.with_promotion_plan(build_plan(&workload, spec.insts, 1)?);
            }
            if spec.timeline {
                let options = TraceOptions {
                    filter: tc_trace::EventFilter::none(),
                    interval: Some(crate::harness::trace::DEFAULT_TRACE_INTERVAL),
                    limit: 0,
                };
                let run = run_traced(config, &workload, &options);
                let timeline = run.timeline.as_ref().map_or(Json::Null, timeline_to_json);
                return Ok(envelope(
                    spec.kind,
                    spec,
                    vec![
                        ("report", report_to_json(&run.report)),
                        ("timeline", timeline),
                    ],
                ));
            }
            let report = Processor::new(config).run(&workload);
            Ok(envelope(
                spec.kind,
                spec,
                vec![("report", report_to_json(&report))],
            ))
        }
        JobKind::Compare => {
            let cells: Vec<(WorkloadId, SimConfig)> = registry::standard_five()
                .into_iter()
                .map(|(_, config)| {
                    let config = if spec.perfect {
                        config.with_perfect_disambiguation()
                    } else {
                        config
                    };
                    (spec.bench, config.with_max_insts(spec.insts))
                })
                .collect();
            // Serial within the job: the worker pool is the fan-out.
            let reports = run_matrix(&cells, 1);
            let configs = Json::Array(
                registry::STANDARD_FIVE
                    .iter()
                    .map(|name| Json::Str((*name).to_string()))
                    .collect(),
            );
            Ok(envelope(
                spec.kind,
                spec,
                vec![("configs", configs), ("reports", reports_to_json(&reports))],
            ))
        }
        JobKind::Faults => {
            let fault = spec
                .fault
                .as_ref()
                .ok_or_else(|| TwError::runtime("internal error: faults job without a plan"))?;
            let config = preset_config(spec)?
                .with_max_insts(spec.insts)
                .with_fault_plan(fault.plan());
            let report = Processor::new(config).run(&workload);
            Ok(envelope(
                spec.kind,
                spec,
                vec![("report", report_to_json(&report))],
            ))
        }
        JobKind::Trace => {
            let trace = spec
                .trace
                .as_ref()
                .ok_or_else(|| TwError::runtime("internal error: trace job without options"))?;
            let options = TraceOptions {
                filter: trace.filter(),
                interval: Some(trace.interval),
                limit: trace.limit,
            };
            let config = preset_config(spec)?.with_max_insts(spec.insts);
            let run = run_traced(config, &workload, &options);
            Ok(envelope(
                spec.kind,
                spec,
                vec![
                    ("summary", trace_summary_to_json(&run.summary)),
                    ("chrome_trace", chrome_trace_json(&run)),
                ],
            ))
        }
        JobKind::Analyze => {
            let plan = build_plan(&workload, spec.insts, 1)?;
            Ok(envelope(
                spec.kind,
                spec,
                vec![("plan", plan_to_json(&plan))],
            ))
        }
    }
}

fn stats_body(state: &ServeState) -> String {
    let queue = state.queue.stats();
    let cache = state.cache.stats();
    Json::Object(vec![
        ("schema", Json::Str(WIRE_SCHEMA.to_string())),
        (
            "requests",
            Json::UInt(state.requests.load(Ordering::Relaxed)),
        ),
        (
            "active_conns",
            Json::UInt(
                u64::try_from(state.active_conns.load(Ordering::Relaxed)).unwrap_or(u64::MAX),
            ),
        ),
        (
            "client_errors",
            Json::UInt(state.client_errors.load(Ordering::Relaxed)),
        ),
        (
            "server_errors",
            Json::UInt(state.server_errors.load(Ordering::Relaxed)),
        ),
        (
            "job_panics",
            Json::UInt(state.job_panics.load(Ordering::Relaxed)),
        ),
        (
            "conns_shed",
            Json::UInt(state.conns_shed.load(Ordering::Relaxed)),
        ),
        (
            "deadline_errors",
            Json::UInt(state.deadline_errors.load(Ordering::Relaxed)),
        ),
        (
            "queue",
            Json::Object(vec![
                ("pushed", Json::UInt(queue.pushed)),
                ("shed", Json::UInt(queue.shed)),
                ("stolen", Json::UInt(queue.stolen)),
                (
                    "depth",
                    Json::UInt(u64::try_from(queue.depth).unwrap_or(u64::MAX)),
                ),
            ]),
        ),
        (
            "cache",
            Json::Object(vec![
                ("hits", Json::UInt(cache.hits)),
                ("joined", Json::UInt(cache.joined)),
                ("computed", Json::UInt(cache.computed)),
                ("evicted", Json::UInt(cache.evicted)),
                (
                    "entries",
                    Json::UInt(u64::try_from(cache.entries).unwrap_or(u64::MAX)),
                ),
            ]),
        ),
        (
            "disk",
            match &state.disk {
                None => Json::Null,
                Some(disk) => {
                    let d = disk.stats();
                    Json::Object(vec![
                        ("scanned", Json::UInt(d.scanned)),
                        ("entries", Json::UInt(d.entries)),
                        ("hits", Json::UInt(d.hits)),
                        ("stored", Json::UInt(d.stored)),
                        ("store_errors", Json::UInt(d.store_errors)),
                        ("quarantined", Json::UInt(d.quarantined)),
                        ("evicted", Json::UInt(d.evicted)),
                        ("degraded", Json::Bool(d.degraded)),
                    ])
                }
            },
        ),
    ])
    .render()
}

fn presets_body() -> String {
    Json::Object(vec![
        ("schema", Json::Str(WIRE_SCHEMA.to_string())),
        (
            "presets",
            Json::Array(
                registry::presets()
                    .iter()
                    .map(|p| {
                        Json::Object(vec![
                            ("name", Json::Str(p.name.to_string())),
                            (
                                "aliases",
                                Json::Array(
                                    p.aliases
                                        .iter()
                                        .map(|a| Json::Str((*a).to_string()))
                                        .collect(),
                                ),
                            ),
                            ("summary", Json::Str(p.summary.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

fn workloads_body() -> String {
    Json::Object(vec![
        ("schema", Json::Str(WIRE_SCHEMA.to_string())),
        (
            "workloads",
            Json::Array(
                WorkloadId::all()
                    .into_iter()
                    .map(|b| {
                        Json::Object(vec![
                            ("name", Json::Str(b.name().to_string())),
                            ("short", Json::Str(b.short_name().to_string())),
                            ("family", Json::Str(b.family().to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}
