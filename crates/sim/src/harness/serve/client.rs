//! A minimal blocking HTTP/1.1 client, just enough to talk to
//! [`super::server::Server`] — shared by the integration tests and the
//! `serve_load` load-test helper so neither needs an external crate.
//!
//! [`http_request`] is one attempt with fixed per-attempt deadlines;
//! [`http_request_retry`] wraps it in a bounded, seeded
//! jittered-exponential-backoff loop. Retrying blindly is safe here
//! because every job key is content-addressed and idempotent: a
//! duplicate attempt can only hit the cache or join the in-flight
//! computation, never run a job twice with different results.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use tc_fault::SplitMix64;

/// A decoded response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked transfer encoding reassembled).
    pub body: String,
}

impl ClientResponse {
    /// First value of a header, by lower-case name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn read_line(reader: &mut impl BufRead) -> std::io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        // EOF before the line is a torn response, not an empty line: a
        // stream truncated mid-headers must never parse as a complete
        // response with an empty body.
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Any socket failure, or a response the decoder cannot make sense of
/// (reported as `InvalidData`).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    http_request_timed(addr, method, path, body, &RetryPolicy::default())
}

/// How [`http_request_retry`] paces its attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (clamped to ≥ 1); `1` means no retry at all.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed for the backoff jitter (deterministic per policy).
    pub seed: u64,
    /// Per-attempt connect deadline.
    pub connect_timeout: Duration,
    /// Per-attempt read deadline.
    pub read_timeout: Duration,
    /// Per-attempt write deadline.
    pub write_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            seed: 0,
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// A bounded retrying policy: `attempts` total tries with the
    /// default deadlines and backoff, jittered from `seed`.
    #[must_use]
    pub fn retries(attempts: u32, seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts: attempts.max(1),
            seed,
            ..RetryPolicy::default()
        }
    }

    /// The jittered backoff before attempt `attempt` (1-based count of
    /// failures so far): `base * 2^(attempt-1)`, capped at `max_delay`,
    /// then scaled by a uniform factor in `[0.5, 1.0)` so a fleet of
    /// clients never thunders in phase.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_delay);
        let mut rng = SplitMix64::new(self.seed ^ u64::from(attempt));
        let frac = 0.5 + (rng.next() >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        exp.mul_f64(frac)
    }
}

/// Whether a response status is worth retrying: the server sheds load
/// with 503 (queue full, connection cap, draining) and every 503 here
/// is transient by construction.
fn retryable_status(status: u16) -> bool {
    status == 503
}

/// [`http_request`] with bounded retry. Transport errors (reset,
/// timeout, torn or corrupted response) and 503s retry with jittered
/// exponential backoff; any other response — success or a clean 4xx/5xx
/// — returns immediately. The last failure is returned when every
/// attempt is exhausted.
///
/// # Errors
///
/// The final attempt's socket/decode failure.
pub fn http_request_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> std::io::Result<ClientResponse> {
    let attempts = policy.attempts.max(1);
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 1..=attempts {
        match http_request_timed(addr, method, path, body, policy) {
            Ok(response) if !retryable_status(response.status) => return Ok(response),
            Ok(response) => {
                if attempt == attempts {
                    return Ok(response);
                }
            }
            Err(e) => {
                if attempt == attempts {
                    return Err(e);
                }
                last_err = Some(e);
            }
        }
        std::thread::sleep(policy.backoff(attempt));
    }
    // Unreachable: the loop always returns on its last attempt.
    Err(last_err.unwrap_or_else(|| std::io::Error::other("retry loop ended without an attempt")))
}

fn http_request_timed(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> std::io::Result<ClientResponse> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let stream = TcpStream::connect_timeout(&addr, policy.connect_timeout)?;
    stream.set_read_timeout(Some(policy.read_timeout))?;
    stream.set_write_timeout(Some(policy.write_timeout))?;
    let mut writer = stream.try_clone()?;
    let sent = (|| {
        writer.write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: tw\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )?;
        writer.write_all(body.as_bytes())?;
        writer.flush()
    })();
    if let Err(e) = sent {
        // A server that rejects mid-upload (413 on an oversized body)
        // closes its read side; the response is still coming.
        match e.kind() {
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted => {}
            _ => return Err(e),
        }
    }

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.contains("chunked"));
    let mut raw = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("malformed chunk size {size_line:?}")))?;
            if size == 0 {
                let _ = read_line(&mut reader); // trailing CRLF
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            raw.extend_from_slice(&chunk);
            let _ = read_line(&mut reader); // chunk-terminating CRLF
        }
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        raw = vec![0u8; len];
        reader.read_exact(&mut raw)?;
    } else {
        reader.read_to_end(&mut raw)?;
    }
    let body = String::from_utf8(raw).map_err(|_| bad("response body is not UTF-8".to_string()))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Sends raw bytes (possibly violating HTTP) and returns the raw
/// response text — for protocol-abuse tests.
///
/// # Errors
///
/// Any socket failure.
pub fn raw_request(addr: SocketAddr, payload: &[u8]) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(payload)?;
    stream.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}
