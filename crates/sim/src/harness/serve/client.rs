//! A minimal blocking HTTP/1.1 client, just enough to talk to
//! [`super::server::Server`] — shared by the integration tests and the
//! `serve_load` load-test helper so neither needs an external crate.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked transfer encoding reassembled).
    pub body: String,
}

impl ClientResponse {
    /// First value of a header, by lower-case name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn read_line(reader: &mut impl BufRead) -> std::io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Any socket failure, or a response the decoder cannot make sense of
/// (reported as `InvalidData`).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut writer = stream.try_clone()?;
    let sent = (|| {
        writer.write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: tw\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )?;
        writer.write_all(body.as_bytes())?;
        writer.flush()
    })();
    if let Err(e) = sent {
        // A server that rejects mid-upload (413 on an oversized body)
        // closes its read side; the response is still coming.
        match e.kind() {
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted => {}
            _ => return Err(e),
        }
    }

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.contains("chunked"));
    let mut raw = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("malformed chunk size {size_line:?}")))?;
            if size == 0 {
                let _ = read_line(&mut reader); // trailing CRLF
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            raw.extend_from_slice(&chunk);
            let _ = read_line(&mut reader); // chunk-terminating CRLF
        }
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        raw = vec![0u8; len];
        reader.read_exact(&mut raw)?;
    } else {
        reader.read_to_end(&mut raw)?;
    }
    let body = String::from_utf8(raw).map_err(|_| bad("response body is not UTF-8".to_string()))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Sends raw bytes (possibly violating HTTP) and returns the raw
/// response text — for protocol-abuse tests.
///
/// # Errors
///
/// Any socket failure.
pub fn raw_request(addr: SocketAddr, payload: &[u8]) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(payload)?;
    stream.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}
