//! The content-addressed, single-flight result cache.
//!
//! Results are keyed by the canonical job string
//! ([`super::wire::JobSpec::cache_key`]). The cache is **single
//! flight**: the first request for a key becomes the *owner* and
//! computes; concurrent requests for the same key *join* — they block
//! on the slot's condvar and receive the very same `Arc<String>` body,
//! so a hundred identical requests cost one simulation and every
//! response is bit-identical. Failed computations are delivered to the
//! joiners that were already waiting, then forgotten, so a transient
//! failure doesn't poison the key forever.
//!
//! Capacity is bounded: `Ready` entries are evicted FIFO (insertion
//! order) once the cache is full. In-flight (`Pending`) slots are never
//! evicted — the single-flight handoff must complete.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use super::wire::StoredError;

/// What a slot currently holds.
#[derive(Debug, Clone)]
enum SlotState {
    /// The owner is computing; joiners wait on the condvar.
    Pending,
    /// The finished body, shared by every response for this key.
    Ready(Arc<String>),
    /// The owner failed; joiners get the stored error, then the slot
    /// is removed so a later request retries.
    Failed(StoredError),
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// What [`ResultCache::lookup`] tells the caller to do.
pub enum Lookup {
    /// The body is already cached — respond immediately.
    Hit(Arc<String>),
    /// Another request owns the computation — call
    /// [`ResultCache::wait`] to join it.
    Join,
    /// This caller owns the computation: run the job, then
    /// [`ResultCache::fulfill`] or [`ResultCache::fail`].
    Owner,
}

/// Counters exported via `GET /v1/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a `Ready` slot.
    pub hits: u64,
    /// Lookups that joined an in-flight computation.
    pub joined: u64,
    /// Lookups that became owners (distinct computations started).
    pub computed: u64,
    /// `Ready` entries evicted to make room.
    pub evicted: u64,
    /// Entries currently resident (ready + pending).
    pub entries: usize,
}

/// The cache.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    joined: AtomicU64,
    computed: AtomicU64,
    evicted: AtomicU64,
}

struct CacheInner {
    slots: HashMap<String, Arc<Slot>>,
    /// Keys in insertion order; the eviction scan walks from the front.
    order: VecDeque<String>,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner {
                slots: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            joined: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up `key`, registering this caller as the owner on a miss.
    pub fn lookup(&self, key: &str) -> Lookup {
        let mut inner = self.lock_inner();
        if let Some(slot) = inner.slots.get(key) {
            let state = match slot.state.lock() {
                Ok(g) => g.clone(),
                Err(poisoned) => poisoned.into_inner().clone(),
            };
            match state {
                SlotState::Ready(body) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Hit(body);
                }
                // Pending, or Failed mid-teardown: join and let wait()
                // sort it out.
                SlotState::Pending | SlotState::Failed(_) => {
                    self.joined.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Join;
                }
            }
        }
        // Miss: evict the oldest Ready entry if full, then install a
        // Pending slot owned by this caller.
        if inner.slots.len() >= self.capacity {
            let mut scanned = 0;
            while scanned < inner.order.len() {
                let Some(old) = inner.order.pop_front() else {
                    break;
                };
                scanned += 1;
                let ready = inner.slots.get(&old).is_some_and(|slot| {
                    matches!(slot.state.lock().as_deref(), Ok(SlotState::Ready(_)))
                });
                if ready {
                    inner.slots.remove(&old);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                // Pending (or already removed): keep it, try the next.
                if inner.slots.contains_key(&old) {
                    inner.order.push_back(old);
                }
            }
        }
        inner.slots.insert(
            key.to_string(),
            Arc::new(Slot {
                state: Mutex::new(SlotState::Pending),
                ready: Condvar::new(),
            }),
        );
        inner.order.push_back(key.to_string());
        self.computed.fetch_add(1, Ordering::Relaxed);
        Lookup::Owner
    }

    /// Publishes the owner's finished body and wakes every joiner.
    pub fn fulfill(&self, key: &str, body: Arc<String>) {
        let slot = self.lock_inner().slots.get(key).cloned();
        if let Some(slot) = slot {
            match slot.state.lock() {
                Ok(mut state) => *state = SlotState::Ready(Arc::clone(&body)),
                Err(poisoned) => *poisoned.into_inner() = SlotState::Ready(Arc::clone(&body)),
            }
            slot.ready.notify_all();
        }
    }

    /// Publishes the owner's failure to current joiners and removes the
    /// entry so the next request retries.
    pub fn fail(&self, key: &str, error: StoredError) {
        let slot = {
            let mut inner = self.lock_inner();
            let slot = inner.slots.remove(key);
            inner.order.retain(|k| k != key);
            slot
        };
        if let Some(slot) = slot {
            match slot.state.lock() {
                Ok(mut state) => *state = SlotState::Failed(error),
                Err(poisoned) => *poisoned.into_inner() = SlotState::Failed(error),
            }
            slot.ready.notify_all();
        }
    }

    /// Blocks until the slot a `Join` pointed at resolves.
    ///
    /// # Errors
    ///
    /// The owner's stored failure, replayed to every joiner.
    pub fn wait(&self, key: &str) -> Result<Arc<String>, StoredError> {
        let slot = self.lock_inner().slots.get(key).cloned();
        let Some(slot) = slot else {
            // The slot resolved to Failed and was torn down between our
            // Join and this wait; report the retryable condition.
            return Err(StoredError {
                status: 503,
                message: "computation failed; retry the request".to_string(),
            });
        };
        let mut state = match slot.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            match &*state {
                SlotState::Ready(body) => return Ok(Arc::clone(body)),
                SlotState::Failed(e) => return Err(e.clone()),
                SlotState::Pending => {
                    state = match slot.ready.wait(state) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            }
        }
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            joined: self.joined.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            entries: self.lock_inner().slots.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn first_lookup_owns_later_lookups_hit() {
        let cache = ResultCache::new(8);
        assert!(matches!(cache.lookup("k"), Lookup::Owner));
        assert!(matches!(cache.lookup("k"), Lookup::Join));
        cache.fulfill("k", body("result"));
        match cache.lookup("k") {
            Lookup::Hit(b) => assert_eq!(*b, "result"),
            _ => panic!("expected hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.computed, stats.joined, stats.hits), (1, 1, 1));
    }

    #[test]
    fn joiners_receive_the_owners_exact_body() {
        let cache = Arc::new(ResultCache::new(8));
        assert!(matches!(cache.lookup("k"), Lookup::Owner));
        let joiners: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    assert!(matches!(cache.lookup("k"), Lookup::Join));
                    cache.wait("k").unwrap()
                })
            })
            .collect();
        // Give the joiners a moment to actually park on the condvar.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let published = body("the one result");
        cache.fulfill("k", Arc::clone(&published));
        for j in joiners {
            let got = j.join().unwrap();
            assert!(Arc::ptr_eq(&got, &published), "joiner got a different Arc");
        }
        assert_eq!(cache.stats().computed, 1, "exactly one computation");
    }

    #[test]
    fn failures_reach_joiners_then_clear_the_key() {
        let cache = Arc::new(ResultCache::new(8));
        assert!(matches!(cache.lookup("k"), Lookup::Owner));
        assert!(matches!(cache.lookup("k"), Lookup::Join));
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.wait("k"))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.fail(
            "k",
            StoredError {
                status: 500,
                message: "boom".to_string(),
            },
        );
        let err = waiter.join().unwrap().unwrap_err();
        assert_eq!((err.status, err.message.as_str()), (500, "boom"));
        // The key is clear: the next request computes afresh.
        assert!(matches!(cache.lookup("k"), Lookup::Owner));
        assert_eq!(cache.stats().computed, 2);
    }

    #[test]
    fn eviction_is_fifo_and_skips_pending_slots() {
        let cache = ResultCache::new(2);
        assert!(matches!(cache.lookup("a"), Lookup::Owner));
        cache.fulfill("a", body("A"));
        assert!(matches!(cache.lookup("b"), Lookup::Owner));
        // "b" is still Pending; inserting "c" must evict "a", not "b".
        assert!(matches!(cache.lookup("c"), Lookup::Owner));
        cache.fulfill("b", body("B"));
        cache.fulfill("c", body("C"));
        match cache.lookup("b") {
            Lookup::Hit(v) => assert_eq!(*v, "B"),
            _ => panic!("pending slot must survive eviction"),
        }
        assert_eq!(cache.stats().evicted, 1);
        assert!(matches!(cache.lookup("a"), Lookup::Owner), "a was evicted");
    }
}
