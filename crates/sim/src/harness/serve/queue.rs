//! A sharded, bounded, work-stealing job queue.
//!
//! Connection handlers push; worker threads pop. Jobs land on shards
//! round-robin (spreading lock contention), and an idle worker that
//! finds its home shard empty steals from the others before parking.
//! The queue is *bounded*: when every slot is full, [`JobQueue::push`]
//! refuses immediately so the server can shed load with a 503 instead
//! of buffering unboundedly.
//!
//! Parking uses a single gate (`Mutex` + `Condvar`) rather than
//! per-shard condvars: workers re-check the global length *under the
//! gate lock* before sleeping, so a push that lands between the empty
//! scan and the park cannot be missed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Counters exported via `GET /v1/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs accepted by [`JobQueue::push`].
    pub pushed: u64,
    /// Pushes refused because the queue was full.
    pub shed: u64,
    /// Pops served from a shard other than the worker's home shard.
    pub stolen: u64,
    /// Jobs currently enqueued.
    pub depth: usize,
}

/// The queue. `T` is the job payload (the server uses a boxed job).
pub struct JobQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Total enqueued across shards; incremented *before* the shard
    /// push (with rollback on full) so `pop` never under-counts.
    len: AtomicUsize,
    capacity: usize,
    next_shard: AtomicUsize,
    gate: Mutex<bool>, // true once closed
    wake: Condvar,
    pushed: AtomicU64,
    shed: AtomicU64,
    stolen: AtomicU64,
}

impl<T> JobQueue<T> {
    /// A queue with `shards` lock shards holding at most `capacity`
    /// jobs in total. Both are clamped to at least 1.
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> JobQueue<T> {
        JobQueue {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            len: AtomicUsize::new(0),
            capacity: capacity.max(1),
            next_shard: AtomicUsize::new(0),
            gate: Mutex::new(false),
            wake: Condvar::new(),
            pushed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        }
    }

    /// Jobs currently enqueued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a job, or hands it back when the queue is full or
    /// closed (the caller sheds the request with a 503).
    ///
    /// # Errors
    ///
    /// Returns the rejected job.
    pub fn push(&self, job: T) -> Result<(), T> {
        // Reserve a slot first; roll back if over capacity. This keeps
        // the bound exact without a global lock on the happy path.
        let prior = self.len.fetch_add(1, Ordering::AcqRel);
        if prior >= self.capacity {
            self.len.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(job);
        }
        if self.is_closed() {
            self.len.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(job);
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        match self.shards[shard].lock() {
            Ok(mut q) => q.push_back(job),
            Err(poisoned) => poisoned.into_inner().push_back(job),
        }
        self.pushed.fetch_add(1, Ordering::Relaxed);
        // Taking the gate lock orders this wake against any worker
        // between its empty scan and its park.
        drop(self.gate.lock());
        self.wake.notify_one();
        Ok(())
    }

    fn try_pop(&self, home: usize) -> Option<T> {
        let n = self.shards.len();
        for offset in 0..n {
            let shard = (home + offset) % n;
            let job = match self.shards[shard].lock() {
                Ok(mut q) => q.pop_front(),
                Err(poisoned) => poisoned.into_inner().pop_front(),
            };
            if let Some(job) = job {
                self.len.fetch_sub(1, Ordering::AcqRel);
                if offset != 0 {
                    self.stolen.fetch_add(1, Ordering::Relaxed);
                }
                return Some(job);
            }
        }
        None
    }

    /// Blocks until a job is available (scanning the home shard first,
    /// then stealing) or the queue is closed *and* drained — `None`
    /// means the worker should exit.
    pub fn pop(&self, home: usize) -> Option<T> {
        loop {
            if let Some(job) = self.try_pop(home) {
                return Some(job);
            }
            let guard = match self.gate.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Re-check under the gate: a push between try_pop and here
            // already took this lock, so its job is visible now.
            if !self.is_empty() {
                continue;
            }
            if *guard {
                return None;
            }
            // Spurious wakeups loop back around to try_pop.
            drop(self.wake.wait(guard));
        }
    }

    /// Closes the queue: further pushes are refused, workers drain the
    /// backlog and then see `None`.
    pub fn close(&self) {
        match self.gate.lock() {
            Ok(mut g) => *g = true,
            Err(poisoned) => *poisoned.into_inner() = true,
        }
        self.wake.notify_all();
    }

    fn is_closed(&self) -> bool {
        match self.gate.lock() {
            Ok(g) => *g,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.pushed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            depth: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn bounded_pushes_shed_at_capacity() {
        let q: JobQueue<u32> = JobQueue::new(4, 3);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.push(3).is_ok());
        assert_eq!(q.push(4), Err(4));
        assert_eq!(q.stats().shed, 1);
        assert_eq!(q.stats().depth, 3);
        // Draining frees capacity again.
        assert!(q.pop(0).is_some());
        assert!(q.push(5).is_ok());
    }

    #[test]
    fn close_drains_then_terminates_workers() {
        let q: JobQueue<u32> = JobQueue::new(2, 10);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "closed queue refuses pushes");
        let mut drained = vec![q.pop(0), q.pop(1), q.pop(0)];
        drained.sort();
        assert_eq!(drained, [None, Some(1), Some(2)]);
    }

    #[test]
    fn concurrent_producers_and_stealing_consumers_lose_nothing() {
        let q: Arc<JobQueue<u64>> = Arc::new(JobQueue::new(4, 100_000));
        let sum = Arc::new(AtomicU64::new(0));
        let producers = 8u64;
        let per = 500u64;
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                scope.spawn(move || {
                    while let Some(v) = q.pop(w) {
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            scope.spawn(|| {
                std::thread::scope(|inner| {
                    for p in 0..producers {
                        let q = &q;
                        inner.spawn(move || {
                            for i in 0..per {
                                q.push(p * per + i + 1).unwrap();
                            }
                        });
                    }
                });
                q.close();
            });
        });
        let n = producers * per;
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        assert_eq!(q.stats().pushed, n);
        assert!(q.is_empty());
    }
}
