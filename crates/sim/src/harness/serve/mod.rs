//! `tw serve`: a long-running simulation service over HTTP/JSON.
//!
//! The daemon accepts the harness's job kinds — `sim`, `compare`,
//! `faults`, `trace`, `analyze` — as `POST /v1/<kind>` requests with
//! JSON bodies, runs them on a bounded worker pool, and memoizes
//! results in a content-addressed cache so a repeated query is answered
//! without re-simulating. The stack is hand-rolled over `std::net`
//! (the workspace builds offline with no external crates) and hardened
//! end to end: every inbound byte is untrusted, every limit is
//! enforced, and no request — however malformed, oversized, or
//! concurrent — panics the process.
//!
//! Layers, bottom up:
//!
//! * [`http`] — a minimal HTTP/1.1 reader/writer with hard limits and
//!   status-carrying errors.
//! * [`wire`] — the `tw-serve/v1` JSON protocol: strict request
//!   parsing, canonical cache keys (aliases resolved, defaults filled),
//!   the uniform error body.
//! * [`queue`] — a sharded, bounded, work-stealing job queue with
//!   load-shedding and drain-on-close.
//! * [`cache`] — the single-flight result cache: one computation per
//!   key, joiners share the owner's exact bytes.
//! * [`disk`] — the optional persistent tier under the cache
//!   (`--cache-dir`): CRC-validated entry files written atomically,
//!   warm-start after any restart (even `kill -9`), corrupt-entry
//!   quarantine, read-only degraded mode on disk errors.
//! * [`server`] — the daemon: accept loop, router, worker pool,
//!   graceful shutdown.
//! * [`client`] — a matching minimal HTTP client for the integration
//!   tests and the `serve_load` load-test helper.

pub mod cache;
pub mod client;
pub mod disk;
pub mod http;
pub mod queue;
pub mod server;
pub mod wire;

pub use cache::{CacheStats, Lookup, ResultCache};
pub use client::{http_request, http_request_retry, raw_request, ClientResponse, RetryPolicy};
pub use disk::{DiskStats, DiskTier, DISK_SCHEMA};
pub use queue::{JobQueue, QueueStats};
pub use server::{ServeConfig, ServeSummary, Server};
pub use wire::{parse_job, JobKind, JobLimits, JobSpec, WIRE_SCHEMA};
