//! Wire types for the `tw serve` JSON protocol: strict request
//! parsing, canonical cache keys, and the response envelope.
//!
//! Every request body is untrusted. Parsing goes through the harness's
//! depth-limited JSON reader ([`crate::harness::parse_json`]), then a
//! strict per-kind field allowlist — an unknown field, a wrong type, or
//! an out-of-range value is a 400 with a one-line reason, never a
//! panic. The parsed [`JobSpec`] renders itself into a *canonical* key
//! string (aliases resolved, defaults filled in), so `"preset": "tc"`
//! and `"preset": "baseline"` share one cache entry.

use tc_fault::{FaultLocus, FaultPlan};
use tc_trace::EventFilter;
use tc_workloads::WorkloadId;

use crate::harness::error::TwError;
use crate::harness::parse::{parse_json, Value};
use crate::harness::registry;
use crate::harness::trace::{DEFAULT_TRACE_INTERVAL, DEFAULT_TRACE_LIMIT};

/// Schema tag carried by every response body.
pub const WIRE_SCHEMA: &str = "tw-serve/v1";

/// The five job endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One benchmark under one preset (`POST /v1/sim`).
    Sim,
    /// One benchmark across the standard five presets
    /// (`POST /v1/compare`).
    Compare,
    /// One benchmark with fault injection (`POST /v1/faults`).
    Faults,
    /// One traced run, exported as Chrome `trace_event` JSON
    /// (`POST /v1/trace`).
    Trace,
    /// Branch-predictability profile → `tw-plan/v1` promotion plan
    /// (`POST /v1/analyze`).
    Analyze,
}

impl JobKind {
    /// The endpoint name (also the cache-key prefix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Sim => "sim",
            JobKind::Compare => "compare",
            JobKind::Faults => "faults",
            JobKind::Trace => "trace",
            JobKind::Analyze => "analyze",
        }
    }
}

/// Fault-injection parameters (the `faults` job).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// RNG seed for the injection schedule.
    pub seed: u64,
    /// Per-cycle injection probability (`rate` XOR `at_cycles`).
    pub rate: Option<f64>,
    /// Explicit injection cycles.
    pub at_cycles: Vec<u64>,
    /// Target loci, canonical names, sorted; empty means all.
    pub targets: Vec<&'static str>,
}

impl FaultSpec {
    /// Builds the corresponding [`FaultPlan`].
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        let plan = match self.rate {
            Some(rate) => FaultPlan::with_rate(self.seed, rate),
            None => FaultPlan::at_cycles(self.seed, self.at_cycles.clone()),
        };
        let loci: Vec<FaultLocus> = self
            .targets
            .iter()
            .filter_map(|name| FaultLocus::parse(name).ok())
            .collect();
        plan.targeting(&loci)
    }
}

/// Trace-instrumentation parameters (the `trace` job).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Canonicalized event-filter spec (`all` when unset).
    pub events: String,
    /// Timeline window width in cycles.
    pub interval: u64,
    /// Ring-buffer capacity in events.
    pub limit: usize,
}

impl TraceSpec {
    /// Parses the stored filter spec (validated at request-parse time,
    /// so this cannot fail afterwards).
    #[must_use]
    pub fn filter(&self) -> EventFilter {
        EventFilter::parse(&self.events).unwrap_or_default()
    }
}

/// A fully validated job: everything needed to run it and to key its
/// result in the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Which endpoint this came in on.
    pub kind: JobKind,
    /// The workload to simulate (either family).
    pub bench: WorkloadId,
    /// Canonical preset name (aliases resolved). `compare` ignores it.
    pub preset: &'static str,
    /// Dynamic instruction budget.
    pub insts: u64,
    /// Perfect memory disambiguation toggle.
    pub perfect: bool,
    /// Fold an interval timeline into the response (`sim` only).
    pub timeline: bool,
    /// Auto-build and apply a promotion plan (`sim` only).
    pub auto_plan: bool,
    /// Fault parameters (`faults` only).
    pub fault: Option<FaultSpec>,
    /// Trace parameters (`trace` only).
    pub trace: Option<TraceSpec>,
}

/// Server-imposed bounds a parsed job must respect.
#[derive(Debug, Clone, Copy)]
pub struct JobLimits {
    /// Largest accepted `insts` value.
    pub max_insts: u64,
    /// `insts` when the request omits it.
    pub default_insts: u64,
}

/// Fields every job accepts.
const COMMON_FIELDS: &[&str] = &["bench", "insts"];

fn allowed_fields(kind: JobKind) -> &'static [&'static str] {
    match kind {
        JobKind::Sim => &["preset", "perfect", "timeline", "plan"],
        JobKind::Compare => &["perfect"],
        JobKind::Faults => &["preset", "seed", "rate", "at_cycles", "targets"],
        JobKind::Trace => &["preset", "events", "interval", "limit"],
        JobKind::Analyze => &[],
    }
}

fn find_bench(name: &str) -> Option<WorkloadId> {
    WorkloadId::all()
        .into_iter()
        .find(|b| b.name() == name || b.short_name() == name)
}

fn bad(msg: impl Into<String>) -> TwError {
    TwError::usage(msg.into())
}

fn want_str<'a>(field: &str, v: &'a Value) -> Result<&'a str, TwError> {
    v.as_str()
        .ok_or_else(|| bad(format!("field {field:?}: expected a string")))
}

fn want_u64(field: &str, v: &Value) -> Result<u64, TwError> {
    v.as_u64()
        .ok_or_else(|| bad(format!("field {field:?}: expected a non-negative integer")))
}

fn want_bool(field: &str, v: &Value) -> Result<bool, TwError> {
    v.as_bool()
        .ok_or_else(|| bad(format!("field {field:?}: expected true or false")))
}

/// Parses and validates one job request body.
///
/// # Errors
///
/// A usage-class [`TwError`] (the server answers 400) naming the first
/// offending field: not JSON, not an object, an unknown or misspelled
/// field, a wrong type, or a value outside the server's limits.
pub fn parse_job(kind: JobKind, body: &[u8], limits: &JobLimits) -> Result<JobSpec, TwError> {
    let text = std::str::from_utf8(body).map_err(|_| bad("request body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Err(bad("request body is empty (want a JSON object)"));
    }
    let doc = parse_json(text).map_err(|e| bad(format!("request body: {e}")))?;
    let Value::Object(members) = &doc else {
        return Err(bad("request body must be a JSON object"));
    };

    let allowed = allowed_fields(kind);
    for (key, _) in members {
        if !COMMON_FIELDS.contains(&key.as_str()) && !allowed.contains(&key.as_str()) {
            let mut fields: Vec<&str> = COMMON_FIELDS.iter().chain(allowed).copied().collect();
            fields.sort_unstable();
            return Err(bad(format!(
                "unknown field {key:?} for {} (accepted: {})",
                kind.name(),
                fields.join(", ")
            )));
        }
    }
    if let Some(dup) = members
        .iter()
        .enumerate()
        .find(|(i, (k, _))| members[..*i].iter().any(|(k2, _)| k2 == k))
        .map(|(_, (k, _))| k)
    {
        return Err(bad(format!("duplicate field {dup:?}")));
    }

    let bench_name = want_str(
        "bench",
        doc.get("bench").ok_or_else(|| {
            bad(format!(
                "missing required field \"bench\" for {}",
                kind.name()
            ))
        })?,
    )?;
    let bench = find_bench(bench_name).ok_or_else(|| {
        bad(format!(
            "unknown benchmark {bench_name:?} (see GET /v1/workloads)"
        ))
    })?;

    let insts = match doc.get("insts") {
        None => limits.default_insts,
        Some(v) => {
            let n = want_u64("insts", v)?;
            if n == 0 || n > limits.max_insts {
                return Err(bad(format!(
                    "field \"insts\": {n} is outside 1..={}",
                    limits.max_insts
                )));
            }
            n
        }
    };

    // Presets: `compare` pins the standard five; `faults` defaults to
    // the paper's headline machine; everything else to `baseline`.
    let preset = match doc.get("preset") {
        None if kind == JobKind::Faults => "headline",
        None => "baseline",
        Some(v) => {
            let name = want_str("preset", v)?;
            registry::preset(name)
                .ok_or_else(|| bad(format!("unknown preset {name:?} (see GET /v1/presets)")))?
                .name
        }
    };
    let preset = registry::preset(preset).map_or(preset, |p| p.name);

    let perfect = match doc.get("perfect") {
        None => false,
        Some(v) => want_bool("perfect", v)?,
    };
    let timeline = match doc.get("timeline") {
        None => false,
        Some(v) => want_bool("timeline", v)?,
    };
    let auto_plan = match doc.get("plan") {
        None => false,
        Some(v) => match want_str("plan", v)? {
            "auto" => true,
            other => {
                return Err(bad(format!(
                    "field \"plan\": only \"auto\" is supported over the wire, got {other:?}"
                )))
            }
        },
    };

    let fault = if kind == JobKind::Faults {
        let seed = match doc.get("seed") {
            None => 0xA5,
            Some(v) => want_u64("seed", v)?,
        };
        let rate = match doc.get("rate") {
            None => None,
            Some(v) => {
                let r = v
                    .as_f64()
                    .ok_or_else(|| bad("field \"rate\": expected a number"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(bad(format!("field \"rate\": {r} is outside 0..=1")));
                }
                Some(r)
            }
        };
        let at_cycles = match doc.get("at_cycles") {
            None => Vec::new(),
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| bad("field \"at_cycles\": expected an array of cycles"))?;
                let mut cycles = Vec::with_capacity(items.len());
                for item in items {
                    cycles.push(want_u64("at_cycles", item)?);
                }
                cycles.sort_unstable();
                cycles.dedup();
                cycles
            }
        };
        match (rate.is_some(), at_cycles.is_empty()) {
            (true, false) => {
                return Err(bad(
                    "fields \"rate\" and \"at_cycles\" are mutually exclusive",
                ))
            }
            (false, true) => return Err(bad("faults: need \"rate\" or \"at_cycles\"")),
            _ => {}
        }
        let targets = match doc.get("targets") {
            None => Vec::new(),
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| bad("field \"targets\": expected an array of locus names"))?;
                let mut names = Vec::with_capacity(items.len());
                for item in items {
                    let token = want_str("targets", item)?;
                    let locus = FaultLocus::parse(token).map_err(bad)?;
                    names.push(locus.name());
                }
                names.sort_unstable();
                names.dedup();
                names
            }
        };
        Some(FaultSpec {
            seed,
            rate,
            at_cycles,
            targets,
        })
    } else {
        None
    };

    let trace = if kind == JobKind::Trace {
        let events = match doc.get("events") {
            None => "all".to_string(),
            Some(v) => {
                let spec = want_str("events", v)?;
                EventFilter::parse(spec).map_err(|e| bad(format!("field \"events\": {e}")))?;
                spec.to_string()
            }
        };
        let interval = match doc.get("interval") {
            None => DEFAULT_TRACE_INTERVAL,
            Some(v) => {
                let n = want_u64("interval", v)?;
                if n == 0 {
                    return Err(bad("field \"interval\": must be at least 1 cycle"));
                }
                n
            }
        };
        let limit = match doc.get("limit") {
            None => DEFAULT_TRACE_LIMIT,
            Some(v) => {
                let n = want_u64("limit", v)?;
                usize::try_from(n.min(1_000_000))
                    .map_err(|_| bad("field \"limit\": does not fit this platform"))?
            }
        };
        Some(TraceSpec {
            events,
            interval,
            limit,
        })
    } else {
        None
    };

    Ok(JobSpec {
        kind,
        bench,
        preset,
        insts,
        perfect,
        timeline,
        auto_plan,
        fault,
        trace,
    })
}

impl JobSpec {
    /// The canonical cache-key string: every field that affects the
    /// result, defaults filled in, aliases resolved. Two requests with
    /// the same key are bit-identical computations.
    #[must_use]
    pub fn cache_key(&self) -> String {
        use std::fmt::Write as _;
        let mut key = format!(
            "{}|bench={}|preset={}|insts={}|perfect={}|timeline={}|plan={}",
            self.kind.name(),
            self.bench.name(),
            if self.kind == JobKind::Compare {
                "standard-five"
            } else {
                self.preset
            },
            self.insts,
            u8::from(self.perfect),
            u8::from(self.timeline),
            u8::from(self.auto_plan),
        );
        if let Some(fault) = &self.fault {
            let _ = write!(key, "|seed={}", fault.seed);
            match fault.rate {
                Some(rate) => {
                    // Bit-exact: two rates hash alike iff they are the
                    // same f64.
                    let _ = write!(key, "|rate={:016x}", rate.to_bits());
                }
                None => {
                    let _ = write!(key, "|cycles=");
                    for (i, c) in fault.at_cycles.iter().enumerate() {
                        let _ = write!(key, "{}{c}", if i > 0 { "," } else { "" });
                    }
                }
            }
            let _ = write!(key, "|targets={}", fault.targets.join(","));
        }
        if let Some(trace) = &self.trace {
            let _ = write!(
                key,
                "|events={}|interval={}|limit={}",
                trace.events, trace.interval, trace.limit
            );
        }
        key
    }

    /// FNV-1a 64 of the cache key, as fixed-width hex — the `key`
    /// reported in responses and stats.
    #[must_use]
    pub fn key_hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.cache_key().as_bytes()))
    }
}

/// FNV-1a 64-bit (the content-address for cached results).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A failed computation, stored so joiners see the same error the
/// owner did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredError {
    /// HTTP status to answer with.
    pub status: u16,
    /// The one-line diagnostic.
    pub message: String,
}

/// Maps a [`TwError`] to the HTTP status the server answers with.
#[must_use]
pub fn error_status(e: &TwError) -> u16 {
    match e {
        TwError::Usage(_) => 400,
        TwError::Runtime(_) => 500,
    }
}

/// Renders the uniform JSON error body.
#[must_use]
pub fn error_body(status: u16, message: &str) -> String {
    crate::harness::json::Json::Object(vec![
        (
            "schema",
            crate::harness::json::Json::Str(WIRE_SCHEMA.to_string()),
        ),
        (
            "status",
            crate::harness::json::Json::UInt(u64::from(status)),
        ),
        (
            "error",
            crate::harness::json::Json::Str(message.to_string()),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: JobLimits = JobLimits {
        max_insts: 10_000_000,
        default_insts: 200_000,
    };

    fn parse(kind: JobKind, body: &str) -> Result<JobSpec, TwError> {
        parse_job(kind, body.as_bytes(), &LIMITS)
    }

    #[test]
    fn minimal_sim_request_fills_defaults() {
        let job = parse(JobKind::Sim, r#"{"bench": "compress"}"#).unwrap();
        assert_eq!(job.preset, "baseline");
        assert_eq!(job.insts, 200_000);
        assert!(!job.perfect && !job.timeline && !job.auto_plan);
    }

    #[test]
    fn aliases_and_canonical_names_share_a_cache_key() {
        let a = parse(JobKind::Sim, r#"{"bench": "compress", "preset": "tc"}"#).unwrap();
        let b = parse(
            JobKind::Sim,
            r#"{"bench": "compress", "preset": "baseline"}"#,
        )
        .unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.key_hash(), b.key_hash());
        let c = parse(JobKind::Sim, r#"{"bench": "compress", "preset": "icache"}"#).unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn malformed_bodies_are_usage_errors_with_reasons() {
        let usage = |kind, body: &str| match parse(kind, body) {
            Err(TwError::Usage(msg)) => msg,
            other => panic!("expected usage error for {body:?}, got {other:?}"),
        };
        assert!(usage(JobKind::Sim, "").contains("empty"));
        assert!(usage(JobKind::Sim, "{\"bench\"").contains("request body"));
        assert!(usage(JobKind::Sim, "[1,2]").contains("JSON object"));
        assert!(usage(JobKind::Sim, "{}").contains("bench"));
        assert!(usage(JobKind::Sim, r#"{"bench": "nope"}"#).contains("unknown benchmark"));
        assert!(usage(JobKind::Sim, r#"{"bench": "compress", "bogus": 1}"#).contains("accepted:"));
        assert!(
            usage(JobKind::Sim, r#"{"bench": "compress", "insts": 0}"#).contains("outside"),
            "zero insts"
        );
        assert!(usage(JobKind::Sim, r#"{"bench": "compress", "insts": -5}"#).contains("integer"));
        assert!(usage(
            JobKind::Sim,
            r#"{"bench": "compress", "insts": 99999999999}"#
        )
        .contains("outside"));
        assert!(usage(JobKind::Sim, r#"{"bench": "compress", "perfect": "yes"}"#).contains("true"));
        assert!(
            usage(JobKind::Sim, r#"{"bench": "compress", "preset": "zap"}"#).contains("preset")
        );
        assert!(usage(
            JobKind::Sim,
            r#"{"bench": "compress", "bench": "compress"}"#
        )
        .contains("duplicate"));
        // Per-kind allowlists: `timeline` belongs to sim, not analyze.
        assert!(usage(
            JobKind::Analyze,
            r#"{"bench": "compress", "timeline": true}"#
        )
        .contains("unknown field"));
        assert!(usage(JobKind::Faults, r#"{"bench": "compress"}"#).contains("rate"));
        assert!(usage(
            JobKind::Faults,
            r#"{"bench": "compress", "rate": 0.5, "at_cycles": [1]}"#
        )
        .contains("mutually exclusive"));
        assert!(
            usage(JobKind::Faults, r#"{"bench": "compress", "rate": 1.5}"#)
                .contains("outside 0..=1")
        );
        assert!(usage(
            JobKind::Faults,
            r#"{"bench": "compress", "rate": 0.1, "targets": ["bogus"]}"#
        )
        .contains("bogus"));
        assert!(
            usage(JobKind::Trace, r#"{"bench": "compress", "events": "zap"}"#).contains("events")
        );
        assert!(
            usage(JobKind::Trace, r#"{"bench": "compress", "interval": 0}"#).contains("interval")
        );
    }

    #[test]
    fn fault_spec_canonicalizes_targets_and_cycles() {
        let job = parse(
            JobKind::Faults,
            r#"{"bench": "compress", "at_cycles": [30, 10, 10, 20], "targets": ["ras", "bias", "ras"]}"#,
        )
        .unwrap();
        let fault = job.fault.as_ref().unwrap();
        assert_eq!(fault.at_cycles, [10, 20, 30]);
        assert_eq!(fault.targets.len(), 2);
        assert_eq!(
            job.preset, "headline",
            "faults default to the headline machine"
        );
        let plan = fault.plan();
        assert_eq!(plan.cycles, [10, 20, 30]);
    }

    #[test]
    fn cache_keys_separate_kinds_and_fields() {
        let sim = parse(JobKind::Sim, r#"{"bench": "compress"}"#).unwrap();
        let cmp = parse(JobKind::Compare, r#"{"bench": "compress"}"#).unwrap();
        assert_ne!(sim.cache_key(), cmp.cache_key());
        let t1 = parse(JobKind::Trace, r#"{"bench": "compress", "events": "tc"}"#).unwrap();
        let t2 = parse(
            JobKind::Trace,
            r#"{"bench": "compress", "events": "promote"}"#,
        )
        .unwrap();
        assert_ne!(t1.cache_key(), t2.cache_key());
        assert_eq!(t1.key_hash().len(), 16);
    }

    #[test]
    fn error_bodies_are_well_formed_json() {
        let body = error_body(503, "queue is full");
        crate::harness::json::check_well_formed(&body).unwrap();
        assert!(body.contains("\"queue is full\""));
        assert!(body.contains("503"));
    }
}
