//! `tw analyze`: profile-guided branch classification → promotion plan.
//!
//! The driver behind the `tw-plan/v1` artifact. It fuses two sources of
//! evidence about every static conditional branch of a workload:
//!
//! * **static** — `tc-analyze`'s loop/trip-count passes (back-edge
//!   structure, loop depth, static taken-probability of countable-loop
//!   latches);
//! * **dynamic** — a functional replay of the workload's instruction
//!   stream collecting per-branch direction, transition, and order-2
//!   history counts ([`DynProfile`]).
//!
//! [`tc_analyze::classify`] bins each branch into the four-class
//! predictability taxonomy and prescribes a promotion action; the result
//! is a [`PromotionPlan`] that `tw sim --plan` (and friends) attach via
//! [`crate::SimConfig::with_promotion_plan`].
//!
//! # Determinism
//!
//! Profiling is *chunked*: the stream is cut into fixed
//! [`PROFILE_CHUNK`]-instruction chunks regardless of worker count, each
//! chunk is replayed independently (from a machine snapshot captured by
//! a fast-forward pre-pass), and per-chunk counts are merged **in stream
//! order** with a rolling two-outcome context per branch stitching the
//! chunk boundaries. A parallel (`--jobs N`) profile is therefore
//! byte-identical to a serial one — the same guarantee the matrix
//! runner gives for reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tc_analyze::{analyze, classify, DynProfile};
use tc_isa::{BlockCache, ControlKind, Interpreter, Machine};
use tc_predict::{BiasOverride, BranchClass, PlanAction};
use tc_workloads::Workload;

use crate::harness::error::TwError;
use crate::harness::json::Json;
use crate::harness::parse::{parse_json, Value};
use crate::harness::table::Table;
use crate::plan::{PlanEntry, PromotionPlan};

/// Schema tag of the promotion-plan artifact.
pub const PLAN_SCHEMA: &str = "tw-plan/v1";

/// Fixed profiling chunk length, in instructions. Chunk boundaries
/// depend only on this constant — never on the worker count — so the
/// merged profile is identical at any `--jobs`.
pub const PROFILE_CHUNK: u64 = 200_000;

/// Promotion thresholds must fit the bias-table counter width.
const MAX_THRESHOLD: u32 = 1023;

/// Per-branch counts local to one chunk, mergeable across chunks.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkBranch {
    executed: u64,
    taken: u64,
    /// Direction changes *within* the chunk.
    transitions: u64,
    /// Order-2 history counts for executions with two predecessors
    /// within the chunk.
    markov: [[u64; 2]; 4],
    /// First up-to-two outcomes in the chunk (boundary stitching).
    first: [bool; 2],
    /// Last two outcomes in the chunk (`last[1]` most recent).
    last: [bool; 2],
}

fn ctx2(older: bool, newer: bool) -> usize {
    (usize::from(older) << 1) | usize::from(newer)
}

impl ChunkBranch {
    fn push(&mut self, outcome: bool) {
        if self.executed >= 1 {
            if self.last[1] != outcome {
                self.transitions += 1;
            }
            if self.executed >= 2 {
                self.markov[ctx2(self.last[0], self.last[1])][usize::from(outcome)] += 1;
            }
        }
        if self.executed < 2 {
            self.first[self.executed as usize] = outcome;
        }
        self.last[0] = self.last[1];
        self.last[1] = outcome;
        self.executed += 1;
        self.taken += u64::from(outcome);
    }
}

/// Rolling global context of one branch during the ordered merge: the
/// last up-to-two outcomes seen across all chunks merged so far.
#[derive(Debug, Clone, Copy, Default)]
struct MergeCtx {
    len: u8,
    /// `last[1]` most recent.
    last: [bool; 2],
}

/// One chunk's profile: branch byte address → counts.
type ChunkProfile = BTreeMap<u64, ChunkBranch>;

fn profile_chunk(workload: &Workload, machine: Machine, limit: u64) -> ChunkProfile {
    let mut interp = Interpreter::with_machine(workload.program(), machine);
    let mut counts = ChunkProfile::new();
    let mut n = 0u64;
    while n < limit {
        let Some(rec) = interp.next() else { break };
        n += 1;
        if rec.is_cond_branch() {
            counts
                .entry(rec.pc.byte_addr())
                .or_default()
                .push(rec.taken);
        }
    }
    counts
}

/// Merges chunk profiles **in stream order** into whole-run profiles,
/// stitching each chunk boundary with the branch's rolling context.
fn merge_chunks(chunks: &[ChunkProfile]) -> BTreeMap<u64, DynProfile> {
    let mut profiles: BTreeMap<u64, DynProfile> = BTreeMap::new();
    let mut ctx: BTreeMap<u64, MergeCtx> = BTreeMap::new();
    for chunk in chunks {
        for (&pc, s) in chunk {
            let p = profiles.entry(pc).or_default();
            let g = ctx.entry(pc).or_default();
            // Cross-boundary stitching touches only the chunk's first
            // two outcomes: everything later has both its transition
            // predecessor and its two-outcome history inside the chunk.
            if s.executed >= 1 {
                let o0 = s.first[0];
                if g.len >= 1 && g.last[1] != o0 {
                    p.transitions += 1;
                }
                if g.len == 2 {
                    p.markov[ctx2(g.last[0], g.last[1])][usize::from(o0)] += 1;
                }
            }
            if s.executed >= 2 && g.len >= 1 {
                p.markov[ctx2(g.last[1], s.first[0])][usize::from(s.first[1])] += 1;
            }
            p.executed += s.executed;
            p.taken += s.taken;
            p.transitions += s.transitions;
            for c in 0..4 {
                for o in 0..2 {
                    p.markov[c][o] += s.markov[c][o];
                }
            }
            match s.executed {
                0 => {}
                1 => {
                    if g.len >= 1 {
                        g.last[0] = g.last[1];
                        g.len = 2;
                    } else {
                        g.len = 1;
                    }
                    g.last[1] = s.first[0];
                }
                _ => {
                    g.last = s.last;
                    g.len = 2;
                }
            }
        }
    }
    profiles
}

/// Functionally profiles up to `max_insts` instructions of `workload`,
/// returning per-branch dynamic profiles and the instructions actually
/// replayed. `jobs` caps the chunk-replay worker threads; the result is
/// identical for every `jobs ≥ 1`.
///
/// # Errors
///
/// Fails if the workload faults during the fast-forward snapshot pass
/// (registered workloads never do).
pub fn profile_branches(
    workload: &Workload,
    max_insts: u64,
    jobs: usize,
) -> Result<(BTreeMap<u64, DynProfile>, u64), TwError> {
    let program = workload.program();
    let blocks = BlockCache::new(program);
    // Snapshot pass: capture the machine at every chunk boundary at
    // fast-forward (no ExecRecord materialization) speed.
    let mut machine = workload.machine();
    let mut snapshots: Vec<(Machine, u64)> = Vec::new();
    let mut profiled = 0u64;
    while profiled < max_insts && !machine.is_halted() {
        let want = PROFILE_CHUNK.min(max_insts - profiled);
        snapshots.push((machine.clone(), want));
        let ran = machine.fast_forward(program, &blocks, want).map_err(|e| {
            TwError::runtime(format!(
                "{}: workload faulted while profiling: {e:?}",
                workload.name()
            ))
        })?;
        profiled += ran;
        if ran < want {
            break;
        }
    }
    // Replay pass: chunks are independent; run them on worker threads
    // and collect into caller-ordered slots (the runner's idiom).
    let jobs = jobs.clamp(1, snapshots.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ChunkProfile>>> =
        snapshots.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((machine, limit)) = snapshots.get(i) else {
                    break;
                };
                let counts = profile_chunk(workload, machine.clone(), *limit);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(counts);
                }
            });
        }
    });
    let chunks: Vec<ChunkProfile> = slots
        .into_iter()
        .map(|slot| match slot.into_inner() {
            Ok(Some(counts)) => counts,
            // Scoped workers fill every slot or propagate their panic.
            _ => unreachable!("scoped worker left its chunk slot empty"),
        })
        .collect();
    Ok((merge_chunks(&chunks), profiled))
}

/// Runs the full analysis pipeline on `workload`: static passes +
/// functional profile + per-branch classification, producing the plan
/// `tw sim --plan` consumes.
///
/// # Errors
///
/// Propagates [`profile_branches`] failures.
pub fn build_plan(
    workload: &Workload,
    max_insts: u64,
    jobs: usize,
) -> Result<PromotionPlan, TwError> {
    let (profiles, profiled) = profile_branches(workload, max_insts, jobs)?;
    let report = analyze(workload.program());
    let mut entries = Vec::new();
    for b in &report.taxonomy.branches {
        if b.kind != ControlKind::CondBranch {
            continue;
        }
        let pc = b.pc.byte_addr();
        let prof = profiles.get(&pc);
        let over = classify(b.static_taken_prob, prof);
        let p = prof.copied().unwrap_or_default();
        entries.push(PlanEntry {
            pc,
            over,
            executed: p.executed,
            taken: p.taken,
            transitions: p.transitions,
            bias: p.bias(),
            avg_run: p.avg_run(),
            markov_accuracy: p.markov_accuracy(),
            loop_depth: b.loop_depth,
            static_taken_prob: b.static_taken_prob,
        });
    }
    Ok(PromotionPlan {
        workload: workload.name().to_owned(),
        profiled_insts: profiled,
        entries,
    })
}

/// The `tw-plan/v1` JSON form of a plan. The key set is pinned by a
/// golden test; extend it additively.
#[must_use]
pub fn plan_to_json(plan: &PromotionPlan) -> Json {
    let counts = plan.class_counts();
    let branches = plan
        .entries
        .iter()
        .map(|e| {
            let (action, threshold) = match e.over.action {
                PlanAction::Never => ("never", Json::Null),
                PlanAction::Threshold(t) => ("promote", Json::UInt(u64::from(t))),
            };
            Json::Object(vec![
                ("pc", Json::UInt(e.pc)),
                ("class", Json::Str(e.over.class.name().to_owned())),
                ("action", Json::Str(action.to_owned())),
                ("threshold", threshold),
                ("executed", Json::UInt(e.executed)),
                ("taken", Json::UInt(e.taken)),
                ("transitions", Json::UInt(e.transitions)),
                ("bias", Json::Float(e.bias)),
                ("avg_run", Json::Float(e.avg_run)),
                ("markov_accuracy", Json::Float(e.markov_accuracy)),
                ("loop_depth", Json::UInt(e.loop_depth as u64)),
                (
                    "static_taken_prob",
                    e.static_taken_prob.map_or(Json::Null, Json::Float),
                ),
            ])
        })
        .collect();
    Json::Object(vec![
        ("schema", Json::Str(PLAN_SCHEMA.to_owned())),
        ("workload", Json::Str(plan.workload.clone())),
        ("profiled_instructions", Json::UInt(plan.profiled_insts)),
        ("static_branches", Json::UInt(plan.len() as u64)),
        (
            "classes",
            Json::Object(
                BranchClass::ALL
                    .into_iter()
                    .map(|c| (c.name(), Json::UInt(counts[c.index()])))
                    .collect(),
            ),
        ),
        ("branches", Json::Array(branches)),
    ])
}

fn want_u64(v: &Value, what: &str) -> Result<u64, TwError> {
    let n = v
        .as_f64()
        .ok_or_else(|| TwError::runtime(format!("plan: {what} is not a number")))?;
    if n < 0.0 || n.fract() != 0.0 || n > 2f64.powi(53) {
        return Err(TwError::runtime(format!(
            "plan: {what} is not a non-negative integer"
        )));
    }
    Ok(n as u64)
}

fn opt_u64(obj: &Value, key: &str, what: &str) -> Result<u64, TwError> {
    match obj.get(key) {
        Some(v) => want_u64(v, what),
        None => Ok(0),
    }
}

/// Parses and validates a `tw-plan/v1` document.
///
/// # Errors
///
/// Returns a one-line runtime [`TwError`] on malformed JSON, a wrong or
/// missing schema tag, unknown class or action names, or an
/// out-of-range promotion threshold.
pub fn parse_plan(text: &str) -> Result<PromotionPlan, TwError> {
    let doc = parse_json(text).map_err(|e| TwError::runtime(format!("plan: {e}")))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| TwError::runtime("plan: missing schema tag"))?;
    if schema != PLAN_SCHEMA {
        return Err(TwError::runtime(format!(
            "plan: schema {schema:?} is not {PLAN_SCHEMA:?}"
        )));
    }
    let workload = doc
        .get("workload")
        .and_then(Value::as_str)
        .ok_or_else(|| TwError::runtime("plan: missing workload name"))?
        .to_owned();
    let profiled_insts = opt_u64(&doc, "profiled_instructions", "profiled_instructions")?;
    let branches = doc
        .get("branches")
        .and_then(Value::as_array)
        .ok_or_else(|| TwError::runtime("plan: missing branches array"))?;
    let mut entries = Vec::with_capacity(branches.len());
    let mut last_pc: Option<u64> = None;
    for (i, b) in branches.iter().enumerate() {
        let pc = want_u64(
            b.get("pc")
                .ok_or_else(|| TwError::runtime(format!("plan: branch {i}: missing pc")))?,
            "branch pc",
        )?;
        if last_pc.is_some_and(|prev| prev >= pc) {
            return Err(TwError::runtime(format!(
                "plan: branch {i}: pc {pc:#x} out of order (duplicate or unsorted)"
            )));
        }
        last_pc = Some(pc);
        let class_name = b
            .get("class")
            .and_then(Value::as_str)
            .ok_or_else(|| TwError::runtime(format!("plan: branch {i}: missing class")))?;
        let class = BranchClass::from_name(class_name).ok_or_else(|| {
            TwError::runtime(format!("plan: branch {i}: unknown class {class_name:?}"))
        })?;
        let action_name = b
            .get("action")
            .and_then(Value::as_str)
            .ok_or_else(|| TwError::runtime(format!("plan: branch {i}: missing action")))?;
        let action = match action_name {
            "never" => PlanAction::Never,
            "promote" => {
                let t = want_u64(
                    b.get("threshold").ok_or_else(|| {
                        TwError::runtime(format!("plan: branch {i}: promote without threshold"))
                    })?,
                    "threshold",
                )?;
                if t < 1 || t > u64::from(MAX_THRESHOLD) {
                    return Err(TwError::runtime(format!(
                        "plan: branch {i}: threshold {t} outside 1..={MAX_THRESHOLD}"
                    )));
                }
                // The range check above caps `t` at MAX_THRESHOLD, but
                // convert checked anyway: a lossy cast here would turn a
                // future range-check regression into silent truncation.
                PlanAction::Threshold(u32::try_from(t).map_err(|_| {
                    TwError::runtime(format!(
                        "plan: branch {i}: threshold {t} does not fit in u32"
                    ))
                })?)
            }
            other => {
                return Err(TwError::runtime(format!(
                    "plan: branch {i}: unknown action {other:?}"
                )))
            }
        };
        let executed = opt_u64(b, "executed", "executed")?;
        let taken = opt_u64(b, "taken", "taken")?;
        if taken > executed {
            return Err(TwError::runtime(format!(
                "plan: branch {i}: taken {taken} exceeds executed {executed}"
            )));
        }
        entries.push(PlanEntry {
            pc,
            over: BiasOverride { class, action },
            executed,
            taken,
            transitions: opt_u64(b, "transitions", "transitions")?,
            bias: b.get("bias").and_then(Value::as_f64).unwrap_or(0.0),
            avg_run: b.get("avg_run").and_then(Value::as_f64).unwrap_or(0.0),
            markov_accuracy: b
                .get("markov_accuracy")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            loop_depth: usize::try_from(opt_u64(b, "loop_depth", "loop_depth")?).map_err(|_| {
                TwError::runtime(format!("plan: branch {i}: loop_depth does not fit"))
            })?,
            static_taken_prob: b.get("static_taken_prob").and_then(Value::as_f64),
        });
    }
    Ok(PromotionPlan {
        workload,
        profiled_insts,
        entries,
    })
}

/// A human summary of a plan: the class histogram plus the hottest
/// branches of each class.
#[must_use]
pub fn plan_table(plan: &PromotionPlan) -> String {
    let mut table = Table::new(&[
        "pc", "class", "action", "executed", "bias", "avg_run", "markov", "depth",
    ]);
    for e in &plan.entries {
        let action = match e.over.action {
            PlanAction::Never => "never".to_owned(),
            PlanAction::Threshold(t) => format!("promote@{t}"),
        };
        table.row(vec![
            format!("{:#x}", e.pc),
            e.over.class.name().to_owned(),
            action,
            e.executed.to_string(),
            format!("{:.3}", e.bias),
            format!("{:.1}", e.avg_run),
            format!("{:.3}", e.markov_accuracy),
            e.loop_depth.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_workloads::Benchmark;

    #[test]
    fn serial_and_parallel_profiles_are_identical() {
        let workload = Benchmark::Compress.build();
        let (serial, n1) = profile_branches(&workload, 600_000, 1).unwrap();
        let (parallel, n4) = profile_branches(&workload, 600_000, 4).unwrap();
        assert_eq!(n1, n4);
        assert_eq!(serial, parallel);
        assert!(!serial.is_empty());
    }

    #[test]
    fn chunked_profile_matches_one_shot_profile() {
        // One giant chunk (no boundaries) is the trivially correct
        // profile; the chunked merge must reproduce it exactly.
        let workload = Benchmark::Li.build();
        let one = profile_chunk(&workload, workload.machine(), 500_000);
        let whole = merge_chunks(std::slice::from_ref(&one));
        let (chunked, _) = profile_branches(&workload, 500_000, 3).unwrap();
        assert_eq!(chunked, whole);
        assert!(one.len() > 4, "li executes many static branches");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let workload = Benchmark::Compress.build();
        let plan = build_plan(&workload, 400_000, 2).unwrap();
        assert!(!plan.is_empty());
        let text = plan_to_json(&plan).pretty();
        crate::harness::check_well_formed(&text).unwrap();
        let back = parse_plan(&text).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn plan_covers_every_static_conditional_branch() {
        let workload = Benchmark::Compress.build();
        let plan = build_plan(&workload, 200_000, 1).unwrap();
        let report = analyze(workload.program());
        let cond = report
            .taxonomy
            .branches
            .iter()
            .filter(|b| b.kind == ControlKind::CondBranch)
            .count();
        assert_eq!(plan.len(), cond);
    }

    #[test]
    fn malformed_plans_are_rejected_with_one_line_errors() {
        let cases = [
            ("{", "plan:"),
            ("{\"schema\": \"tw-plan/v2\"}", "is not \"tw-plan/v1\""),
            ("{\"workload\": \"x\"}", "missing schema"),
            (
                "{\"schema\": \"tw-plan/v1\", \"workload\": \"x\"}",
                "missing branches",
            ),
            (
                "{\"schema\": \"tw-plan/v1\", \"workload\": \"x\", \"branches\": [{}]}",
                "missing pc",
            ),
            (
                "{\"schema\": \"tw-plan/v1\", \"workload\": \"x\", \"branches\": \
                 [{\"pc\": 8, \"class\": \"bogus\", \"action\": \"never\"}]}",
                "unknown class",
            ),
            (
                "{\"schema\": \"tw-plan/v1\", \"workload\": \"x\", \"branches\": \
                 [{\"pc\": 8, \"class\": \"strongly_biased\", \"action\": \"promote\", \
                   \"threshold\": 4096}]}",
                "outside 1..=1023",
            ),
            (
                "{\"schema\": \"tw-plan/v1\", \"workload\": \"x\", \"branches\": \
                 [{\"pc\": 8, \"class\": \"strongly_biased\", \"action\": \"promote\"}]}",
                "promote without threshold",
            ),
            (
                "{\"schema\": \"tw-plan/v1\", \"workload\": \"x\", \"branches\": \
                 [{\"pc\": 16, \"class\": \"data_dependent\", \"action\": \"never\"}, \
                  {\"pc\": 8, \"class\": \"data_dependent\", \"action\": \"never\"}]}",
                "out of order",
            ),
        ];
        for (text, needle) in cases {
            let err = parse_plan(text).unwrap_err();
            assert!(
                err.message().contains(needle),
                "{text}: {:?} lacks {needle:?}",
                err.message()
            );
            assert!(!err.message().contains('\n'), "one-line diagnostic");
            assert_eq!(err.exit_code(), 1);
        }
    }

    #[test]
    fn counters_past_u32_round_trip_without_truncation() {
        // A >4G-execution counter must survive emit → parse exactly; a
        // stray `as u32` anywhere on the path would fold 2^32+1 to 1.
        for executed in [
            u64::from(u32::MAX) - 1,
            u64::from(u32::MAX),
            u64::from(u32::MAX) + 1,
        ] {
            let plan = PromotionPlan {
                workload: "compress".to_owned(),
                profiled_insts: executed,
                entries: vec![PlanEntry {
                    pc: 8,
                    over: BiasOverride {
                        class: BranchClass::StronglyBiased,
                        action: PlanAction::Threshold(8),
                    },
                    executed,
                    taken: executed - 1,
                    transitions: 2,
                    bias: 0.999,
                    avg_run: 12.0,
                    markov_accuracy: 0.98,
                    loop_depth: 1,
                    static_taken_prob: None,
                }],
            };
            let back = parse_plan(&plan_to_json(&plan).pretty()).unwrap();
            assert_eq!(
                back.entries[0].executed, executed,
                "truncated at {executed}"
            );
            assert_eq!(back.profiled_insts, executed);
        }
    }
}
