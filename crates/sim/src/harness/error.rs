//! The structured error type behind the `tw` binary.
//!
//! Every fallible driver path — flag parsing, artifact reading, text
//! assembly — funnels into [`TwError`], which carries a one-line
//! message and the conventional process exit code: `2` for a usage
//! error (bad flags, unknown preset), `1` for a runtime failure (a
//! malformed artifact, an unreadable file). The binary prints
//! `tw: <message>` to stderr and exits; no error path panics or prints
//! a backtrace.

/// A `tw` failure: a one-line diagnostic plus the exit-code class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwError {
    /// The command line itself is wrong (unknown flag, missing value,
    /// unparseable number). Exit code 2, matching `usage()`.
    Usage(String),
    /// The command was well-formed but failed at runtime (unreadable
    /// file, malformed artifact, failed check). Exit code 1.
    Runtime(String),
}

impl TwError {
    /// A usage error (exit 2).
    pub fn usage(msg: impl Into<String>) -> TwError {
        TwError::Usage(msg.into())
    }

    /// A runtime error (exit 1).
    pub fn runtime(msg: impl Into<String>) -> TwError {
        TwError::Runtime(msg.into())
    }

    /// The conventional process exit code for this class.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            TwError::Usage(_) => 2,
            TwError::Runtime(_) => 1,
        }
    }

    /// The diagnostic line, without the `tw:` prefix.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            TwError::Usage(msg) | TwError::Runtime(msg) => msg,
        }
    }
}

impl std::fmt::Display for TwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for TwError {}

impl From<std::io::Error> for TwError {
    fn from(e: std::io::Error) -> TwError {
        TwError::Runtime(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_convention() {
        assert_eq!(TwError::usage("bad flag").exit_code(), 2);
        assert_eq!(TwError::runtime("bad file").exit_code(), 1);
    }

    #[test]
    fn messages_are_one_line() {
        let e = TwError::runtime("artifact truncated at byte 12");
        assert_eq!(e.to_string(), "artifact truncated at byte 12");
        assert_eq!(e.message().lines().count(), 1);
    }

    #[test]
    fn io_errors_map_to_runtime() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        assert_eq!(TwError::from(io).exit_code(), 1);
    }
}
