//! A hand-rolled JSON emitter for simulation reports.
//!
//! The workspace builds offline with no external crates, so structured
//! output is produced by this small, dependency-free serializer. Object
//! keys keep insertion order, making the schema stable and goldenable;
//! non-finite floats are emitted as `null` (JSON has no NaN/Inf), and a
//! test asserts every numeric field of a real report is finite.

use std::fmt::Write as _;

use crate::report::SimReport;

/// A JSON value with order-preserving objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter in a report).
    UInt(u64),
    /// A floating-point number; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object whose keys keep insertion order.
    Object(Vec<(&'static str, Json)>),
}

impl Json {
    /// Renders compact JSON (no insignificant whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation for human consumption.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Looks up a key of an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` prints the shortest representation that round-trips,
        // which is always a valid JSON number for finite values.
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The structured form of one [`SimReport`].
///
/// The key set is part of the tool's public interface: the `harness`
/// golden test pins it, so extend it additively.
#[must_use]
pub fn report_to_json(r: &SimReport) -> Json {
    let (p01, p2, p3) = r.fetch.prediction_demand();
    let trace_cache = match &r.trace_cache {
        None => Json::Null,
        Some(tc) => Json::Object(vec![
            ("hits", Json::UInt(tc.hits)),
            ("misses", Json::UInt(tc.misses)),
            ("fills", Json::UInt(tc.fills)),
            ("evictions", Json::UInt(tc.evictions)),
            ("duplicate_fills", Json::UInt(tc.duplicate_fills)),
            ("miss_ratio", Json::Float(tc.miss_ratio())),
        ]),
    };
    let promotions = match r.promotions {
        None => Json::Null,
        Some((promoted, demoted)) => Json::Object(vec![
            ("promotions", Json::UInt(promoted)),
            ("demotions", Json::UInt(demoted)),
        ]),
    };
    let cache = |s: &tc_cache::CacheStats| {
        Json::Object(vec![
            ("hits", Json::UInt(s.hits)),
            ("misses", Json::UInt(s.misses)),
            ("evictions", Json::UInt(s.evictions)),
            ("miss_ratio", Json::Float(s.miss_ratio())),
        ])
    };
    let mut fields = vec![
        ("benchmark", Json::Str(r.benchmark.clone())),
        ("config", Json::Str(r.config.clone())),
        ("instructions", Json::UInt(r.instructions)),
        ("cycles", Json::UInt(r.cycles)),
        ("ipc", Json::Float(r.ipc())),
        (
            "effective_fetch_rate",
            Json::Float(r.effective_fetch_rate()),
        ),
        (
            "cond_mispredict_rate",
            Json::Float(r.cond_mispredict_rate()),
        ),
        ("avg_resolution_time", Json::Float(r.avg_resolution_time())),
        ("cond_branches", Json::UInt(r.cond_branches)),
        ("cond_mispredicts", Json::UInt(r.cond_mispredicts)),
        ("promoted_executed", Json::UInt(r.promoted_executed)),
        ("promoted_faults", Json::UInt(r.promoted_faults)),
        ("indirect_executed", Json::UInt(r.indirect_executed)),
        ("indirect_mispredicts", Json::UInt(r.indirect_mispredicts)),
        ("return_mispredicts", Json::UInt(r.return_mispredicts)),
        ("salvaged", Json::UInt(r.salvaged)),
        (
            "accounting",
            Json::Object(vec![
                ("useful_fetch", Json::UInt(r.accounting.useful_fetch)),
                ("branch_misses", Json::UInt(r.accounting.branch_misses)),
                ("cache_misses", Json::UInt(r.accounting.cache_misses)),
                ("full_window", Json::UInt(r.accounting.full_window)),
                ("traps", Json::UInt(r.accounting.traps)),
                ("misfetches", Json::UInt(r.accounting.misfetches)),
                (
                    "unaccounted",
                    Json::UInt(r.cycles.saturating_sub(r.accounting.total())),
                ),
            ]),
        ),
        (
            "fetch",
            Json::Object(vec![
                ("productive_fetches", Json::UInt(r.fetch.productive_fetches)),
                (
                    "correct_instructions",
                    Json::UInt(r.fetch.correct_instructions),
                ),
                ("tc_fetches", Json::UInt(r.fetch.tc_fetches)),
                ("icache_fetches", Json::UInt(r.fetch.icache_fetches)),
                ("promoted_fetched", Json::UInt(r.fetch.promoted_fetched)),
                (
                    "prediction_demand",
                    Json::Array(vec![Json::Float(p01), Json::Float(p2), Json::Float(p3)]),
                ),
            ]),
        ),
        ("trace_cache", trace_cache),
        ("promotions", promotions),
        (
            "caches",
            Json::Object(vec![
                ("icache", cache(&r.icache)),
                ("dcache", cache(&r.dcache)),
                ("l2", cache(&r.l2)),
            ]),
        ),
        (
            "engine",
            Json::Object(vec![
                ("issued", Json::UInt(r.engine.issued)),
                ("loads", Json::UInt(r.engine.loads)),
                ("stores", Json::UInt(r.engine.stores)),
                ("wait_cycles", Json::UInt(r.engine.wait_cycles)),
            ]),
        ),
        (
            "sanitizer",
            Json::Object(vec![
                ("enabled", Json::Bool(r.sanitizer.enabled)),
                ("checked_fills", Json::UInt(r.sanitizer.checked_fills)),
                ("checked_hits", Json::UInt(r.sanitizer.checked_hits)),
                ("errors", Json::UInt(r.sanitizer.errors)),
                ("warnings", Json::UInt(r.sanitizer.warnings)),
            ]),
        ),
    ];
    // Appended only for traced runs: untraced reports — and the 30
    // golden fixtures — keep the exact pre-tracing key set.
    // Likewise for fault runs: without a fault plan the key set is
    // unchanged.
    if let Some(f) = &r.fault {
        fields.push((
            "fault",
            Json::Object(vec![
                ("injected", Json::UInt(f.injected)),
                ("detected", Json::UInt(f.detected)),
                ("recovered", Json::UInt(f.recovered)),
                ("escaped", Json::UInt(f.escaped)),
                ("recovery_cycles", Json::UInt(f.recovery_cycles)),
            ]),
        ));
    }
    if let Some(t) = &r.trace {
        fields.push(("trace", trace_summary_to_json(t)));
    }
    // Appended only for fast-forward/sampled runs: full-timing reports
    // keep the exact pre-mode key set.
    if let Some(s) = &r.sampling {
        fields.push((
            "sampling",
            Json::Object(vec![
                ("fast_forwarded", Json::UInt(s.fast_forwarded)),
                ("warmed", Json::UInt(s.warmed)),
                ("measured", Json::UInt(s.measured)),
                ("windows", Json::UInt(s.windows)),
                ("total_stream", Json::UInt(s.total_stream)),
                ("timed_fraction", Json::Float(s.timed_fraction())),
            ]),
        ));
    }
    // Appended only when a promotion plan was attached: plan-free
    // reports keep the exact pre-plan key set.
    if let Some(p) = &r.plan {
        let class = |counts: &[u64; 4]| {
            Json::Object(
                tc_predict::BranchClass::ALL
                    .into_iter()
                    .map(|c| (c.name(), Json::UInt(counts[c.index()])))
                    .collect(),
            )
        };
        fields.push((
            "plan",
            Json::Object(vec![
                ("workload", Json::Str(p.workload.clone())),
                ("profiled_instructions", Json::UInt(p.profiled_insts)),
                ("entries", Json::UInt(p.entries)),
                ("never_promote", Json::UInt(p.never_promote)),
                ("class_branches", class(&p.class_branches)),
                ("class_execs", class(&p.class_execs)),
                ("class_promoted", class(&p.class_promoted)),
                ("class_faults", class(&p.class_faults)),
                ("class_promotions", class(&p.class_promotions)),
            ]),
        ));
    }
    Json::Object(fields)
}

/// The structured form of a [`tc_trace::TraceSummary`]: overall ring
/// accounting plus non-zero per-kind event counts.
#[must_use]
pub fn trace_summary_to_json(t: &tc_trace::TraceSummary) -> Json {
    let counts = tc_trace::EventKind::ALL
        .iter()
        .filter(|k| t.count(**k) > 0)
        .map(|k| (k.name(), Json::UInt(t.count(*k))))
        .collect();
    Json::Object(vec![
        ("emitted", Json::UInt(t.emitted)),
        ("recorded", Json::UInt(t.recorded)),
        ("dropped", Json::UInt(t.dropped)),
        ("filtered", Json::UInt(t.filtered)),
        ("counts", Json::Object(counts)),
    ])
}

/// A JSON array of reports, in the given order.
#[must_use]
pub fn reports_to_json(reports: &[SimReport]) -> Json {
    Json::Array(reports.iter().map(report_to_json).collect())
}

/// Minimal structural well-formedness scan of JSON text: balanced
/// brackets outside strings, terminated strings, no trailing commas.
///
/// The workspace has no JSON parser (it builds offline with no external
/// crates), so emitted artifacts are gated in CI with this scan rather
/// than a full parse. It accepts every output of [`Json::render`] /
/// [`Json::pretty`] and rejects the structural corruptions a truncated
/// or hand-edited file would show.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn check_well_formed(text: &str) -> Result<(), String> {
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for (i, ch) in text.char_indices() {
        if in_str {
            if esc {
                esc = false;
            } else if ch == '\\' {
                esc = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err(format!("unbalanced {ch:?} at byte {i}"));
                }
            }
            _ => {}
        }
    }
    if in_str {
        return Err("unterminated string".to_string());
    }
    if depth != 0 {
        return Err(format!("{depth} unclosed bracket(s)"));
    }
    // Trailing commas never separate whitespace from a closer in our
    // emitter; scan outside strings for `,` followed by `}` / `]`.
    let (mut in_str, mut esc, mut pending_comma) = (false, false, false);
    for ch in text.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if ch == '\\' {
                esc = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => {
                in_str = true;
                pending_comma = false;
            }
            ',' => pending_comma = true,
            '}' | ']' if pending_comma => {
                return Err(format!("trailing comma before {ch:?}"));
            }
            c if c.is_whitespace() => {}
            _ => pending_comma = false,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escapes() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn well_formedness_scan_accepts_renders_and_rejects_corruption() {
        let v = Json::Object(vec![
            ("s", Json::Str("quote \" bracket } comma ,]".into())),
            ("a", Json::Array(vec![Json::UInt(1), Json::Null])),
        ]);
        assert_eq!(check_well_formed(&v.render()), Ok(()));
        assert_eq!(check_well_formed(&v.pretty()), Ok(()));
        assert!(check_well_formed("{\"a\":1").is_err(), "unclosed brace");
        assert!(check_well_formed("{\"a\":1}}").is_err(), "extra closer");
        assert!(check_well_formed("{\"a\":\"x}").is_err(), "open string");
        assert!(check_well_formed("[1,2,]").is_err(), "trailing comma");
        assert!(
            check_well_formed("[1, 2 , ]").is_err(),
            "spaced trailing comma"
        );
    }

    #[test]
    fn renders_composites_in_order() {
        let v = Json::Object(vec![
            ("b", Json::UInt(1)),
            ("a", Json::Array(vec![Json::UInt(2), Json::Null])),
        ]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":[2,null]}");
        assert!(v.pretty().contains("\"a\": [\n"));
        assert_eq!(v.get("b"), Some(&Json::UInt(1)));
        assert_eq!(v.get("missing"), None);
    }
}
