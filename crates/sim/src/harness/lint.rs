//! Static lint runs over the workload suite (`tw lint`).
//!
//! Thin glue between `tc-analyze` and the harness's report machinery:
//! runs the eight-pass pipeline over registered benchmarks and renders
//! the results through [`Table`] and [`Json`] like every other driver.

use tc_analyze::{analyze, AnalysisReport, Severity, PASS_NAMES};
use tc_workloads::WorkloadId;

use crate::harness::json::Json;
use crate::harness::table::Table;

/// One benchmark's lint result.
#[derive(Debug, Clone)]
pub struct LintEntry {
    /// The benchmark's name.
    pub benchmark: &'static str,
    /// The analysis report.
    pub report: AnalysisReport,
}

/// Lints one workload (either family) at its default scale.
#[must_use]
pub fn lint_benchmark<W: Into<WorkloadId>>(bench: W) -> LintEntry {
    let bench: WorkloadId = bench.into();
    let workload = bench.build();
    LintEntry {
        benchmark: bench.name(),
        report: analyze(workload.program()),
    }
}

/// Lints every workload of both families: the synthetic suite in
/// `Benchmark::ALL` order, then the RV32I programs.
#[must_use]
pub fn lint_all() -> Vec<LintEntry> {
    WorkloadId::all().into_iter().map(lint_benchmark).collect()
}

/// Total error-severity findings across entries.
#[must_use]
pub fn lint_errors(entries: &[LintEntry]) -> usize {
    entries.iter().map(|e| e.report.errors()).sum()
}

/// The structured form of one lint entry. Like `report_to_json`, the
/// key set is pinned by a golden test; extend it additively.
#[must_use]
pub fn lint_entry_to_json(entry: &LintEntry) -> Json {
    let r = &entry.report;
    let t = &r.taxonomy;
    let findings = r
        .findings
        .iter()
        .map(|f| {
            Json::Object(vec![
                ("pass", Json::Str(f.pass.name().to_owned())),
                ("severity", Json::Str(f.severity.to_string())),
                ("at", f.at.map_or(Json::Null, |a| Json::UInt(a.byte_addr()))),
                ("message", Json::Str(f.message.clone())),
            ])
        })
        .collect();
    Json::Object(vec![
        ("benchmark", Json::Str(entry.benchmark.to_owned())),
        (
            "passes",
            Json::Array(
                PASS_NAMES
                    .iter()
                    .map(|p| Json::Str((*p).to_owned()))
                    .collect(),
            ),
        ),
        ("instructions", Json::UInt(r.instructions as u64)),
        ("blocks", Json::UInt(r.blocks as u64)),
        ("reachable_blocks", Json::UInt(r.reachable_blocks as u64)),
        ("errors", Json::UInt(r.errors() as u64)),
        ("warnings", Json::UInt(r.warnings() as u64)),
        ("infos", Json::UInt(r.at_severity(Severity::Info) as u64)),
        (
            "taxonomy",
            Json::Object(vec![
                ("cond_branches", Json::UInt(t.cond_branches() as u64)),
                ("cond_backward", Json::UInt(t.cond_backward() as u64)),
                (
                    "cond_short_backward",
                    Json::UInt(t.cond_short_backward() as u64),
                ),
                (
                    "promotion_candidates",
                    Json::UInt(t.promotion_candidates() as u64),
                ),
                ("jumps", Json::UInt(t.jumps() as u64)),
                ("calls", Json::UInt(t.calls() as u64)),
                ("returns", Json::UInt(t.returns() as u64)),
                ("indirect_jumps", Json::UInt(t.indirect_jumps() as u64)),
                ("indirect_calls", Json::UInt(t.indirect_calls() as u64)),
                ("traps", Json::UInt(t.traps() as u64)),
                ("back_edges", Json::UInt(t.back_edges() as u64)),
            ]),
        ),
        (
            "loops",
            Json::Array(
                r.loops
                    .iter()
                    .map(|l| {
                        Json::Object(vec![
                            ("header", Json::UInt(l.header.byte_addr())),
                            ("latch", Json::UInt(l.latch.byte_addr())),
                            ("blocks", Json::UInt(l.blocks as u64)),
                            ("instructions", Json::UInt(l.instructions as u64)),
                            ("depth", Json::UInt(l.depth as u64)),
                            ("trip_count", l.trip_count.map_or(Json::Null, Json::UInt)),
                            (
                                "static_taken_prob",
                                l.static_taken_prob.map_or(Json::Null, Json::Float),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("findings", Json::Array(findings)),
    ])
}

/// A JSON array of lint entries, in the given order.
#[must_use]
pub fn lint_to_json(entries: &[LintEntry]) -> Json {
    Json::Array(entries.iter().map(lint_entry_to_json).collect())
}

/// A summary table of lint results, one row per benchmark.
#[must_use]
pub fn lint_table(entries: &[LintEntry]) -> String {
    let mut table = Table::new(&[
        "benchmark",
        "insts",
        "blocks",
        "dead",
        "cond",
        "loops",
        "back<=32",
        "promo",
        "errors",
        "warns",
    ]);
    for e in entries {
        let r = &e.report;
        table.row(vec![
            e.benchmark.to_owned(),
            r.instructions.to_string(),
            r.blocks.to_string(),
            (r.blocks - r.reachable_blocks).to_string(),
            r.taxonomy.cond_branches().to_string(),
            r.loops.len().to_string(),
            r.taxonomy.cond_short_backward().to_string(),
            r.taxonomy.promotion_candidates().to_string(),
            r.errors().to_string(),
            r.warnings().to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_workloads::Benchmark;

    #[test]
    fn lint_table_has_one_row_per_entry() {
        let entries = vec![
            lint_benchmark(Benchmark::Compress),
            lint_benchmark(Benchmark::Li),
        ];
        let text = lint_table(&entries);
        assert_eq!(text.lines().count(), 2 + entries.len());
        assert!(text.contains("compress"));
    }
}
