//! The experiment harness: one layer every driver builds on.
//!
//! The paper's evaluation is a benchmark × configuration matrix, and the
//! repo has three front doors into it — the `tw` CLI, the `paper`
//! figure/table regenerator, and the `experiments` helper API. All of
//! them share this layer:
//!
//! * [`registry`] — the single source of truth for named configuration
//!   presets (`icache`, `baseline`, `packing`, `promotion`,
//!   `promo-pack`, `headline`, …). CLI parsing and `list` output are
//!   generated from it, so a preset added here appears everywhere.
//! * [`runner`] — the parallel matrix runner: executes independent
//!   `(benchmark, configuration)` cells on scoped worker threads with
//!   deterministic, caller-ordered result collection, plus the memoizing
//!   [`MatrixRunner`] that the figure regenerator drives. Worker count
//!   comes from `--jobs` flags or the `TW_JOBS` environment variable
//!   (see [`default_jobs`]).
//! * [`json`] — a hand-rolled JSON report emitter (the workspace builds
//!   offline with no external crates) for [`SimReport`] and friends.
//! * [`parse`] — the matching reader: a small recursive-descent JSON
//!   parser for artifact comparison (`tw bench --compare`).
//! * [`error`] — [`TwError`], the structured error every fallible `tw`
//!   path returns: a one-line diagnostic plus the exit-code class
//!   (usage → 2, runtime → 1).
//! * [`artifact`] — crash-consistent artifact I/O: atomic
//!   temp+fsync+rename writes, the additive CRC32 integrity envelope,
//!   and the verified read every artifact consumer goes through.
//! * [`analyze`] — the `tw analyze` driver: a chunked deterministic
//!   functional branch profiler, the four-class predictability
//!   classifier, and the `tw-plan/v1` promotion-plan artifact
//!   (emit + validating parse).
//! * [`trace`] — the event-trace sink behind `tw trace`: traced runs,
//!   the Chrome/Perfetto `trace_event` export, and the interval-timeline
//!   renderers (`--timeline`).
//! * [`serve`] — the `tw serve` daemon: a hardened HTTP/JSON service
//!   over the same job kinds, with a single-flight content-addressed
//!   result cache and a bounded work-stealing job queue.
//! * [`table`] — the plain-text table renderer and the small statistics
//!   helpers (`mean`, `percent_change`) every experiment shares.
//! * `lint` — static verification of workload programs (`tw lint`):
//!   runs `tc-analyze`'s five-pass pipeline over the registered
//!   benchmarks and renders results through the same table/JSON
//!   machinery.
//!
//! The simulator itself is deterministic, so parallel execution is
//! required to be *observationally identical* to serial execution —
//! `harness` tests assert bit-identical reports between the two paths.
//!
//! [`SimReport`]: crate::SimReport

mod analyze;
pub mod artifact;
mod checkpoint;
mod error;
mod json;
mod lint;
mod parse;
mod registry;
mod runner;
pub mod serve;
mod table;
mod trace;

pub use analyze::{
    build_plan, parse_plan, plan_table, plan_to_json, profile_branches, PLAN_SCHEMA, PROFILE_CHUNK,
};
pub use artifact::{read_verified, stamp, write_atomic, Integrity};
pub use checkpoint::{parse_checkpoint, Checkpoint, CHECKPOINT_FORMAT};
pub use error::TwError;
pub use json::{check_well_formed, report_to_json, reports_to_json, trace_summary_to_json, Json};
pub use lint::{
    lint_all, lint_benchmark, lint_entry_to_json, lint_errors, lint_table, lint_to_json, LintEntry,
};
pub use parse::{parse_json, Value};
pub use registry::{lookup, preset, presets, standard_five, ConfigPreset, STANDARD_FIVE};
pub use runner::{
    default_jobs, run_matrix, run_matrix_watchdog, try_default_jobs, validate_jobs, MatrixRunner,
    MAX_JOBS,
};
pub use serve::{ServeConfig, ServeSummary, Server};
pub use table::{f2, mean, pct, percent_change, Table};
pub use trace::{
    chrome_trace_json, run_traced, timeline_table, timeline_to_json, TraceOptions, TracedRun,
    DEFAULT_TRACE_INTERVAL, DEFAULT_TRACE_LIMIT,
};
