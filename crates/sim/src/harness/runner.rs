//! The parallel matrix runner.
//!
//! Every multi-cell experiment is a set of independent `(benchmark,
//! configuration)` cells; the simulator is single-threaded and
//! deterministic, so the cells can run on worker threads with results
//! collected back into caller order — parallel output is bit-identical
//! to serial output (asserted by the `harness` integration tests).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tc_workloads::{Benchmark, Workload, WorkloadId};

use crate::config::SimConfig;
use crate::processor::Processor;
use crate::report::SimReport;

/// Upper bound on any requested worker-thread count. Values past this
/// are typos or hostile input, not machines: spawning a million scoped
/// threads aborts the process long before it simulates anything.
pub const MAX_JOBS: usize = 1024;

/// The worker-thread count: an explicit request, else the `TW_JOBS`
/// environment variable, else the machine's available parallelism.
///
/// Library fallback form: a malformed `TW_JOBS` is ignored. Drivers
/// that own a user-facing contract (the `tw` binary) should call
/// [`try_default_jobs`] instead, which reports the malformation.
#[must_use]
pub fn default_jobs() -> usize {
    try_default_jobs().unwrap_or_else(|_| available_jobs())
}

/// Strict form of [`default_jobs`]: a `TW_JOBS` that is set but
/// malformed — unparseable, zero, or past [`MAX_JOBS`] — is an error
/// instead of a silent fallback.
///
/// # Errors
///
/// Returns a one-line description of the malformed `TW_JOBS` value.
pub fn try_default_jobs() -> Result<usize, String> {
    match std::env::var("TW_JOBS") {
        Err(std::env::VarError::NotPresent) => Ok(available_jobs()),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("TW_JOBS: value is not valid UTF-8".to_string())
        }
        Ok(raw) => {
            validate_jobs(raw.trim().parse().map_err(|_| {
                format!("TW_JOBS: bad value {:?} (want a thread count)", raw.trim())
            })?)
            .map_err(|e| format!("TW_JOBS: {e}"))
        }
    }
}

/// Validates a requested worker count against the `1..=MAX_JOBS`
/// contract shared by `--jobs` and `TW_JOBS`.
///
/// # Errors
///
/// Returns the reason the count is outside the accepted range.
pub fn validate_jobs(jobs: usize) -> Result<usize, String> {
    if jobs == 0 {
        Err("must be at least 1".to_string())
    } else if jobs > MAX_JOBS {
        Err(format!("{jobs} exceeds the {MAX_JOBS}-thread cap"))
    } else {
        Ok(jobs)
    }
}

fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs every cell on up to `jobs` worker threads and returns the
/// reports in the order the cells were given.
///
/// Cells name workloads from either family — anything convertible to a
/// [`WorkloadId`] (a bare [`Benchmark`] still works). Each distinct
/// workload is built once and shared (read-only) across threads.
/// `jobs == 1` degenerates to a serial loop over the same code path.
#[must_use]
pub fn run_matrix<W: Into<WorkloadId> + Copy>(
    cells: &[(W, SimConfig)],
    jobs: usize,
) -> Vec<SimReport> {
    let cells: Vec<(WorkloadId, SimConfig)> = cells
        .iter()
        .map(|(w, c)| ((*w).into(), c.clone()))
        .collect();
    let mut workloads: HashMap<&'static str, Workload> = HashMap::new();
    for (bench, _) in &cells {
        workloads
            .entry(bench.name())
            .or_insert_with(|| bench.build());
    }
    run_matrix_shared(&cells, &workloads, jobs, false)
}

/// [`run_matrix`] against pre-built workloads (every cell's workload
/// must be present in `workloads`).
fn run_matrix_shared(
    cells: &[(WorkloadId, SimConfig)],
    workloads: &HashMap<&'static str, Workload>,
    jobs: usize,
    verbose: bool,
) -> Vec<SimReport> {
    let jobs = jobs.clamp(1, cells.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SimReport>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((bench, config)) = cells.get(i) else {
                    break;
                };
                if verbose {
                    eprintln!("  running {} under {} ...", bench.name(), config.label());
                }
                let workload = &workloads[bench.name()];
                let report = Processor::new(config.clone()).run(workload);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(report);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| match slot.into_inner() {
            Ok(Some(report)) => report,
            // Scoped workers fill every slot or propagate their panic
            // before the scope returns.
            _ => unreachable!("scoped worker left its result slot empty"),
        })
        .collect()
}

/// [`run_matrix`] with a progress watchdog.
///
/// With `timeout == None` this is exactly `run_matrix` (same threads,
/// same order, bit-identical reports), each cell wrapped in `Some`.
/// With a timeout, cells run on *detached* workers and completed
/// reports stream back over a channel; whenever no cell completes for
/// `timeout`, the remaining cells are declared hung and returned as
/// `None` — a wedged simulation can no longer pin the whole matrix
/// (the stuck threads are abandoned; they die with the process).
#[must_use]
pub fn run_matrix_watchdog<W: Into<WorkloadId> + Copy>(
    cells: &[(W, SimConfig)],
    jobs: usize,
    timeout: Option<Duration>,
) -> Vec<Option<SimReport>> {
    let Some(timeout) = timeout else {
        return run_matrix(cells, jobs).into_iter().map(Some).collect();
    };
    let cells: Vec<(WorkloadId, SimConfig)> = cells
        .iter()
        .map(|(w, c)| ((*w).into(), c.clone()))
        .collect();
    let jobs = jobs.clamp(1, cells.len().max(1));
    let mut workloads: HashMap<&'static str, Workload> = HashMap::new();
    for (bench, _) in &cells {
        workloads
            .entry(bench.name())
            .or_insert_with(|| bench.build());
    }
    let cells: Arc<Vec<(WorkloadId, SimConfig)>> = Arc::new(cells);
    let workloads = Arc::new(workloads);
    let next = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = std::sync::mpsc::channel::<(usize, SimReport)>();
    for _ in 0..jobs {
        let cells = Arc::clone(&cells);
        let workloads = Arc::clone(&workloads);
        let next = Arc::clone(&next);
        let tx = tx.clone();
        std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some((bench, config)) = cells.get(i) else {
                break;
            };
            let report = Processor::new(config.clone()).run(&workloads[bench.name()]);
            if tx.send((i, report)).is_err() {
                break;
            }
        });
    }
    drop(tx);
    let mut out: Vec<Option<SimReport>> = cells.iter().map(|_| None).collect();
    let mut received = 0usize;
    while received < out.len() {
        match rx.recv_timeout(timeout) {
            Ok((i, report)) => {
                out[i] = Some(report);
                received += 1;
            }
            // Timed out with cells outstanding, or every worker exited
            // without delivering them (a worker panic closes its
            // sender): the missing cells stay `None`.
            Err(_) => break,
        }
    }
    out
}

/// The memoizing experiment runner: many figures share configurations,
/// so each `(benchmark, configuration, budget)` cell simulates once per
/// process; cache misses within one request execute in parallel.
///
/// This is the engine behind the `paper` binary and `tw compare`. The
/// per-runner instruction budget is applied to every cell, and results
/// are keyed by `(benchmark, SimConfig::label())` — the label uniquely
/// identifies a configuration.
pub struct MatrixRunner {
    insts: u64,
    jobs: usize,
    verbose: bool,
    workloads: HashMap<&'static str, Workload>,
    cache: HashMap<(&'static str, String), SimReport>,
}

impl MatrixRunner {
    /// Creates a runner with a per-cell dynamic instruction budget and
    /// the default worker count ([`default_jobs`]).
    #[must_use]
    pub fn new(insts: u64, verbose: bool) -> MatrixRunner {
        MatrixRunner {
            insts,
            jobs: default_jobs(),
            verbose,
            workloads: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    /// Overrides the worker-thread count (minimum 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> MatrixRunner {
        self.jobs = jobs.max(1);
        self
    }

    /// The instruction budget per simulation.
    #[must_use]
    pub fn insts(&self) -> u64 {
        self.insts
    }

    /// The worker-thread count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Ensures every cell is simulated, running the misses in parallel.
    pub fn prefetch<W: Into<WorkloadId> + Copy>(&mut self, cells: &[(W, SimConfig)]) {
        let mut missing: Vec<(WorkloadId, SimConfig)> = Vec::new();
        let mut queued: std::collections::HashSet<(&'static str, String)> =
            std::collections::HashSet::new();
        for (bench, config) in cells {
            let bench: WorkloadId = (*bench).into();
            let key = (bench.name(), config.label());
            if !self.cache.contains_key(&key) && queued.insert(key) {
                missing.push((bench, config.clone().with_max_insts(self.insts)));
            }
        }
        if missing.is_empty() {
            return;
        }
        for (bench, _) in &missing {
            self.workloads
                .entry(bench.name())
                .or_insert_with(|| bench.build());
        }
        let reports = run_matrix_shared(&missing, &self.workloads, self.jobs, self.verbose);
        for ((bench, config), report) in missing.into_iter().zip(reports) {
            self.cache.insert((bench.name(), config.label()), report);
        }
    }

    /// Runs (or recalls) one cell.
    pub fn run<W: Into<WorkloadId> + Copy>(&mut self, bench: W, config: &SimConfig) -> &SimReport {
        let bench: WorkloadId = bench.into();
        let key = (bench.name(), config.label());
        if !self.cache.contains_key(&key) {
            self.prefetch(std::slice::from_ref(&(bench, config.clone())));
        }
        &self.cache[&key]
    }

    /// Runs the given cells (in parallel where uncached) and returns
    /// cloned reports in the given order.
    pub fn run_cells<W: Into<WorkloadId> + Copy>(
        &mut self,
        cells: &[(W, SimConfig)],
    ) -> Vec<SimReport> {
        self.prefetch(cells);
        cells
            .iter()
            .map(|(bench, config)| {
                let bench: WorkloadId = (*bench).into();
                self.cache[&(bench.name(), config.label())].clone()
            })
            .collect()
    }

    /// Runs the whole suite under one configuration, returning cloned
    /// reports in suite order.
    pub fn run_suite(&mut self, config: &SimConfig) -> Vec<SimReport> {
        let cells: Vec<(Benchmark, SimConfig)> = Benchmark::ALL
            .iter()
            .map(|&b| (b, config.clone()))
            .collect();
        self.run_cells(&cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_validation_enforces_the_range_contract() {
        assert!(validate_jobs(0).is_err());
        assert_eq!(validate_jobs(1), Ok(1));
        assert_eq!(validate_jobs(MAX_JOBS), Ok(MAX_JOBS));
        let over = validate_jobs(MAX_JOBS + 1).unwrap_err();
        assert!(over.contains("cap"), "{over}");
    }

    // `TW_JOBS` environment handling is contract-tested end-to-end in
    // the root `tests/cli.rs` (subprocess isolation); mutating the
    // process environment here would race the other harness tests.
}
