//! Batch experiment helpers: run benchmark × configuration matrices.
//!
//! Thin convenience wrappers over the [`crate::harness`] layer — suites
//! and configuration sweeps execute their cells in parallel (see
//! [`harness::default_jobs`]) with deterministic, caller-ordered
//! results.
//!
//! [`harness::default_jobs`]: crate::harness::default_jobs

use tc_workloads::Benchmark;

use crate::config::SimConfig;
use crate::harness::{default_jobs, run_matrix};
use crate::processor::Processor;
use crate::report::SimReport;

pub use crate::harness::percent_change;

/// Runs one benchmark under one configuration.
#[must_use]
pub fn run_one(bench: Benchmark, config: &SimConfig) -> SimReport {
    let workload = bench.build();
    Processor::new(config.clone()).run(&workload)
}

/// Runs every benchmark in the suite under one configuration, in
/// parallel, returning reports in suite order.
#[must_use]
pub fn run_suite(config: &SimConfig) -> Vec<SimReport> {
    let cells: Vec<(Benchmark, SimConfig)> = Benchmark::ALL
        .iter()
        .map(|&b| (b, config.clone()))
        .collect();
    run_matrix(&cells, default_jobs())
}

/// Runs a benchmark under several configurations, in parallel,
/// returning reports in configuration order.
#[must_use]
pub fn run_configs(bench: Benchmark, configs: &[SimConfig]) -> Vec<SimReport> {
    let cells: Vec<(Benchmark, SimConfig)> = configs.iter().map(|c| (bench, c.clone())).collect();
    run_matrix(&cells, default_jobs())
}

/// The arithmetic mean of a per-report metric over a suite.
#[must_use]
pub fn mean(reports: &[SimReport], metric: impl Fn(&SimReport) -> f64) -> f64 {
    crate::harness::mean(reports.iter().map(metric))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_change_math() {
        assert!((percent_change(10.0, 11.0) - 10.0).abs() < 1e-12);
        assert!((percent_change(10.0, 9.0) + 10.0).abs() < 1e-12);
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn run_configs_produces_one_report_each() {
        let configs = [
            SimConfig::baseline().with_max_insts(5_000),
            SimConfig::icache().with_max_insts(5_000),
        ];
        let reports = run_configs(Benchmark::SimOutorder, &configs);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].config, "tc");
        assert_eq!(reports[1].config, "icache");
    }
}
