//! Batch experiment helpers: run benchmark × configuration matrices.

use tc_workloads::Benchmark;

use crate::config::SimConfig;
use crate::processor::Processor;
use crate::report::SimReport;

/// Runs one benchmark under one configuration.
#[must_use]
pub fn run_one(bench: Benchmark, config: &SimConfig) -> SimReport {
    let workload = bench.build();
    Processor::new(config.clone()).run(&workload)
}

/// Runs every benchmark in the suite under one configuration.
#[must_use]
pub fn run_suite(config: &SimConfig) -> Vec<SimReport> {
    Benchmark::ALL.iter().map(|&b| run_one(b, config)).collect()
}

/// Runs a benchmark under several configurations.
#[must_use]
pub fn run_configs(bench: Benchmark, configs: &[SimConfig]) -> Vec<SimReport> {
    configs.iter().map(|c| run_one(bench, c)).collect()
}

/// The arithmetic mean of a per-report metric over a suite.
#[must_use]
pub fn mean(reports: &[SimReport], metric: impl Fn(&SimReport) -> f64) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(&metric).sum::<f64>() / reports.len() as f64
}

/// Percent change from `from` to `to`.
#[must_use]
pub fn percent_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_change_math() {
        assert!((percent_change(10.0, 11.0) - 10.0).abs() < 1e-12);
        assert!((percent_change(10.0, 9.0) + 10.0).abs() < 1e-12);
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn run_configs_produces_one_report_each() {
        let configs =
            [SimConfig::baseline().with_max_insts(5_000), SimConfig::icache().with_max_insts(5_000)];
        let reports = run_configs(Benchmark::SimOutorder, &configs);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].config, "tc");
        assert_eq!(reports[1].config, "icache");
    }
}
