//! Simulation results.

use tc_cache::CacheStats;
use tc_core::{FetchStats, SanitizerStats, TraceCacheStats};
use tc_engine::EngineStats;
use tc_fault::FaultStats;
use tc_trace::TraceSummary;

/// Where every fetch cycle went — the six categories of the paper's
/// Figure 12.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleAccounting {
    /// Cycles whose fetch returned correct-path instructions.
    pub useful_fetch: u64,
    /// Cycles fetching off the correct path or waiting for a
    /// misprediction to resolve.
    pub branch_misses: u64,
    /// Cycles stalled on instruction-cache / L2 misses.
    pub cache_misses: u64,
    /// Cycles stalled because the instruction window was full.
    pub full_window: u64,
    /// Cycles stalled draining serializing traps.
    pub traps: u64,
    /// Cycles lost generating a fetch address the predictor could not
    /// supply (indirect-target misses).
    pub misfetches: u64,
}

impl CycleAccounting {
    /// Total accounted cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.useful_fetch
            + self.branch_misses
            + self.cache_misses
            + self.full_window
            + self.traps
            + self.misfetches
    }

    /// The six categories with the paper's labels, in legend order.
    #[must_use]
    pub fn categories(&self) -> [(&'static str, u64); 6] {
        [
            ("Useful Fetch", self.useful_fetch),
            ("Branch Misses", self.branch_misses),
            ("Cache Misses", self.cache_misses),
            ("Full Window", self.full_window),
            ("Traps", self.traps),
            ("Misfetches", self.misfetches),
        ]
    }
}

/// How a non-full-timing run divided the dynamic instruction stream
/// between the functional interpreter and the timing model.
///
/// All counts are instructions. `total_stream` is the stream position
/// reached (`fast_forwarded + warmed + measured`); for a fast-forward
/// run resumed from a checkpoint, `fast_forwarded` includes the
/// instructions the checkpointed machine had already retired, so the
/// resumed report is bit-identical to the unresumed one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplingStats {
    /// Instructions executed functionally with no timing and no warming.
    pub fast_forwarded: u64,
    /// Instructions that functionally warmed the front end (bias table,
    /// predictors, trace cache) without being timed.
    pub warmed: u64,
    /// Instructions issued through the full timing model.
    pub measured: u64,
    /// Timed measurement windows (1 for a plain fast-forward run).
    pub windows: u64,
    /// Total dynamic instructions traversed.
    pub total_stream: u64,
}

impl SamplingStats {
    /// Fraction of the traversed stream that ran through the timing
    /// model (`0.0` for an empty run).
    #[must_use]
    pub fn timed_fraction(&self) -> f64 {
        if self.total_stream == 0 {
            0.0
        } else {
            (self.measured + self.warmed) as f64 / self.total_stream as f64
        }
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Workload name.
    pub benchmark: String,
    /// Configuration label.
    pub config: String,
    /// Correct-path instructions completed.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Fetch-cycle accounting.
    pub accounting: CycleAccounting,
    /// Front-end fetch statistics (histograms, effective fetch rate,
    /// prediction demand).
    pub fetch: FetchStats,
    /// Dynamic conditional branches on the correct path.
    pub cond_branches: u64,
    /// Mispredicted non-promoted conditional branches.
    pub cond_mispredicts: u64,
    /// Promoted branches that faulted (count as mispredictions, §4).
    pub promoted_faults: u64,
    /// Promoted branches executed on the correct path.
    pub promoted_executed: u64,
    /// Indirect jumps/calls whose predicted target was wrong.
    pub indirect_mispredicts: u64,
    /// Indirect jumps/calls executed.
    pub indirect_executed: u64,
    /// Returns whose RAS prediction was wrong (always 0 with the
    /// paper's ideal-return model).
    pub return_mispredicts: u64,
    /// Sum of misprediction resolution times (prediction to redirect).
    pub resolution_cycles: u64,
    /// Number of resolved mispredictions.
    pub resolution_events: u64,
    /// Trace-cache statistics, when a trace cache is configured.
    pub trace_cache: Option<TraceCacheStats>,
    /// Bias-table promotions/demotions, when promotion is configured.
    pub promotions: Option<(u64, u64)>,
    /// L1 instruction cache statistics.
    pub icache: CacheStats,
    /// L1 data cache statistics.
    pub dcache: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Execution-engine statistics.
    pub engine: EngineStats,
    /// Salvaged (inactive-issue) instructions that became useful.
    pub salvaged: u64,
    /// Runtime invariant-sanitizer activity (all-zero counters when the
    /// sanitizer is disabled).
    pub sanitizer: SanitizerStats,
    /// Fault-injection outcome counters; `None` when no fault plan was
    /// attached, so plain reports — and their JSON — stay bit-identical
    /// to pre-fault builds.
    pub fault: Option<FaultStats>,
    /// Event-tracing summary; `None` when the run was untraced (the
    /// default), so untraced reports — and their JSON — are bit-
    /// identical to pre-tracing builds.
    pub trace: Option<TraceSummary>,
    /// Stream division for fast-forward/sampled runs; `None` in
    /// full-timing mode, so full-timing reports — and the golden
    /// fixtures — keep the exact pre-mode key set.
    pub sampling: Option<SamplingStats>,
    /// Promotion-plan provenance and per-class coverage; `None` when no
    /// plan was attached, so plan-free reports — and their JSON — stay
    /// bit-identical to pre-plan builds.
    pub plan: Option<crate::plan::PlanStats>,
}

impl SimReport {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// The effective fetch rate (paper definition).
    #[must_use]
    pub fn effective_fetch_rate(&self) -> f64 {
        self.fetch.effective_fetch_rate()
    }

    /// All mispredicted branches: conditional + promoted faults +
    /// indirect (the paper's Figure 14 metric; returns are ideal).
    #[must_use]
    pub fn mispredicted_branches(&self) -> u64 {
        self.cond_mispredicts + self.promoted_faults + self.indirect_mispredicts
    }

    /// Conditional mispredictions including promoted faults (the
    /// paper's Figure 7 metric).
    #[must_use]
    pub fn cond_mispredicted_branches(&self) -> u64 {
        self.cond_mispredicts + self.promoted_faults
    }

    /// Conditional misprediction rate in `[0, 1]` (promoted faults
    /// included, per §4).
    #[must_use]
    pub fn cond_mispredict_rate(&self) -> f64 {
        let total = self.cond_branches + self.promoted_executed + self.promoted_faults;
        if total == 0 {
            0.0
        } else {
            self.cond_mispredicted_branches() as f64 / total as f64
        }
    }

    /// Average misprediction resolution time in cycles (Figure 15).
    #[must_use]
    pub fn avg_resolution_time(&self) -> f64 {
        if self.resolution_events == 0 {
            0.0
        } else {
            self.resolution_cycles as f64 / self.resolution_events as f64
        }
    }

    /// Cycles lost to branch mispredictions (Figure 13 metric).
    #[must_use]
    pub fn mispredict_lost_cycles(&self) -> u64 {
        self.accounting.branch_misses
    }

    /// Fetch-side cache-miss cycles (Table 4 metric).
    #[must_use]
    pub fn cache_miss_cycles(&self) -> u64 {
        self.accounting.cache_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> SimReport {
        SimReport {
            benchmark: "t".into(),
            config: "c".into(),
            instructions: 100,
            cycles: 50,
            accounting: CycleAccounting {
                useful_fetch: 30,
                branch_misses: 10,
                cache_misses: 5,
                full_window: 3,
                traps: 1,
                misfetches: 1,
            },
            fetch: FetchStats::new(),
            cond_branches: 20,
            cond_mispredicts: 2,
            promoted_faults: 1,
            promoted_executed: 9,
            indirect_mispredicts: 1,
            indirect_executed: 4,
            return_mispredicts: 0,
            resolution_cycles: 30,
            resolution_events: 3,
            trace_cache: None,
            promotions: None,
            icache: CacheStats::default(),
            dcache: CacheStats::default(),
            l2: CacheStats::default(),
            engine: EngineStats::default(),
            salvaged: 0,
            sanitizer: SanitizerStats::default(),
            fault: None,
            trace: None,
            sampling: None,
            plan: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = empty_report();
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert_eq!(r.mispredicted_branches(), 4);
        assert_eq!(r.cond_mispredicted_branches(), 3);
        assert!((r.cond_mispredict_rate() - 0.1).abs() < 1e-12);
        assert!((r.avg_resolution_time() - 10.0).abs() < 1e-12);
        assert_eq!(r.accounting.total(), 50);
    }
}
