//! The whole-processor simulation loop.

use std::collections::VecDeque;

use tc_cache::MemoryHierarchy;
use tc_core::{
    FetchBundle, FetchSource, FrontEnd, InlineVec, NextPc, TerminationReason, MAX_SEGMENT_BRANCHES,
    MAX_SEGMENT_INSTS,
};
use tc_engine::{ExecutionEngine, IssueTimes};
use tc_fault::{FaultDraw, FaultInjector, FaultLocus, FaultStats};
use tc_isa::{Addr, BlockCache, ControlKind, ExecRecord, Interpreter, Machine, Program};
use tc_predict::ReturnStack;
use tc_trace::{ExecPhase, FetchOrigin, NoopTracer, TraceEvent, Tracer};
use tc_workloads::Workload;

use crate::config::{ExecutionMode, SimConfig};
use crate::plan::PlanStats;
use crate::report::{CycleAccounting, SamplingStats, SimReport};

/// Bubble charged when an indirect branch has no predicted target (the
/// address is produced at decode rather than fetch).
const MISFETCH_PENALTY: u64 = 2;

/// Cap on wrong-path fetches simulated per misprediction shadow (the
/// shadow itself can be long on a memory miss; fetch stops meaningfully
/// polluting after the machine would have filled its window).
const MAX_WRONG_PATH_FETCHES: u32 = 64;

#[derive(Debug)]
struct Counters {
    issued: u64,
    cond_branches: u64,
    cond_mispredicts: u64,
    promoted_faults: u64,
    promoted_executed: u64,
    indirect_mispredicts: u64,
    indirect_executed: u64,
    return_mispredicts: u64,
    resolution_cycles: u64,
    resolution_events: u64,
    salvaged: u64,
    /// Per-class activity of plan-covered branches (all zero when no
    /// promotion plan is attached), indexed by `BranchClass::index`.
    class_execs: [u64; 4],
    class_promoted: [u64; 4],
    class_faults: [u64; 4],
}

impl Counters {
    fn new() -> Counters {
        Counters {
            issued: 0,
            cond_branches: 0,
            cond_mispredicts: 0,
            promoted_faults: 0,
            promoted_executed: 0,
            indirect_mispredicts: 0,
            indirect_executed: 0,
            return_mispredicts: 0,
            resolution_cycles: 0,
            resolution_events: 0,
            salvaged: 0,
            class_execs: [0; 4],
            class_promoted: [0; 4],
            class_faults: [0; 4],
        }
    }

    /// Attributes one conditional-branch execution to its plan class.
    fn record_class(
        &mut self,
        classes: Option<&std::collections::HashMap<u64, usize>>,
        pc: Addr,
        promoted: bool,
        faulted: bool,
    ) {
        let Some(&ci) = classes.and_then(|m| m.get(&pc.byte_addr())) else {
            return;
        };
        self.class_execs[ci] += 1;
        if faulted {
            self.class_faults[ci] += 1;
        } else if promoted {
            self.class_promoted[ci] += 1;
        }
    }
}

/// What went wrong with a fetch, if anything.
#[derive(Debug, Clone, Copy)]
enum FetchUpshot {
    /// Everything on the predicted path.
    Clean,
    /// A conditional branch (or promoted fault, or indirect target)
    /// was mispredicted; resolution completes at `done`.
    Mispredict { done: u64 },
    /// An indirect branch had no prediction: short bubble.
    Misfetch,
}

/// Per-run mutable state threaded through the timing loop, so the loop
/// can be entered repeatedly (once per measurement window in sampled
/// mode) without resetting counters or the committed-RAS mirror.
#[derive(Debug)]
struct RunState {
    c: Counters,
    acct: CycleAccounting,
    /// Committed return-stack mirror for recovery — same geometry as
    /// the front end's speculative RAS.
    ras_mirror: ReturnStack,
    cycle: u64,
    last_retire: u64,
    /// The oracle stream ran out (program completed): no further
    /// windows can execute.
    ended: bool,
}

/// The simulated processor: front end + engine + memory, driven by a
/// workload's oracle instruction stream.
#[derive(Debug)]
pub struct Processor<T: Tracer = NoopTracer> {
    config: SimConfig,
    front_end: FrontEnd<T>,
    engine: ExecutionEngine,
    mem: MemoryHierarchy,
    injector: Option<FaultInjector>,
    fault: FaultStats,
    /// Oracle look-ahead buffer, held as a field so repeated runs (and
    /// repeated measurement windows) reuse the allocation instead of
    /// rebuilding it per call.
    oracle: VecDeque<ExecRecord>,
    /// In-flight instructions awaiting retirement; reused like
    /// `oracle`.
    retire_q: VecDeque<(u64, ExecRecord)>,
    /// Byte address → plan class index, present when a promotion plan
    /// is attached; used to attribute branch activity per class.
    plan_classes: Option<std::collections::HashMap<u64, usize>>,
}

impl Processor {
    /// Builds a processor from a configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Processor {
        Processor::with_tracer(config, NoopTracer)
    }
}

impl<T: Tracer> Processor<T> {
    /// Builds a processor whose front end reports events to `tracer`.
    #[must_use]
    pub fn with_tracer(config: SimConfig, tracer: T) -> Processor<T> {
        let mut front_end = match &config.static_promotion {
            Some(table) => {
                FrontEnd::with_static_promotion_and_tracer(config.front_end, table.clone(), tracer)
            }
            None => FrontEnd::with_tracer(config.front_end, tracer),
        };
        let plan_classes = config.promotion_plan.as_ref().map(|plan| {
            front_end.set_bias_overrides(plan.overrides());
            plan.class_indices()
        });
        Processor {
            front_end,
            engine: ExecutionEngine::new(config.engine),
            mem: MemoryHierarchy::new(config.hierarchy),
            injector: config.fault_plan.clone().map(FaultInjector::new),
            fault: FaultStats::default(),
            oracle: VecDeque::with_capacity(128),
            retire_q: VecDeque::new(),
            plan_classes,
            config,
        }
    }

    /// The attached tracer.
    #[must_use]
    pub fn tracer(&self) -> &T {
        self.front_end.tracer()
    }

    /// Runs the workload to its dynamic-instruction budget (or
    /// completion) and reports, honoring the configured
    /// [`ExecutionMode`].
    pub fn run(&mut self, workload: &Workload) -> SimReport {
        self.run_from(workload, workload.machine())
    }

    /// Runs the workload starting from an explicit architectural
    /// `machine` state (typically restored from a checkpoint).
    ///
    /// A machine checkpointed at instruction `n` and resumed under
    /// [`ExecutionMode::FastForward`]`{ skip: n }` produces a report
    /// bit-identical to an unresumed `--fast-forward n` run: the mode's
    /// `skip` counts stream *position*, so instructions the restored
    /// machine has already retired count toward it.
    pub fn run_from(&mut self, workload: &Workload, machine: Machine) -> SimReport {
        let program = workload.program();
        let mut interp = Interpreter::with_machine(program, machine);
        self.oracle.clear();
        self.retire_q.clear();
        let mut rs = RunState {
            c: Counters::new(),
            acct: CycleAccounting::default(),
            ras_mirror: match self.config.front_end.ras_depth {
                Some(depth) => ReturnStack::with_depth(depth),
                None => ReturnStack::ideal(),
            },
            cycle: 0,
            last_retire: 0,
            ended: false,
        };

        let sampling = match self.config.mode {
            ExecutionMode::FullTiming => {
                self.run_timing(program, &mut interp, &mut rs, self.config.max_insts);
                None
            }
            ExecutionMode::FastForward { skip } => {
                Some(self.run_fast_forward(program, &mut interp, &mut rs, skip))
            }
            ExecutionMode::Sample {
                warmup,
                measure,
                period,
            } => Some(self.run_sampled(program, &mut interp, &mut rs, warmup, measure, period)),
        };

        // Let the machine drain. `total_cycles` bounds every pending
        // retire time, so draining to it empties the window without
        // advancing the engine clocks past the run (which would poison
        // a later run on the same processor).
        let total_cycles = rs.cycle.max(rs.last_retire);
        self.front_end.set_cycle(total_cycles);
        while let Some((_, rec)) = self.retire_q.pop_front() {
            self.front_end.retire(&rec);
        }
        self.engine.drain_retired(total_cycles);
        // Final sweep: audit every segment still resident in the cache.
        self.front_end.audit();

        assert!(
            interp.error().is_none(),
            "workload faulted: {:?}",
            interp.error()
        );
        self.report(workload, &rs.c, rs.acct, total_cycles, sampling)
    }

    /// Fast-forwards to stream position `skip` (counting instructions
    /// the machine has already retired), then times up to the
    /// configured budget.
    fn run_fast_forward(
        &mut self,
        program: &Program,
        interp: &mut Interpreter<'_>,
        rs: &mut RunState,
        skip: u64,
    ) -> SamplingStats {
        let mut stats = SamplingStats::default();
        let already = interp.machine().retired();
        let want = skip.saturating_sub(already);
        let mut skipped = 0;
        if want > 0 {
            let blocks = BlockCache::new(program);
            skipped = skip_ahead(&mut self.oracle, interp, &blocks, want);
            if skipped < want {
                rs.ended = true;
            }
        }
        stats.fast_forwarded = already + skipped;
        if T::ENABLED {
            self.front_end.tracer_mut().emit(TraceEvent::ModeBoundary {
                phase: ExecPhase::FastForward,
                insts: stats.fast_forwarded,
            });
        }
        if !rs.ended {
            self.run_timing(program, interp, rs, self.config.max_insts);
        }
        stats.measured = rs.c.issued;
        stats.windows = u64::from(rs.c.issued > 0);
        stats.total_stream = stats.fast_forwarded + stats.warmed + stats.measured;
        stats
    }

    /// SMARTS-style sampling: repeat (fast-forward, functional warm-up,
    /// timed measure) windows until the stream or the total budget runs
    /// out. `max_insts` bounds the *total* stream traversed, so a
    /// sampled run covers the same dynamic region as a full-timing run
    /// with the same budget.
    fn run_sampled(
        &mut self,
        program: &Program,
        interp: &mut Interpreter<'_>,
        rs: &mut RunState,
        warmup: u64,
        measure: u64,
        period: u64,
    ) -> SamplingStats {
        let mut stats = SamplingStats::default();
        let blocks = BlockCache::new(program);
        let skip_per_window = period - warmup - measure;
        let total = self.config.max_insts;
        let mut consumed = 0u64;

        while !rs.ended && consumed < total {
            // --- Fast-forward portion ---
            let want = skip_per_window.min(total - consumed);
            if want > 0 {
                let skipped = skip_ahead(&mut self.oracle, interp, &blocks, want);
                consumed += skipped;
                stats.fast_forwarded += skipped;
                if T::ENABLED {
                    self.front_end.tracer_mut().emit(TraceEvent::ModeBoundary {
                        phase: ExecPhase::FastForward,
                        insts: skipped,
                    });
                }
                if skipped < want {
                    break;
                }
            }
            // --- Functional warm-up ---
            let want = warmup.min(total - consumed);
            if want > 0 {
                let warmed = self.warm_up(interp, &mut rs.ras_mirror, want);
                consumed += warmed;
                stats.warmed += warmed;
                if T::ENABLED {
                    self.front_end.tracer_mut().emit(TraceEvent::ModeBoundary {
                        phase: ExecPhase::Warmup,
                        insts: warmed,
                    });
                }
                if warmed < want {
                    break;
                }
            }
            // --- Timed measurement window ---
            let want = measure.min(total - consumed);
            if want == 0 {
                break;
            }
            self.front_end.restore_ras(&rs.ras_mirror);
            let before = rs.c.issued;
            self.run_timing(program, interp, rs, want);
            let measured = rs.c.issued - before;
            consumed += measured;
            stats.windows += 1;
            if T::ENABLED {
                self.front_end.tracer_mut().emit(TraceEvent::ModeBoundary {
                    phase: ExecPhase::Measure,
                    insts: measured,
                });
            }
            if !rs.ended {
                // The pipeline drains across the (long) skipped region
                // before the next window attaches. `rs.cycle` has been
                // advanced past every pending retire time, so draining
                // to it empties the window.
                rs.cycle = rs.cycle.max(rs.last_retire);
                self.front_end.set_cycle(rs.cycle);
                while let Some((_, rec)) = self.retire_q.pop_front() {
                    self.front_end.retire(&rec);
                }
                self.engine.drain_retired(rs.cycle);
            }
        }
        stats.measured = rs.c.issued;
        stats.total_stream = stats.fast_forwarded + stats.warmed + stats.measured;
        stats
    }

    /// Functionally warms the front end for up to `want` instructions:
    /// trains the conditional predictor and history, the indirect
    /// predictor, and (via retirement) the bias table, fill unit, and
    /// trace cache — without advancing timing. Loads and stores also
    /// touch the data-side hierarchy, so measurement windows do not
    /// start against a cold dcache/L2. Returns the number of
    /// instructions consumed (short only when the stream ends).
    fn warm_up(
        &mut self,
        interp: &mut Interpreter<'_>,
        ras_mirror: &mut ReturnStack,
        want: u64,
    ) -> u64 {
        let mut done = 0u64;
        while done < want {
            let rec = match self.oracle.pop_front() {
                Some(rec) => rec,
                None => match interp.next() {
                    Some(rec) => rec,
                    None => break,
                },
            };
            match rec.control_kind() {
                ControlKind::Call | ControlKind::IndirectCall => {
                    ras_mirror.push(u64::from(rec.pc.next()));
                }
                ControlKind::Return => {
                    let _ = ras_mirror.pop();
                }
                _ => {}
            }
            if let Some(addr) = rec.mem_addr {
                let _ = self.mem.data_access(addr * 8); // word -> byte address
            }
            self.front_end.warm(&rec);
            done += 1;
        }
        done
    }

    /// The timing loop: issues up to `budget` correct-path instructions
    /// through the full front-end + engine model, starting from the
    /// oracle's current stream position. Sets `rs.ended` when the
    /// stream runs out. With `budget == max_insts` on a fresh
    /// [`RunState`] this is bit-identical to the pre-mode simulator.
    fn run_timing(
        &mut self,
        program: &Program,
        interp: &mut Interpreter<'_>,
        rs: &mut RunState,
        budget: u64,
    ) {
        refill(&mut self.oracle, interp);
        let Some(first) = self.oracle.front() else {
            rs.ended = true;
            return;
        };
        let mut pc = first.pc;
        let start = rs.c.issued;

        while rs.c.issued - start < budget {
            refill(&mut self.oracle, interp);
            if self.oracle.is_empty() {
                rs.ended = true;
                break;
            }
            self.front_end.set_cycle(rs.cycle);
            // Scheduled fault injection for this cycle.
            let draw = self.injector.as_mut().and_then(|inj| inj.poll(rs.cycle));
            if let Some(draw) = draw {
                self.apply_fault(draw);
            }
            // Retire-side work reaching the current cycle.
            while self.retire_q.front().is_some_and(|(t, _)| *t <= rs.cycle) {
                let (_, rec) = self.retire_q.pop_front().expect("checked");
                self.front_end.retire(&rec);
            }
            self.engine.drain_retired(rs.cycle);
            if !self.engine.has_room() {
                let t = self
                    .engine
                    .earliest_retire()
                    .expect("full window is non-empty");
                let wait = t.saturating_sub(rs.cycle).max(1);
                if T::ENABLED {
                    self.front_end.tracer_mut().emit(TraceEvent::WindowStall {
                        wait: wait as u32,
                        occupancy: self.engine.occupancy() as u32,
                    });
                }
                rs.acct.full_window += wait;
                rs.cycle += wait;
                continue;
            }

            // --- Fetch ---
            let bundle = self.front_end.fetch(pc, program, &mut self.mem);
            if bundle.icache_latency > 0 {
                rs.acct.cache_misses += u64::from(bundle.icache_latency);
                rs.cycle += u64::from(bundle.icache_latency);
            }
            let fetch_cycle = rs.cycle;

            // --- Validate the active portion against the oracle ---
            // A fetch carries at most three non-promoted conditional
            // branches and sixteen instructions, so both scratch lists
            // live on the stack.
            let mut outcomes: InlineVec<bool, MAX_SEGMENT_BRANCHES> = InlineVec::new();
            let mut history_replay: InlineVec<bool, MAX_SEGMENT_INSTS> = InlineVec::new();
            let mut upshot = FetchUpshot::Clean;
            let mut validated = 0usize;
            let mut promoted_in_fetch = 0u64;
            let mut last_times: Option<IssueTimes> = None;
            let mut trap_fetched = false;

            for fi in bundle.active() {
                let Some(front) = self.oracle.front() else {
                    break;
                };
                if front.pc != fi.pc {
                    // The predicted path silently left the correct path —
                    // impossible with consistent segments, so under fault
                    // injection this is a corruption that escaped the
                    // sanitizer; count it and resync as a misfetch.
                    if self.injector.is_some() {
                        self.fault.escaped += 1;
                        self.fault.detected += 1;
                    } else {
                        debug_assert!(false, "active path diverged without a branch mispredict");
                    }
                    upshot = FetchUpshot::Misfetch;
                    break;
                }
                let rec = self.oracle.pop_front().expect("checked");
                let times = self.engine.issue(&rec, fetch_cycle, &mut self.mem);
                self.retire_q.push_back((times.retire, rec));
                rs.last_retire = rs.last_retire.max(times.retire);
                last_times = Some(times);
                rs.c.issued += 1;
                validated += 1;
                match rec.control_kind() {
                    ControlKind::Call | ControlKind::IndirectCall => {
                        rs.ras_mirror.push(u64::from(rec.pc.next()));
                    }
                    ControlKind::Return => {
                        let _ = rs.ras_mirror.pop();
                    }
                    ControlKind::Trap => trap_fetched = true,
                    _ => {}
                }
                if rec.is_cond_branch() {
                    history_replay.push(rec.taken);
                    // Well-formed bundles always attach a direction to a
                    // conditional branch; a missing one is possible only
                    // downstream of an escaped corruption — treat it as
                    // a mispredict rather than panicking.
                    let predicted = fi.pred_taken.unwrap_or(!rec.taken);
                    rs.c.record_class(
                        self.plan_classes.as_ref(),
                        rec.pc,
                        fi.promoted,
                        fi.promoted && predicted != rec.taken,
                    );
                    if fi.promoted {
                        promoted_in_fetch += 1;
                        if predicted == rec.taken {
                            rs.c.promoted_executed += 1;
                        } else {
                            rs.c.promoted_faults += 1;
                            if T::ENABLED {
                                self.front_end
                                    .tracer_mut()
                                    .emit(TraceEvent::PromotedFault { pc: rec.pc });
                            }
                            upshot = FetchUpshot::Mispredict { done: times.done };
                            break;
                        }
                    } else {
                        rs.c.cond_branches += 1;
                        outcomes.push(rec.taken);
                        if predicted != rec.taken {
                            rs.c.cond_mispredicts += 1;
                            if T::ENABLED {
                                self.front_end
                                    .tracer_mut()
                                    .emit(TraceEvent::CondMispredict {
                                        pc: rec.pc,
                                        taken: rec.taken,
                                    });
                            }
                            upshot = FetchUpshot::Mispredict { done: times.done };
                            break;
                        }
                    }
                }
            }

            // --- Next-PC resolution (when the path was clean) ---
            let mut resolved_next: Option<Addr> = None;
            if matches!(upshot, FetchUpshot::Clean) {
                match bundle.next_pc {
                    NextPc::Known(a) => resolved_next = Some(a),
                    NextPc::Return { predicted } => {
                        let actual = self.oracle.front().map(|r| r.pc);
                        if self.config.ideal_returns {
                            // Ideal RAS: the architectural target.
                            resolved_next = actual;
                        } else if let Some(actual) = actual {
                            resolved_next = Some(actual);
                            match predicted {
                                Some(p) if p == actual => {}
                                Some(_) => {
                                    rs.c.return_mispredicts += 1;
                                    if T::ENABLED {
                                        self.front_end.tracer_mut().emit(
                                            TraceEvent::ReturnMispredict {
                                                pc: bundle.fetch_pc,
                                            },
                                        );
                                    }
                                    let done = last_times.map_or(fetch_cycle + 1, |t| t.done);
                                    upshot = FetchUpshot::Mispredict { done };
                                }
                                None => upshot = FetchUpshot::Misfetch,
                            }
                        }
                    }
                    NextPc::Indirect {
                        pc: ind_pc,
                        predicted,
                    } => {
                        rs.c.indirect_executed += 1;
                        let actual = self.oracle.front().map(|r| r.pc);
                        if let Some(actual) = actual {
                            self.front_end.train_indirect(ind_pc, actual);
                            match predicted {
                                Some(p) if p == actual => resolved_next = Some(actual),
                                Some(_) => {
                                    rs.c.indirect_mispredicts += 1;
                                    if T::ENABLED {
                                        self.front_end
                                            .tracer_mut()
                                            .emit(TraceEvent::IndirectMispredict { pc: ind_pc });
                                    }
                                    let done = last_times.map_or(fetch_cycle + 1, |t| t.done);
                                    upshot = FetchUpshot::Mispredict { done };
                                    resolved_next = Some(actual);
                                }
                                None => {
                                    upshot = FetchUpshot::Misfetch;
                                    resolved_next = Some(actual);
                                }
                            }
                        }
                    }
                }
            }

            // --- Salvage inactive issue on a misprediction ---
            let mut salvaged = 0usize;
            if matches!(upshot, FetchUpshot::Mispredict { .. }) {
                for fi in bundle.inactive() {
                    let Some(front) = self.oracle.front() else {
                        break;
                    };
                    if front.pc != fi.pc {
                        break;
                    }
                    if let Some(dir) = fi.pred_taken {
                        if dir != front.taken {
                            break;
                        }
                    }
                    let rec = self.oracle.pop_front().expect("checked");
                    let times = self.engine.issue(&rec, fetch_cycle, &mut self.mem);
                    self.retire_q.push_back((times.retire, rec));
                    rs.last_retire = rs.last_retire.max(times.retire);
                    rs.c.issued += 1;
                    salvaged += 1;
                    match rec.control_kind() {
                        ControlKind::Call | ControlKind::IndirectCall => {
                            rs.ras_mirror.push(u64::from(rec.pc.next()));
                        }
                        ControlKind::Return => {
                            let _ = rs.ras_mirror.pop();
                        }
                        _ => {}
                    }
                    if rec.is_cond_branch() {
                        history_replay.push(rec.taken);
                        rs.c.record_class(self.plan_classes.as_ref(), rec.pc, fi.promoted, false);
                        if fi.promoted {
                            promoted_in_fetch += 1;
                            rs.c.promoted_executed += 1;
                        } else {
                            rs.c.cond_branches += 1;
                            outcomes.push(rec.taken);
                        }
                    }
                }
                rs.c.salvaged += salvaged as u64;
            }

            // --- Stats + training ---
            let reason = if matches!(upshot, FetchUpshot::Mispredict { .. }) {
                TerminationReason::MispredBr
            } else {
                bundle.base_reason
            };
            let size = validated + salvaged;
            {
                let stats = self.front_end.stats_mut();
                stats.record_fetch(reason, size, bundle.predictions_used);
                match bundle.source {
                    FetchSource::TraceCache => stats.tc_fetches += 1,
                    FetchSource::ICache => stats.icache_fetches += 1,
                }
                stats.promoted_fetched += promoted_in_fetch;
            }
            if T::ENABLED {
                self.front_end.tracer_mut().emit(TraceEvent::Fetch {
                    pc: bundle.fetch_pc,
                    size: size as u8,
                    source: match bundle.source {
                        FetchSource::TraceCache => FetchOrigin::TraceCache,
                        FetchSource::ICache => FetchOrigin::ICache,
                    },
                    cond_branches: outcomes.len() as u8,
                    promoted: promoted_in_fetch as u8,
                    mispredicted: matches!(upshot, FetchUpshot::Mispredict { .. }),
                });
            }
            self.front_end.train(&bundle.pred, &outcomes);

            // --- Advance ---
            match upshot {
                FetchUpshot::Clean => {
                    rs.acct.useful_fetch += 1;
                    rs.cycle += 1;
                    if trap_fetched {
                        // Serializing: fetch stalls until the trap
                        // retires.
                        let trap_retire = last_times.map_or(rs.cycle, |t| t.retire);
                        if trap_retire > rs.cycle {
                            rs.acct.traps += trap_retire - rs.cycle;
                            rs.cycle = trap_retire;
                        }
                    }
                    match resolved_next {
                        Some(next) => pc = next,
                        None => {
                            rs.ended = true;
                            break;
                        }
                    }
                }
                FetchUpshot::Misfetch => {
                    if T::ENABLED {
                        self.front_end.tracer_mut().emit(TraceEvent::Misfetch {
                            pc: bundle.fetch_pc,
                        });
                    }
                    rs.acct.useful_fetch += 1;
                    rs.acct.misfetches += MISFETCH_PENALTY;
                    rs.cycle += 1 + MISFETCH_PENALTY;
                    match resolved_next.or_else(|| self.oracle.front().map(|r| r.pc)) {
                        Some(next) => pc = next,
                        None => {
                            rs.ended = true;
                            break;
                        }
                    }
                }
                FetchUpshot::Mispredict { done } => {
                    rs.acct.useful_fetch += 1;
                    let redirect = done + 1;
                    rs.c.resolution_cycles += done.saturating_sub(fetch_cycle);
                    rs.c.resolution_events += 1;
                    let lost = redirect.saturating_sub(fetch_cycle + 1);
                    rs.acct.branch_misses += lost;

                    // Wrong-path fetching during the shadow: pollutes the
                    // caches and LRU state, then all speculative
                    // predictor state is repaired.
                    if self.config.model_wrong_path && lost > 0 {
                        self.run_wrong_path(&bundle, program, fetch_cycle, redirect);
                    }
                    // Repair: history snapshot + replay of actual
                    // outcomes; RAS from the committed mirror.
                    self.front_end
                        .restore_history(bundle.pred.history.snapshot());
                    for &t in &history_replay {
                        self.front_end.push_history(t);
                    }
                    self.front_end.restore_ras(&rs.ras_mirror);

                    rs.cycle = redirect.max(fetch_cycle + 1);
                    match self.oracle.front().map(|r| r.pc) {
                        Some(next) => {
                            if T::ENABLED {
                                self.front_end.tracer_mut().emit(TraceEvent::Repair {
                                    redirect_pc: next,
                                    lost: lost as u32,
                                });
                            }
                            pc = next;
                        }
                        None => {
                            rs.ended = true;
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Simulates wrong-path fetching between a misprediction and its
    /// resolution: cache and LRU pollution only (no issue, no training).
    fn run_wrong_path(
        &mut self,
        bundle: &FetchBundle,
        program: &Program,
        fetch_cycle: u64,
        redirect: u64,
    ) {
        let mut wp_pc = match bundle.next_pc {
            NextPc::Known(a) => a,
            NextPc::Return { predicted } | NextPc::Indirect { predicted, .. } => match predicted {
                Some(a) => a,
                None => return,
            },
        };
        let mut wp_cycle = fetch_cycle + 1;
        let mut fetches = 0u32;
        while wp_cycle < redirect && fetches < MAX_WRONG_PATH_FETCHES {
            let wp = self.front_end.fetch(wp_pc, program, &mut self.mem);
            fetches += 1;
            wp_cycle += 1 + u64::from(wp.icache_latency);
            wp_pc = match wp.next_pc {
                NextPc::Known(a) => a,
                NextPc::Return { predicted } | NextPc::Indirect { predicted, .. } => {
                    match predicted {
                        Some(a) => a,
                        None => break,
                    }
                }
            };
        }
    }

    /// Applies one scheduled fault to the live front end. Faults that
    /// find nothing to perturb (empty RAS, cold trace cache) are
    /// dropped without counting. Self-healing loci — silent eviction,
    /// bias/predictor counter flips, RAS clobbers, dropped fills — are
    /// counted recovered immediately: their effect is confined to
    /// prediction quality and is repaired by ordinary training and
    /// misprediction recovery. Segment corruption is accounted by the
    /// front end's quarantine counters (or `escaped` at dispatch).
    fn apply_fault(&mut self, draw: FaultDraw) {
        let fe = &mut self.front_end;
        let (landed, self_healing) = match draw.locus {
            FaultLocus::TcSegment => (fe.fault_corrupt_segment(draw.entropy).is_some(), false),
            FaultLocus::TcEvict => (fe.fault_evict_line(draw.entropy).is_some(), true),
            FaultLocus::Bias => (fe.fault_flip_bias(draw.entropy), true),
            FaultLocus::Predictor => (fe.fault_flip_predictor(draw.entropy), true),
            FaultLocus::Ras => (fe.fault_clobber_ras(draw.entropy), true),
            FaultLocus::FillStall => (fe.fault_drop_fill(), true),
        };
        if landed {
            self.fault.injected += 1;
            if self_healing {
                self.fault.recovered += 1;
            }
        }
    }

    fn report(
        &self,
        workload: &Workload,
        c: &Counters,
        acct: CycleAccounting,
        cycles: u64,
        sampling: Option<SamplingStats>,
    ) -> SimReport {
        SimReport {
            benchmark: workload.name().to_owned(),
            config: self.config.label(),
            instructions: c.issued,
            cycles,
            accounting: acct,
            fetch: self.front_end.stats().clone(),
            cond_branches: c.cond_branches,
            cond_mispredicts: c.cond_mispredicts,
            promoted_faults: c.promoted_faults,
            promoted_executed: c.promoted_executed,
            indirect_mispredicts: c.indirect_mispredicts,
            indirect_executed: c.indirect_executed,
            return_mispredicts: c.return_mispredicts,
            resolution_cycles: c.resolution_cycles,
            resolution_events: c.resolution_events,
            trace_cache: self.front_end.trace_cache().map(|tc| *tc.stats()),
            promotions: self
                .front_end
                .fill_unit()
                .and_then(|f| f.bias_table())
                .map(|b| (b.promotions(), b.demotions())),
            icache: *self.mem.icache_stats(),
            dcache: *self.mem.dcache_stats(),
            l2: *self.mem.l2_stats(),
            engine: *self.engine.stats(),
            salvaged: c.salvaged,
            sanitizer: self.front_end.sanitizer().stats(),
            fault: self.injector.as_ref().map(|_| {
                let q = self.front_end.quarantine_stats();
                FaultStats {
                    injected: self.fault.injected,
                    detected: self.fault.detected + q.detected,
                    recovered: self.fault.recovered + q.recovered,
                    escaped: self.fault.escaped,
                    recovery_cycles: q.recovery_cycles,
                }
            }),
            trace: self.front_end.tracer().summary(),
            sampling,
            plan: self.config.promotion_plan.as_ref().map(|p| PlanStats {
                workload: p.workload.clone(),
                profiled_insts: p.profiled_insts,
                entries: p.len() as u64,
                never_promote: p.never_promote(),
                class_branches: p.class_counts(),
                class_execs: c.class_execs,
                class_promoted: c.class_promoted,
                class_faults: c.class_faults,
                class_promotions: self
                    .front_end
                    .fill_unit()
                    .and_then(|f| f.bias_table())
                    .map_or([0; 4], tc_predict::BiasTable::class_promotions),
            }),
        }
    }
}

fn refill(oracle: &mut VecDeque<ExecRecord>, interp: &mut Interpreter<'_>) {
    while oracle.len() < 64 {
        match interp.next() {
            Some(rec) => oracle.push_back(rec),
            None => break,
        }
    }
}

/// Advances the stream by up to `want` instructions with no timing and
/// no warming: drains already-materialized oracle records first, then
/// fast-forwards the interpreter through the predecoded block cache.
/// Returns the instructions consumed (short only when the stream ends).
fn skip_ahead(
    oracle: &mut VecDeque<ExecRecord>,
    interp: &mut Interpreter<'_>,
    blocks: &BlockCache,
    want: u64,
) -> u64 {
    let from_buffer = (oracle.len() as u64).min(want);
    oracle.drain(..from_buffer as usize);
    from_buffer + interp.fast_forward(blocks, want - from_buffer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_workloads::Benchmark;

    fn quick(config: SimConfig, bench: Benchmark) -> SimReport {
        let workload = bench.build_scaled(2);
        Processor::new(config.with_max_insts(60_000)).run(&workload)
    }

    #[test]
    fn baseline_simulation_is_sane() {
        let r = quick(SimConfig::baseline(), Benchmark::Compress);
        assert!(
            r.instructions >= 50_000,
            "ran {} instructions",
            r.instructions
        );
        assert!(r.cycles > 0);
        let ipc = r.ipc();
        assert!(ipc > 0.3 && ipc < 16.0, "IPC {ipc} out of range");
        let effr = r.effective_fetch_rate();
        assert!(effr > 2.0 && effr <= 16.0, "effective fetch rate {effr}");
        assert!(r.fetch.tc_fetches > 0, "trace cache never hit");
    }

    #[test]
    fn icache_frontend_fetches_single_blocks() {
        let r = quick(SimConfig::icache(), Benchmark::Compress);
        let effr = r.effective_fetch_rate();
        assert!(effr > 1.0 && effr < 12.0, "icache fetch rate {effr}");
        assert_eq!(r.fetch.tc_fetches, 0);
        assert!(r.trace_cache.is_none());
    }

    #[test]
    fn trace_cache_beats_icache_on_fetch_rate() {
        let tc = quick(SimConfig::baseline(), Benchmark::Ijpeg);
        let ic = quick(SimConfig::icache(), Benchmark::Ijpeg);
        assert!(
            tc.effective_fetch_rate() > ic.effective_fetch_rate(),
            "tc {} <= icache {}",
            tc.effective_fetch_rate(),
            ic.effective_fetch_rate()
        );
    }

    #[test]
    fn promotion_reduces_prediction_demand() {
        let base = quick(SimConfig::baseline(), Benchmark::Ijpeg);
        let promo = quick(SimConfig::promotion(16), Benchmark::Ijpeg);
        let (b01, _, _) = base.fetch.prediction_demand();
        let (p01, _, _) = promo.fetch.prediction_demand();
        assert!(
            p01 > b01,
            "promotion should raise the 0-or-1-prediction fraction: {b01} -> {p01}"
        );
        assert!(promo.fetch.promoted_fetched > 0);
        let (promotions, _) = promo.promotions.unwrap();
        assert!(promotions > 0, "no branches were promoted");
    }

    #[test]
    fn accounting_covers_most_cycles() {
        let r = quick(SimConfig::baseline(), Benchmark::Go);
        let covered = r.accounting.total();
        assert!(
            covered <= r.cycles + 1,
            "accounting {covered} exceeds cycles {}",
            r.cycles
        );
        assert!(
            covered * 10 >= r.cycles * 8,
            "accounting {covered} covers too little of {}",
            r.cycles
        );
    }

    #[test]
    fn mispredictions_are_detected_and_resolved() {
        let r = quick(SimConfig::baseline(), Benchmark::Go);
        assert!(r.cond_mispredicts > 0, "go must mispredict sometimes");
        assert!(r.resolution_events >= r.cond_mispredicts);
        assert!(
            r.avg_resolution_time() >= 3.0,
            "resolution {}",
            r.avg_resolution_time()
        );
    }

    #[test]
    fn perfect_disambiguation_does_not_hurt() {
        let real = quick(SimConfig::baseline(), Benchmark::Vortex);
        let perfect = quick(
            SimConfig::baseline().with_perfect_disambiguation(),
            Benchmark::Vortex,
        );
        assert!(
            perfect.ipc() >= real.ipc() * 0.98,
            "perfect {} << realistic {}",
            perfect.ipc(),
            real.ipc()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick(SimConfig::baseline(), Benchmark::Perl);
        let b = quick(SimConfig::baseline(), Benchmark::Perl);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.cond_mispredicts, b.cond_mispredicts);
    }
}
