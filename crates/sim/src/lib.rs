//! Whole-processor simulation: front end + execution engine + memory.
//!
//! This crate drives the `tc-core` fetch mechanism and the `tc-engine`
//! out-of-order core against the `tc-workloads` benchmarks, reproducing
//! the paper's experimental machine:
//!
//! * 16-wide fetch from a 2K-entry trace cache (or the 128 KB reference
//!   i-cache), 4 KB supporting i-cache, 1 MB L2, 50-cycle memory;
//! * a gshare multiple-branch predictor (or hybrid for the icache front
//!   end) with speculative history and repair;
//! * wrong-path fetch modeling (cache pollution during misprediction
//!   shadows);
//! * inactive issue with salvage: instructions issued inactively from a
//!   partially matched trace segment become useful when the prediction
//!   proves wrong;
//! * ideal return-address prediction, last-target indirect prediction;
//! * six-way fetch-cycle accounting (Figure 12): useful fetch, branch
//!   misses, cache misses, full window, traps, misfetches.
//!
//! Entry point: [`Processor::run`] (or the [`simulate`] convenience
//! wrapper), producing a [`SimReport`]. Attaching a
//! `tc_fault::FaultPlan` via [`SimConfig::with_fault_plan`] turns a run
//! into a deterministic fault-injection experiment (see the `fault`
//! counters in the report).
//!
//! # Example
//!
//! ```
//! use tc_sim::{simulate, SimConfig};
//! use tc_workloads::Benchmark;
//!
//! let config = SimConfig::baseline().with_max_insts(20_000);
//! let report = simulate(Benchmark::Compress, &config);
//! assert!(report.ipc() > 0.5);
//! assert!(report.effective_fetch_rate() > 1.0);
//! ```
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod config;
mod plan;
mod processor;
mod report;

pub mod experiments;
pub mod harness;

pub use config::{ExecutionMode, SimConfig};
pub use harness::MatrixRunner;
pub use plan::{PlanEntry, PlanStats, PromotionPlan};
pub use processor::Processor;
pub use report::{CycleAccounting, SamplingStats, SimReport};
pub use tc_fault::{FaultLocus, FaultPlan, FaultStats};

use tc_workloads::WorkloadId;

/// Builds the workload (either family) at its default scale and
/// simulates it under `config`.
#[must_use]
pub fn simulate<W: Into<WorkloadId>>(benchmark: W, config: &SimConfig) -> SimReport {
    let workload = benchmark.into().build();
    Processor::new(config.clone()).run(&workload)
}
