//! Simulation configuration presets for every machine the paper
//! evaluates.

use tc_cache::HierarchyConfig;
use tc_core::{FrontEndConfig, PackingPolicy, StaticPromotionTable};
use tc_engine::EngineConfig;
use tc_fault::FaultPlan;

use crate::plan::PromotionPlan;

/// How a run divides the dynamic instruction stream between the
/// functional interpreter and the timing model.
///
/// The functional interpreter alone runs orders of magnitude faster
/// than the timing front end; these modes let long streams be traversed
/// at interpreter speed while timing only the regions of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Every instruction runs through the timing front end (default;
    /// bit-identical to the pre-mode simulator).
    FullTiming,
    /// Fast-forward the first `skip` instructions functionally
    /// (predecoded block dispatch, no timing, no warming), then time up
    /// to the configured `max_insts` budget. Resuming from a checkpoint
    /// taken at instruction `skip` is bit-identical to this mode.
    FastForward {
        /// Instructions to execute functionally before timing attaches.
        skip: u64,
    },
    /// SMARTS-style sampled simulation. The stream is traversed in
    /// repeating `period`-instruction windows: each window fast-forwards
    /// `period - warmup - measure` instructions, functionally warms the
    /// front end (bias table, predictors, trace cache) for `warmup`
    /// instructions, then times `measure` instructions. `max_insts`
    /// bounds the *total* stream traversed, so a sampled run covers the
    /// same dynamic region as a full-timing run with the same budget.
    Sample {
        /// Functional-warming instructions per window.
        warmup: u64,
        /// Timed instructions per window.
        measure: u64,
        /// Total window length (`warmup + measure <= period`).
        period: u64,
    },
}

impl ExecutionMode {
    /// Whether this mode times every instruction (the golden-fixture
    /// configuration).
    #[must_use]
    pub fn is_full_timing(self) -> bool {
        self == ExecutionMode::FullTiming
    }
}

/// Complete machine + run configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Front-end structure.
    pub front_end: FrontEndConfig,
    /// Execution-core parameters.
    pub engine: EngineConfig,
    /// Memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Dynamic-instruction budget (the paper ran 41M–500M; scaled runs
    /// default to 2M).
    pub max_insts: u64,
    /// Model wrong-path fetches during misprediction shadows (cache and
    /// LRU pollution).
    pub model_wrong_path: bool,
    /// Static (profile-guided) promotion table; replaces the dynamic
    /// bias table when set (§4's static-promotion alternative).
    pub static_promotion: Option<StaticPromotionTable>,
    /// Treat return targets as ideally predicted (the paper's model).
    /// Disabled, returns predict through the finite/ideal RAS and can
    /// mispredict.
    pub ideal_returns: bool,
    /// Deterministic fault-injection plan; `None` (the default) leaves
    /// every fault path untouched and keeps reports bit-identical to a
    /// plain run.
    pub fault_plan: Option<FaultPlan>,
    /// How functional execution and timing divide the stream
    /// ([`ExecutionMode::FullTiming`] by default, which is bit-identical
    /// to the pre-mode simulator).
    pub mode: ExecutionMode,
    /// Per-branch promotion plan (`tw analyze` output); `None` (the
    /// default) keeps the table-wide bias threshold for every branch
    /// and reports bit-identical to pre-plan builds.
    pub promotion_plan: Option<PromotionPlan>,
}

/// Default dynamic-instruction budget.
pub const DEFAULT_MAX_INSTS: u64 = 2_000_000;

impl SimConfig {
    fn with_front_end(front_end: FrontEndConfig, hierarchy: HierarchyConfig) -> SimConfig {
        SimConfig {
            front_end,
            engine: EngineConfig::paper_realistic(),
            hierarchy,
            max_insts: DEFAULT_MAX_INSTS,
            model_wrong_path: true,
            static_promotion: None,
            ideal_returns: true,
            fault_plan: None,
            mode: ExecutionMode::FullTiming,
            promotion_plan: None,
        }
    }

    /// The icache-only reference machine (128 KB i-cache, hybrid
    /// predictor, one fetch block per cycle).
    #[must_use]
    pub fn icache() -> SimConfig {
        SimConfig::with_front_end(
            FrontEndConfig::icache_only(),
            HierarchyConfig::paper_icache_only(),
        )
    }

    /// The baseline trace-cache machine (§3).
    #[must_use]
    pub fn baseline() -> SimConfig {
        SimConfig::with_front_end(
            FrontEndConfig::baseline(),
            HierarchyConfig::paper_trace_cache(),
        )
    }

    /// Baseline + branch promotion at `threshold` (§4).
    #[must_use]
    pub fn promotion(threshold: u32) -> SimConfig {
        SimConfig::with_front_end(
            FrontEndConfig::promotion(threshold),
            HierarchyConfig::paper_trace_cache(),
        )
    }

    /// Promotion with a single-prediction hybrid predictor driving the
    /// trace cache (§4's suggestion for near-term designs).
    #[must_use]
    pub fn promotion_hybrid(threshold: u32) -> SimConfig {
        SimConfig::with_front_end(
            FrontEndConfig::promotion_hybrid(threshold),
            HierarchyConfig::paper_trace_cache(),
        )
    }

    /// Baseline + trace packing under `policy` (§5).
    #[must_use]
    pub fn packing(policy: PackingPolicy) -> SimConfig {
        SimConfig::with_front_end(
            FrontEndConfig::packing(policy),
            HierarchyConfig::paper_trace_cache(),
        )
    }

    /// Promotion + packing combined.
    #[must_use]
    pub fn promotion_packing(threshold: u32, policy: PackingPolicy) -> SimConfig {
        SimConfig::with_front_end(
            FrontEndConfig::promotion_packing(threshold, policy),
            HierarchyConfig::paper_trace_cache(),
        )
    }

    /// The paper's headline fetch-rate configuration: promotion at 64
    /// with unregulated packing.
    #[must_use]
    pub fn headline_fetch() -> SimConfig {
        SimConfig::promotion_packing(64, PackingPolicy::Unregulated)
    }

    /// The paper's headline performance configuration: promotion at 64
    /// with cost-regulated packing (Figure 11).
    #[must_use]
    pub fn headline_perf() -> SimConfig {
        SimConfig::promotion_packing(64, PackingPolicy::CostRegulated)
    }

    /// Switches to the perfect-memory-disambiguation core (§6).
    #[must_use]
    pub fn with_perfect_disambiguation(mut self) -> SimConfig {
        self.engine = EngineConfig::paper_perfect();
        self
    }

    /// Overrides the dynamic-instruction budget.
    #[must_use]
    pub fn with_max_insts(mut self, max_insts: u64) -> SimConfig {
        self.max_insts = max_insts;
        self
    }

    /// Disables wrong-path modeling (faster, slightly optimistic).
    #[must_use]
    pub fn without_wrong_path(mut self) -> SimConfig {
        self.model_wrong_path = false;
        self
    }

    /// Replaces dynamic promotion with a static (profile-guided) table.
    #[must_use]
    pub fn with_static_promotion(mut self, table: StaticPromotionTable) -> SimConfig {
        self.front_end.promotion = None;
        self.static_promotion = Some(table);
        self
    }

    /// Uses a finite return-address stack and real return prediction
    /// instead of the paper's ideal RAS.
    #[must_use]
    pub fn with_finite_ras(mut self, depth: usize) -> SimConfig {
        self.front_end.ras_depth = Some(depth);
        self.ideal_returns = false;
        self
    }

    /// Disables partial matching (a diverging trace line supplies only
    /// its first fetch block).
    #[must_use]
    pub fn without_partial_matching(mut self) -> SimConfig {
        self.front_end.partial_matching = false;
        self
    }

    /// Disables inactive issue (off-path blocks are discarded instead of
    /// issued and salvaged).
    #[must_use]
    pub fn without_inactive_issue(mut self) -> SimConfig {
        self.front_end.inactive_issue = false;
        self
    }

    /// Enables trace-cache path associativity.
    #[must_use]
    pub fn with_path_associativity(mut self) -> SimConfig {
        if let Some(tc) = &mut self.front_end.trace_cache {
            *tc = tc.with_path_assoc();
        }
        self
    }

    /// Attaches a fault-injection plan. The sanitizer is forced on —
    /// it is the detection half of the quarantine/recovery machinery —
    /// so fault runs behave identically in debug and release builds.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> SimConfig {
        // A no-fault plan must leave the configuration (label, sanitizer
        // setting, report shape) bit-identical to never attaching one.
        if plan.is_none() {
            self.fault_plan = None;
            return self;
        }
        self.front_end.sanitize = true;
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a per-branch promotion plan (`tw analyze` output). The
    /// plan's threshold overrides and never-promote verdicts are
    /// installed into the bias table at run start; configurations
    /// without dynamic promotion ignore the plan (the report still
    /// records its provenance). The label gains a `+plan` suffix so
    /// result caches keyed on labels never conflate planned and
    /// unplanned runs.
    #[must_use]
    pub fn with_promotion_plan(mut self, plan: PromotionPlan) -> SimConfig {
        self.promotion_plan = Some(plan);
        self
    }

    /// Fast-forwards `skip` instructions functionally before timing
    /// attaches (see [`ExecutionMode::FastForward`]).
    #[must_use]
    pub fn with_fast_forward(mut self, skip: u64) -> SimConfig {
        self.mode = ExecutionMode::FastForward { skip };
        self
    }

    /// Enables SMARTS-style sampling (see [`ExecutionMode::Sample`]).
    ///
    /// # Panics
    ///
    /// Panics if `measure` is zero or `warmup + measure` exceeds
    /// `period`; the CLI validates user input before calling this.
    #[must_use]
    pub fn with_sampling(mut self, warmup: u64, measure: u64, period: u64) -> SimConfig {
        assert!(measure > 0, "sampling measure window must be non-zero");
        assert!(
            warmup
                .checked_add(measure)
                .is_some_and(|used| used <= period),
            "sampling window overflows the period: warmup {warmup} + measure {measure} > period {period}"
        );
        self.mode = ExecutionMode::Sample {
            warmup,
            measure,
            period,
        };
        self
    }

    /// A short label for tables ("icache", "tc", "tc+promo64+unreg", …).
    ///
    /// The label uniquely identifies the configuration (non-default
    /// geometries are spelled out) — experiment runners key result
    /// caches on it.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = self.front_end.label();
        if let Some(tc) = &self.front_end.trace_cache {
            if tc.entries != 2048 {
                label.push_str(&format!("+tc{}", tc.entries));
            }
        }
        if let Some(p) = &self.front_end.promotion {
            if p.bias.entries != 8192 || !p.bias.tagged {
                label.push_str(&format!(
                    "+bias{}{}",
                    p.bias.entries,
                    if p.bias.tagged { "" } else { "u" }
                ));
            }
        }
        if self.static_promotion.is_some() {
            label.push_str("+static");
        }
        if !self.front_end.partial_matching {
            label.push_str("+nopm");
        }
        if !self.front_end.inactive_issue {
            label.push_str("+noii");
        }
        if self.front_end.trace_cache.is_some_and(|tc| tc.path_assoc) {
            label.push_str("+passoc");
        }
        if let Some(d) = self.front_end.ras_depth {
            label.push_str(&format!("+ras{d}"));
        }
        if self.engine.perfect_disambiguation {
            label.push_str("+perfmem");
        }
        if let Some(plan) = &self.fault_plan {
            label.push('+');
            label.push_str(&plan.label());
        }
        if self.promotion_plan.is_some() {
            label.push_str("+plan");
        }
        match self.mode {
            ExecutionMode::FullTiming => {}
            ExecutionMode::FastForward { skip } => {
                label.push_str(&format!("+ff{skip}"));
            }
            ExecutionMode::Sample {
                warmup,
                measure,
                period,
            } => {
                label.push_str(&format!("+sample{measure}/{period}w{warmup}"));
            }
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_select_consistent_hierarchies() {
        assert_eq!(
            SimConfig::icache().hierarchy.icache.capacity_bytes(),
            128 * 1024
        );
        assert_eq!(
            SimConfig::baseline().hierarchy.icache.capacity_bytes(),
            4 * 1024
        );
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::headline_perf()
            .with_perfect_disambiguation()
            .with_max_insts(5);
        assert!(c.engine.perfect_disambiguation);
        assert_eq!(c.max_insts, 5);
        assert!(c.label().contains("perfmem"));
    }
}
