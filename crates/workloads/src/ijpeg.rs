//! `ijpeg`: integer 8×8 DCT and quantization over a synthetic image.
//!
//! Mirrors SPECint95 `132.ijpeg`: dense, highly biased nested loops with
//! large basic blocks (the inner product is fully unrolled, as a compiler
//! would) and a data-dependent quantization branch.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, if_cond, repeat_and_halt};
use crate::workload::Workload;

const WIDTH: usize = 64;
const HEIGHT: usize = 64;

const IMG: i32 = 0x100;
const DCTM: i32 = IMG + (WIDTH * HEIGHT) as i32;
const TMP: i32 = DCTM + 64;
const COEF: i32 = TMP + 64;
const QTAB: i32 = COEF + 64;
/// Result cells: count of non-zero coefficients, and a checksum.
const OUT_NONZERO: i32 = QTAB + 64;
const OUT_SUM: i32 = OUT_NONZERO + 1;

/// Fixed-point (scaled by 64) "DCT" basis matrix: a deterministic
/// cosine-ish integer matrix.
fn dct_matrix() -> Vec<u64> {
    let mut m = Vec::with_capacity(64);
    for u in 0..8i64 {
        for x in 0..8i64 {
            // Integer approximation of cos((2x+1)u*pi/16) * 64.
            let phase = ((2 * x + 1) * u) % 32;
            let val = match phase {
                0..=3 => 60 - phase * 8,
                4..=11 => 28 - (phase - 4) * 8,
                12..=19 => -36, // flat trough of the approximation
                _ => -36 + (phase - 20) * 8,
            };
            m.push(val as u64); // two's complement via u64
        }
    }
    m
}

fn quant_table() -> Vec<u64> {
    (0..64u64).map(|i| 8 + (i % 8) * 4 + (i / 8) * 4).collect()
}

/// Reference implementation for validation: returns (nonzero, checksum).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(img: &[u64]) -> (u64, u64) {
    let m: Vec<i64> = dct_matrix().iter().map(|&x| x as i64).collect();
    let q: Vec<i64> = quant_table().iter().map(|&x| x as i64).collect();
    let mut nonzero = 0u64;
    let mut sum = 0u64;
    for by in 0..HEIGHT / 8 {
        for bx in 0..WIDTH / 8 {
            // Load the block.
            let mut blk = [0i64; 64];
            for y in 0..8 {
                for x in 0..8 {
                    blk[y * 8 + x] = img[(by * 8 + y) * WIDTH + bx * 8 + x] as i64 - 128;
                }
            }
            // tmp = M * blk
            let mut tmp = [0i64; 64];
            for u in 0..8 {
                for x in 0..8 {
                    let mut acc = 0i64;
                    for k in 0..8 {
                        acc += m[u * 8 + k] * blk[k * 8 + x];
                    }
                    tmp[u * 8 + x] = acc >> 6;
                }
            }
            // coef = tmp * M^T
            for u in 0..8 {
                for v in 0..8 {
                    let mut acc = 0i64;
                    for k in 0..8 {
                        acc += tmp[u * 8 + k] * m[v * 8 + k];
                    }
                    let c = (acc >> 6) / q[u * 8 + v];
                    if c != 0 {
                        nonzero += 1;
                        sum = sum.wrapping_add(c as u64);
                    }
                }
            }
        }
    }
    (nonzero, sum)
}

/// Emits the fully unrolled 8-term multiply-accumulate:
/// `acc = sum_k mem[a_base + a_off(k)] * mem[b_base + b_off(k)] >> 6`.
fn unrolled_dot(
    b: &mut ProgramBuilder,
    acc: Reg,
    a_base: Reg,
    b_base: Reg,
    a_stride: i32,
    b_stride: i32,
) {
    b.li(acc, 0);
    for k in 0..8 {
        b.load(Reg::T6, a_base, k * a_stride);
        b.load(Reg::T7, b_base, k * b_stride);
        b.mul(Reg::T6, Reg::T6, Reg::T7);
        b.add(acc, acc, Reg::T6);
    }
    b.alui(tc_isa::AluOp::Sra, acc, acc, 6);
}

pub(crate) fn build(scale: u32) -> Workload {
    let img = data::image(0x1A6E, WIDTH, HEIGHT);

    let mut b = ProgramBuilder::new();
    // S0=IMG, S1=DCTM, S2=TMP, S3=COEF, S4=QTAB, S5=nonzero, S6=sum,
    // S7=block base, S8/S9 block loop counters.
    b.li(Reg::S1, DCTM)
        .li(Reg::S2, TMP)
        .li(Reg::S3, COEF)
        .li(Reg::S4, QTAB);

    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        b.li(Reg::S5, 0).li(Reg::S6, 0);
        // for by in 0..8, bx in 0..8 (blocks)
        b.li(Reg::S8, 0).li(Reg::T11, (HEIGHT / 8) as i32);
        for_lt(b, Reg::S8, Reg::T11, |b| {
            b.li(Reg::S9, 0);
            let bx_lim = Reg::T8;
            b.li(bx_lim, (WIDTH / 8) as i32);
            for_lt(b, Reg::S9, bx_lim, |b| {
                // S7 = &img[(by*8)*W + bx*8] - 128 handling happens inline.
                b.muli(Reg::S7, Reg::S8, (8 * WIDTH) as i32);
                b.muli(Reg::T0, Reg::S9, 8);
                b.add(Reg::S7, Reg::S7, Reg::T0);
                b.addi(Reg::S7, Reg::S7, IMG);

                // Pass 1: TMP[u*8+x] = (sum_k M[u*8+k] * (img[k*W+x]-128)) >> 6
                // Loop u, x; inner product unrolled. To keep the unrolled
                // dot uniform, bias-subtract is folded: precompute row
                // pointer and subtract 128*colsum? Instead copy the block
                // minus 128 into COEF as scratch first (biased copy loop).
                b.li(Reg::T0, 0);
                let lim64 = Reg::T1;
                b.li(lim64, 64);
                for_lt(b, Reg::T0, lim64, |b| {
                    // y = i / 8, x = i % 8
                    b.shri(Reg::T2, Reg::T0, 3);
                    b.andi(Reg::T3, Reg::T0, 7);
                    b.muli(Reg::T2, Reg::T2, WIDTH as i32);
                    b.add(Reg::T2, Reg::T2, Reg::T3);
                    b.add(Reg::T2, Reg::T2, Reg::S7);
                    b.load(Reg::T2, Reg::T2, 0);
                    b.addi(Reg::T2, Reg::T2, -128);
                    b.add(Reg::T3, Reg::S3, Reg::T0); // COEF as block scratch
                    b.store(Reg::T2, Reg::T3, 0);
                });

                // u-x loops with unrolled dot products.
                b.li(Reg::T0, 0);
                let lim8a = Reg::T1;
                b.li(lim8a, 8);
                for_lt(b, Reg::T0, lim8a, |b| {
                    b.li(Reg::T2, 0);
                    let lim8b = Reg::T3;
                    b.li(lim8b, 8);
                    for_lt(b, Reg::T2, lim8b, |b| {
                        // a = &M[u*8], stride 1; b = &blk[x], stride 8.
                        b.muli(Reg::T4, Reg::T0, 8);
                        b.add(Reg::T4, Reg::T4, Reg::S1);
                        b.add(Reg::T5, Reg::S3, Reg::T2);
                        unrolled_dot(b, Reg::A0, Reg::T4, Reg::T5, 1, 8);
                        // TMP[u*8+x] = acc
                        b.muli(Reg::A1, Reg::T0, 8);
                        b.add(Reg::A1, Reg::A1, Reg::T2);
                        b.add(Reg::A1, Reg::A1, Reg::S2);
                        b.store(Reg::A0, Reg::A1, 0);
                    });
                });

                // Pass 2 + quantization: coef = (TMP * M^T) >> 6 / q
                b.li(Reg::T0, 0);
                let lim8c = Reg::T1;
                b.li(lim8c, 8);
                for_lt(b, Reg::T0, lim8c, |b| {
                    b.li(Reg::T2, 0);
                    let lim8d = Reg::T3;
                    b.li(lim8d, 8);
                    for_lt(b, Reg::T2, lim8d, |b| {
                        // a = &TMP[u*8], stride 1; b = &M[v*8], stride 1.
                        b.muli(Reg::T4, Reg::T0, 8);
                        b.add(Reg::T4, Reg::T4, Reg::S2);
                        b.muli(Reg::T5, Reg::T2, 8);
                        b.add(Reg::T5, Reg::T5, Reg::S1);
                        unrolled_dot(b, Reg::A0, Reg::T4, Reg::T5, 1, 1);
                        // c = acc / q[u*8+v]
                        b.muli(Reg::A1, Reg::T0, 8);
                        b.add(Reg::A1, Reg::A1, Reg::T2);
                        b.add(Reg::A2, Reg::A1, Reg::S4);
                        b.load(Reg::A2, Reg::A2, 0);
                        b.div(Reg::A0, Reg::A0, Reg::A2);
                        // if c != 0 { nonzero += 1; sum += c } — biased:
                        // most high-frequency coefficients quantize to 0.
                        if_cond(b, Cond::Ne, Reg::A0, Reg::ZERO, |b| {
                            b.addi(Reg::S5, Reg::S5, 1);
                            b.add(Reg::S6, Reg::S6, Reg::A0);
                        });
                    });
                });
            });
        });
        // Publish results.
        b.li(Reg::T0, OUT_NONZERO);
        b.store(Reg::S5, Reg::T0, 0);
        b.li(Reg::T0, OUT_SUM);
        b.store(Reg::S6, Reg::T0, 0);
    });

    let program = b.build().expect("ijpeg assembles");
    Workload::new(
        "ijpeg",
        program,
        1 << 16,
        vec![
            (IMG as u64, img),
            (DCTM as u64, dct_matrix()),
            (QTAB as u64, quant_table()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "ijpeg faulted: {:?}",
            interp.error()
        );
        let img = data::image(0x1A6E, WIDTH, HEIGHT);
        let (nonzero, sum) = reference(&img);
        assert_eq!(interp.machine().mem(OUT_NONZERO as u64), nonzero);
        assert_eq!(interp.machine().mem(OUT_SUM as u64), sum);
        assert!(nonzero > 0, "degenerate image: no coefficients");
    }

    #[test]
    fn blocks_are_large_and_branches_biased() {
        let stats = build(1).stream_stats(300_000);
        let avg = stats.avg_block_size().unwrap();
        assert!(avg > 8.0, "ijpeg should have large blocks, got {avg}");
    }
}
