//! The [`Workload`] container: a program plus its initial memory image.

use tc_isa::{Interpreter, Machine, Program, StreamStats};

/// A runnable benchmark: a validated program, a data-memory size, and an
/// initial memory image.
#[derive(Debug, Clone)]
pub struct Workload {
    name: &'static str,
    program: Program,
    mem_words: usize,
    image: Vec<(u64, Vec<u64>)>,
}

impl Workload {
    /// Assembles a workload.
    ///
    /// # Panics
    ///
    /// Panics if any image segment falls outside `mem_words`.
    #[must_use]
    pub fn new(
        name: &'static str,
        program: Program,
        mem_words: usize,
        image: Vec<(u64, Vec<u64>)>,
    ) -> Workload {
        for (base, words) in &image {
            assert!(
                *base as usize + words.len() <= mem_words,
                "{name}: image segment at {base:#x}+{} exceeds memory of {mem_words} words",
                words.len()
            );
        }
        Workload {
            name,
            program,
            mem_words,
            image,
        }
    }

    /// The benchmark's name (matches the paper's Table 1).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The static program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Data memory size in words.
    #[must_use]
    pub fn mem_words(&self) -> usize {
        self.mem_words
    }

    /// Builds a machine with the image loaded, ready to run.
    #[must_use]
    pub fn machine(&self) -> Machine {
        let mut m = Machine::new(self.program.entry(), self.mem_words);
        for (base, words) in &self.image {
            m.load_image(*base, words);
        }
        m
    }

    /// Creates a functional interpreter over this workload.
    #[must_use]
    pub fn interpreter(&self) -> Interpreter<'_> {
        Interpreter::with_machine(&self.program, self.machine())
    }

    /// Executes up to `max_insts` dynamic instructions and returns stream
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if the workload faults (synthetic benchmarks are expected to
    /// be well-formed).
    #[must_use]
    pub fn stream_stats(&self, max_insts: u64) -> StreamStats {
        let mut interp = self.interpreter();
        let mut stats = StreamStats::new();
        for rec in interp.by_ref().take(max_insts as usize) {
            stats.record(&rec);
        }
        if let Some(e) = interp.error() {
            panic!("workload {} faulted: {e}", self.name);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_isa::{ProgramBuilder, Reg};

    fn trivial() -> Program {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 1).halt();
        b.build().unwrap()
    }

    #[test]
    fn image_is_loaded_into_machine() {
        let w = Workload::new("t", trivial(), 128, vec![(10, vec![7, 8, 9])]);
        let m = w.machine();
        assert_eq!(m.mem(10), 7);
        assert_eq!(m.mem(12), 9);
        assert_eq!(m.mem(13), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds memory")]
    fn oversized_image_rejected() {
        let _ = Workload::new("t", trivial(), 8, vec![(6, vec![1, 2, 3])]);
    }

    #[test]
    fn stream_stats_counts_instructions() {
        let w = Workload::new("t", trivial(), 64, vec![]);
        assert_eq!(w.stream_stats(100).instructions, 1);
    }
}
