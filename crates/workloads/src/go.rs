//! `go`: influence mapping and capture search on a 19×19 board.
//!
//! Mirrors SPECint95 `099.go`: scans with neighbor bounds checks,
//! data-dependent branching on board contents, and a flood-fill group
//! search driven by an explicit work stack — branchy, hard-to-predict
//! code.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, if_cond, repeat_and_halt};
use crate::workload::Workload;

const SIZE: i64 = 19;
const POINTS: i64 = SIZE * SIZE;

const BOARD: i32 = 0x100;
const INF: i32 = BOARD + POINTS as i32;
const VISITED: i32 = INF + POINTS as i32;
const STACK: i32 = VISITED + POINTS as i32;
/// Results: influence checksum, group count, liberty total.
const OUT_INF: i32 = STACK + 512;
const OUT_GROUPS: i32 = OUT_INF + 1;
const OUT_LIBS: i32 = OUT_GROUPS + 1;

/// Reference implementation: returns (influence checksum, groups, libs).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(board: &[u64]) -> (u64, u64, u64) {
    let size = SIZE as usize;
    let mut inf = vec![0i64; size * size];
    for p in 0..size * size {
        let stone = board[p];
        if stone == 0 {
            continue;
        }
        let w: i64 = if stone == 1 { 4 } else { -4 };
        let (x, y) = (p % size, p / size);
        inf[p] += w * 2;
        if x > 0 {
            inf[p - 1] += w;
        }
        if x + 1 < size {
            inf[p + 1] += w;
        }
        if y > 0 {
            inf[p - size] += w;
        }
        if y + 1 < size {
            inf[p + size] += w;
        }
    }
    let checksum = inf
        .iter()
        .fold(0u64, |a, &v| a.wrapping_mul(31).wrapping_add(v as u64));

    // Flood fill groups, counting liberties.
    let mut visited = vec![false; size * size];
    let mut groups = 0u64;
    let mut libs = 0u64;
    for start in 0..size * size {
        if board[start] == 0 || visited[start] {
            continue;
        }
        groups += 1;
        let color = board[start];
        let mut stack = vec![start];
        visited[start] = true;
        while let Some(p) = stack.pop() {
            let (x, y) = (p % size, p / size);
            let neighbors = [
                (x > 0, p.wrapping_sub(1)),
                (x + 1 < size, p + 1),
                (y > 0, p.wrapping_sub(size)),
                (y + 1 < size, p + size),
            ];
            for (ok, q) in neighbors {
                if !ok {
                    continue;
                }
                if board[q] == 0 {
                    libs += 1; // counted with multiplicity, as the asm does
                } else if board[q] == color && !visited[q] {
                    visited[q] = true;
                    stack.push(q);
                }
            }
        }
    }
    (checksum, groups, libs)
}

/// Emits neighbor processing for the influence pass. `p`=point, `x`/`y`
/// precomputed, `w`=weight; clobbers T4..T6.
fn influence_neighbor(
    b: &mut ProgramBuilder,
    cond: Cond,
    lhs: Reg,
    rhs: Reg,
    p: Reg,
    delta: i32,
    w: Reg,
) {
    if_cond(b, cond, lhs, rhs, |b| {
        b.addi(Reg::T4, p, delta);
        b.addi(Reg::T4, Reg::T4, INF);
        b.load(Reg::T5, Reg::T4, 0);
        b.add(Reg::T5, Reg::T5, w);
        b.store(Reg::T5, Reg::T4, 0);
    });
}

pub(crate) fn build(scale: u32) -> Workload {
    let board = data::board(0x60BA, SIZE as usize, 35);

    let mut b = ProgramBuilder::new();
    // S0..: S0=p loop var, S1=POINTS, S2=x, S3=y, S4=w, S5=inf checksum,
    // S6=groups, S7=libs, S8=stack ptr, S9=color. A3=SIZE, A4=SIZE-1.
    b.li(Reg::A3, SIZE as i32).li(Reg::A4, (SIZE - 1) as i32);

    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        // Clear influence + visited.
        b.li(Reg::T0, 0).li(Reg::T1, POINTS as i32);
        for_lt(b, Reg::T0, Reg::T1, |b| {
            b.addi(Reg::T2, Reg::T0, INF);
            b.store(Reg::ZERO, Reg::T2, 0);
            b.addi(Reg::T2, Reg::T0, VISITED);
            b.store(Reg::ZERO, Reg::T2, 0);
        });

        // --- Influence pass ---
        b.li(Reg::S0, 0).li(Reg::S1, POINTS as i32);
        for_lt(b, Reg::S0, Reg::S1, |b| {
            b.addi(Reg::T0, Reg::S0, BOARD);
            b.load(Reg::T0, Reg::T0, 0); // stone
            if_cond(b, Cond::Ne, Reg::T0, Reg::ZERO, |b| {
                // w = stone == 1 ? 4 : -4
                b.li(Reg::S4, 4);
                let skip = b.new_label("w_neg");
                b.li(Reg::T1, 1);
                b.beq(Reg::T0, Reg::T1, skip);
                b.li(Reg::S4, -4);
                b.bind(skip).unwrap();
                // x = p % 19, y = p / 19
                b.li(Reg::T1, SIZE as i32);
                b.rem(Reg::S2, Reg::S0, Reg::T1);
                b.div(Reg::S3, Reg::S0, Reg::T1);
                // inf[p] += 2w
                b.addi(Reg::T2, Reg::S0, INF);
                b.load(Reg::T3, Reg::T2, 0);
                b.add(Reg::T3, Reg::T3, Reg::S4);
                b.add(Reg::T3, Reg::T3, Reg::S4);
                b.store(Reg::T3, Reg::T2, 0);
                // Neighbors with bounds checks (biased branches: interior
                // points dominate).
                influence_neighbor(b, Cond::Ne, Reg::S2, Reg::ZERO, Reg::S0, -1, Reg::S4);
                influence_neighbor(b, Cond::Lt, Reg::S2, Reg::A4, Reg::S0, 1, Reg::S4);
                influence_neighbor(
                    b,
                    Cond::Ne,
                    Reg::S3,
                    Reg::ZERO,
                    Reg::S0,
                    -(SIZE as i32),
                    Reg::S4,
                );
                influence_neighbor(b, Cond::Lt, Reg::S3, Reg::A4, Reg::S0, SIZE as i32, Reg::S4);
            });
        });

        // Influence checksum.
        b.li(Reg::S5, 0);
        b.li(Reg::T0, 0).li(Reg::T1, POINTS as i32);
        for_lt(b, Reg::T0, Reg::T1, |b| {
            b.addi(Reg::T2, Reg::T0, INF);
            b.load(Reg::T2, Reg::T2, 0);
            b.muli(Reg::S5, Reg::S5, 31);
            b.add(Reg::S5, Reg::S5, Reg::T2);
        });
        b.li(Reg::T0, OUT_INF);
        b.store(Reg::S5, Reg::T0, 0);

        // --- Flood-fill group search ---
        b.li(Reg::S6, 0).li(Reg::S7, 0);
        b.li(Reg::S0, 0);
        for_lt(b, Reg::S0, Reg::S1, |b| {
            b.addi(Reg::T0, Reg::S0, BOARD);
            b.load(Reg::S9, Reg::T0, 0); // color
            b.addi(Reg::T0, Reg::S0, VISITED);
            b.load(Reg::T1, Reg::T0, 0);
            let skip_seed = b.new_label("skip_seed");
            b.beqz(Reg::S9, skip_seed);
            b.bnez(Reg::T1, skip_seed);
            {
                b.addi(Reg::S6, Reg::S6, 1); // groups += 1
                                             // visited[start] = 1; push start.
                b.li(Reg::T2, 1);
                b.store(Reg::T2, Reg::T0, 0);
                b.li(Reg::S8, STACK);
                b.store(Reg::S0, Reg::S8, 0);
                b.addi(Reg::S8, Reg::S8, 1);
                // while stack nonempty
                let pop_done = b.new_label("pop_done");
                let pop_top = b.here("pop_top");
                b.li(Reg::T2, STACK);
                b.branch(Cond::Geu, Reg::T2, Reg::S8, pop_done);
                b.addi(Reg::S8, Reg::S8, -1);
                b.load(Reg::A0, Reg::S8, 0); // p
                                             // x, y
                b.rem(Reg::A1, Reg::A0, Reg::A3);
                b.div(Reg::A2, Reg::A0, Reg::A3);
                // Four neighbors: (cond, delta) pairs.
                for (cond, lhs, delta) in [
                    (Cond::Ne, Reg::A1, -1i32),
                    (Cond::Lt, Reg::A1, 1),
                    (Cond::Ne, Reg::A2, -(SIZE as i32)),
                    (Cond::Lt, Reg::A2, SIZE as i32),
                ] {
                    let rhs = if matches!(cond, Cond::Ne) {
                        Reg::ZERO
                    } else {
                        Reg::A4
                    };
                    if_cond(b, cond, lhs, rhs, |b| {
                        b.addi(Reg::T3, Reg::A0, delta); // q
                        b.addi(Reg::T4, Reg::T3, BOARD);
                        b.load(Reg::T5, Reg::T4, 0); // board[q]
                        let after = b.new_label("after_nb");
                        let not_empty = b.new_label("not_empty");
                        b.bnez(Reg::T5, not_empty);
                        b.addi(Reg::S7, Reg::S7, 1); // liberty
                        b.jump(after);
                        b.bind(not_empty).unwrap();
                        b.bne(Reg::T5, Reg::S9, after); // other color
                        b.addi(Reg::T6, Reg::T3, VISITED);
                        b.load(Reg::T7, Reg::T6, 0);
                        b.bnez(Reg::T7, after); // already seen
                        b.li(Reg::T7, 1);
                        b.store(Reg::T7, Reg::T6, 0);
                        b.store(Reg::T3, Reg::S8, 0); // push q
                        b.addi(Reg::S8, Reg::S8, 1);
                        b.bind(after).unwrap();
                    });
                }
                b.jump(pop_top);
                b.bind(pop_done).unwrap();
            }
            b.bind(skip_seed).unwrap();
        });
        b.li(Reg::T0, OUT_GROUPS);
        b.store(Reg::S6, Reg::T0, 0);
        b.li(Reg::T0, OUT_LIBS);
        b.store(Reg::S7, Reg::T0, 0);
    });

    let program = b.build().expect("go assembles");
    Workload::new("go", program, 1 << 14, vec![(BOARD as u64, board)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(interp.error().is_none(), "go faulted: {:?}", interp.error());
        let board = data::board(0x60BA, SIZE as usize, 35);
        let (inf, groups, libs) = reference(&board);
        assert_eq!(interp.machine().mem(OUT_INF as u64), inf);
        assert_eq!(interp.machine().mem(OUT_GROUPS as u64), groups);
        assert_eq!(interp.machine().mem(OUT_LIBS as u64), libs);
        assert!(groups > 10, "board too sparse: {groups} groups");
    }

    #[test]
    fn branch_heavy_profile() {
        let stats = build(2).stream_stats(400_000);
        assert!(stats.cond_branch_ratio() > 0.12, "go should be branchy");
    }
}
