//! `gnuplot`: fixed-point curve evaluation, clipping, and histogramming.
//!
//! Mirrors gnuplot's plotting loops. The distinctive property (the paper
//! singles `plot` out for frequent *promotion faults*) is run-structured
//! branches: within one curve a clipping branch is near-perfectly biased,
//! but the bias *direction flips between curves* — so a branch promoted
//! during one curve faults at the start of the next.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, if_cond, if_else, repeat_and_halt};
use crate::workload::Workload;

const NCURVES: usize = 24;
/// Points evaluated per curve — long enough for a threshold-64 promotion
/// to trigger mid-curve.
const NPOINTS: i64 = 400;
const NBUCKETS: i64 = 8;

const COEFFS: i32 = 0x100; // per curve: a, b, c, offset
const HIST: i32 = COEFFS + (NCURVES * 4) as i32;
const OUT_CLIPPED: i32 = HIST + NBUCKETS as i32;
const OUT_CHECK: i32 = OUT_CLIPPED + 1;

/// Curve coefficients: alternate curves sit mostly above / mostly below
/// the clip line, flipping the clip-branch bias per curve.
pub(crate) fn coeff_image() -> Vec<u64> {
    let raw = data::uniform_words(0x1907, NCURVES * 3, 12);
    let mut out = Vec::with_capacity(NCURVES * 4);
    for c in 0..NCURVES {
        let a = raw[c * 3] + 1; // 1..12
        let b = raw[c * 3 + 1];
        let q = raw[c * 3 + 2];
        // Offset: the raw value before the offset lands in [0, 50000).
        // Odd curves sit mostly below the clip line, even curves mostly
        // above, with ~2% of points crossing it — a strongly biased
        // branch whose direction flips between curves (and occasionally
        // mid-curve), the promotion-fault-prone pattern the paper
        // observes in `plot`.
        let offset: i64 = if c % 2 == 0 { -500 } else { -49_500 };
        out.push(a);
        out.push(b);
        out.push(q);
        out.push(offset as u64);
    }
    out
}

/// Reference: returns (clipped count, histogram checksum).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(coeffs: &[u64]) -> (u64, u64) {
    let mut hist = [0u64; NBUCKETS as usize];
    let mut clipped = 0u64;
    for c in 0..NCURVES {
        let a = coeffs[c * 4] as i64;
        let b = coeffs[c * 4 + 1] as i64;
        let q = coeffs[c * 4 + 2] as i64;
        let offset = coeffs[c * 4 + 3] as i64;
        for x in 0..NPOINTS {
            // y = ((a*x + b)*x + q)*x/64 + offset  (fixed-point-ish)
            let y = (a * x + b) * x + q;
            let y = ((y * x) >> 6) % 50_000 + offset;
            // Clip at zero: biased within a curve, flips across curves.
            let y = if y < 0 {
                clipped += 1;
                0
            } else {
                y
            };
            // Bucket by magnitude: an if-ladder in the assembly.
            let bucket = match y {
                0 => 0,
                1..=999 => 1,
                1_000..=9_999 => 2,
                10_000..=29_999 => 3,
                30_000..=59_999 => 4,
                60_000..=89_999 => 5,
                90_000..=119_999 => 6,
                _ => 7,
            };
            hist[bucket] += 1;
        }
    }
    let check = hist
        .iter()
        .fold(0u64, |acc, &h| acc.wrapping_mul(131).wrapping_add(h));
    (clipped, check)
}

pub(crate) fn build(scale: u32) -> Workload {
    let coeffs = coeff_image();

    let mut b = ProgramBuilder::new();

    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        // Clear histogram; reset counters.
        b.li(Reg::T0, 0);
        let lim = Reg::T1;
        b.li(lim, NBUCKETS as i32);
        for_lt(b, Reg::T0, lim, |b| {
            b.addi(Reg::T2, Reg::T0, HIST);
            b.store(Reg::ZERO, Reg::T2, 0);
        });
        b.li(Reg::S8, 0); // clipped

        b.li(Reg::S0, 0); // curve index
        let curve_lim = Reg::T11;
        b.li(curve_lim, NCURVES as i32);
        for_lt(b, Reg::S0, curve_lim, |b| {
            // Load a, b, q, offset into S1..S4.
            b.shli(Reg::T0, Reg::S0, 2);
            b.addi(Reg::T0, Reg::T0, COEFFS);
            b.load(Reg::S1, Reg::T0, 0);
            b.load(Reg::S2, Reg::T0, 1);
            b.load(Reg::S3, Reg::T0, 2);
            b.load(Reg::S4, Reg::T0, 3);
            // Point loop: x in S5.
            b.li(Reg::S5, 0);
            let pt_lim = Reg::S6;
            b.li(pt_lim, NPOINTS as i32);
            for_lt(b, Reg::S5, pt_lim, |b| {
                // y = (a*x + b)*x + q
                b.mul(Reg::T0, Reg::S1, Reg::S5);
                b.add(Reg::T0, Reg::T0, Reg::S2);
                b.mul(Reg::T0, Reg::T0, Reg::S5);
                b.add(Reg::T0, Reg::T0, Reg::S3);
                // y = (y*x >> 6) % 50000 + offset
                b.mul(Reg::T0, Reg::T0, Reg::S5);
                b.alui(tc_isa::AluOp::Sra, Reg::T0, Reg::T0, 6);
                b.li(Reg::T1, 50_000);
                b.rem(Reg::T0, Reg::T0, Reg::T1);
                b.add(Reg::T0, Reg::T0, Reg::S4);
                // Clip at zero (the run-structured branch).
                if_cond(b, Cond::Lt, Reg::T0, Reg::ZERO, |b| {
                    b.addi(Reg::S8, Reg::S8, 1);
                    b.li(Reg::T0, 0);
                });
                // Bucket if-ladder.
                let bucket = Reg::T2;
                let done = b.new_label("bucket_done");
                let thresholds: [(i32, i32); 7] = [
                    (1, 0),
                    (1_000, 1),
                    (10_000, 2),
                    (30_000, 3),
                    (60_000, 4),
                    (90_000, 5),
                    (120_000, 6),
                ];
                for (limit, idx) in thresholds {
                    b.li(Reg::T3, limit);
                    let next = b.new_label("bucket_next");
                    b.branch(Cond::Ge, Reg::T0, Reg::T3, next);
                    b.li(bucket, idx);
                    b.jump(done);
                    b.bind(next).unwrap();
                }
                b.li(bucket, 7);
                b.bind(done).unwrap();
                // hist[bucket] += 1
                b.addi(Reg::T3, bucket, HIST);
                b.load(Reg::T4, Reg::T3, 0);
                b.addi(Reg::T4, Reg::T4, 1);
                b.store(Reg::T4, Reg::T3, 0);
            });
        });
        // Checksum.
        b.li(Reg::S7, 0);
        b.li(Reg::T0, 0);
        let lim2 = Reg::T1;
        b.li(lim2, NBUCKETS as i32);
        for_lt(b, Reg::T0, lim2, |b| {
            b.addi(Reg::T2, Reg::T0, HIST);
            b.load(Reg::T2, Reg::T2, 0);
            b.muli(Reg::S7, Reg::S7, 131);
            b.add(Reg::S7, Reg::S7, Reg::T2);
        });
        b.li(Reg::T0, OUT_CLIPPED);
        b.store(Reg::S8, Reg::T0, 0);
        b.li(Reg::T0, OUT_CHECK);
        b.store(Reg::S7, Reg::T0, 0);

        // Keep if_else linked in for shape variety: final sanity fold.
        if_else(
            b,
            Cond::Ltu,
            Reg::S7,
            Reg::S8,
            |b| {
                b.addi(Reg::S7, Reg::S7, 1);
            },
            |b| {
                b.addi(Reg::S8, Reg::S8, 1);
            },
        );
    });

    let program = b.build().expect("plot assembles");
    Workload::new("gnuplot", program, 1 << 13, vec![(COEFFS as u64, coeffs)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "plot faulted: {:?}",
            interp.error()
        );
        let (clipped, check) = reference(&coeff_image());
        assert_eq!(interp.machine().mem(OUT_CLIPPED as u64), clipped);
        assert_eq!(interp.machine().mem(OUT_CHECK as u64), check);
    }

    #[test]
    fn clip_branch_flips_bias_between_curves() {
        // Negative-offset curves should clip almost everything; positive
        // ones almost nothing. Count clip per curve in the reference.
        let coeffs = coeff_image();
        let mut per_curve = Vec::new();
        for c in 0..NCURVES {
            let mut one = coeffs.clone();
            // Zero all other curves' point counts by evaluating alone.
            one.rotate_left(c * 4);
            let solo: Vec<u64> = one[..4].to_vec();
            let mut padded = solo.clone();
            padded.extend(vec![0u64; (NCURVES - 1) * 4]);
            // Count clips for just this curve: offset decides everything.
            let (clipped, _) = reference(&padded);
            // Remove the contribution of the zeroed curves: their y =
            // (0*x+0)*x+0 -> 0 % 50000 + 0 = 0, never negative.
            per_curve.push(clipped);
        }
        let heavy = per_curve
            .iter()
            .filter(|&&c| c > (NPOINTS as u64 * 8) / 10)
            .count();
        let light = per_curve
            .iter()
            .filter(|&&c| c < (NPOINTS as u64 * 2) / 10)
            .count();
        assert!(
            heavy >= NCURVES / 3,
            "no heavily-clipped curves: {per_curve:?}"
        );
        assert!(light >= NCURVES / 3, "no lightly-clipped curves");
    }
}
