//! The benchmark suite: synthetic equivalents of the paper's Table 1.
//!
//! The paper evaluated on SPECint95 plus common UNIX applications
//! (gnuchess, ghostscript, pgp, python, gnuplot, sim-outorder, tex). Those
//! binaries and inputs are not available here, so — per the substitution
//! policy in `DESIGN.md` — each benchmark is a from-scratch mini-program
//! written in the `tc-isa` instruction set that performs a *real*
//! computation of the same character as the original:
//!
//! | Benchmark | Kernel implemented here | Control-flow character |
//! |---|---|---|
//! | `compress` | LZW-style hash-chained dictionary compressor | biased probe loops, hash hit/miss branches |
//! | `gcc` | table-driven lexer + state-machine parser over synthetic source, many handler routines | large code footprint, branchy, mixed bias |
//! | `go` | influence map + flood-fill capture search on a 19×19 board | data-dependent branches, neighbor bounds checks |
//! | `ijpeg` | integer 8×8 DCT + quantization over an image | dense biased loops, large basic blocks |
//! | `li` | cons-cell list interpreter: recursive map/sum/reverse | deep call/return, tag-dispatch branches |
//! | `m88ksim` | fetch/decode/dispatch interpreter of a guest RISC program | jump-table dispatch, periodic patterns |
//! | `perl` | Boyer-Moore-Horspool text search + word hashing | skip-table loops, early-exit compares |
//! | `vortex` | B-tree object store: insert/lookup transactions | binary-search compares, pointer chasing, call-heavy |
//! | `gnuchess` | negamax game-tree search with alpha-beta pruning | recursion, unpredictable pruning branches |
//! | `ghostscript` | Bresenham rasterizer + span fill over random paths | error-term branches, biased fill loops |
//! | `pgp` | multi-word modular exponentiation (square-and-multiply) | carry-chain branches, key-bit branches |
//! | `python` | stack-based bytecode VM with indirect dispatch | indirect jumps, short handler blocks |
//! | `gnuplot` | fixed-point polynomial evaluation + clipping | run-structured branches that flip between segments (promotion-fault prone) |
//! | `sim-outorder` | discrete-event queue simulator with hashing | mixed bias, queue bounds checks |
//! | `tex` | trie hyphenation + greedy paragraph line breaking, many small routines | large footprint, varied trace paths |
//!
//! Inputs are generated with seeded RNGs ([`mod@data`]) so every run is
//! deterministic.
//!
//! # Example
//!
//! ```
//! use tc_workloads::Benchmark;
//!
//! let w = Benchmark::Compress.build();
//! let stats = w.stream_stats(100_000);
//! assert!(stats.instructions > 0);
//! assert!(stats.cond_branch_ratio() > 0.05);
//! ```

pub mod data;
pub mod rng;

mod family;
mod genfuncs;
mod kernels;
mod suite;
mod workload;

mod chess;
mod compress;
mod gcc;
mod go;
mod gs;
mod ijpeg;
mod li;
mod m88ksim;
mod perl;
mod pgp;
mod plot;
mod python;
mod ss;
mod tex;
mod vortex;

pub use family::{RvBench, WorkloadId};
pub use suite::Benchmark;
pub use workload::Workload;
