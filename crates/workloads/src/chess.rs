//! `gnuchess`: game-tree search with alpha-beta pruning.
//!
//! Mirrors gnuchess's search core: recursive negamax with alpha-beta
//! cutoffs. The pruning branches depend on move values flowing back up
//! the tree — the classic hard-to-predict branch pattern of game
//! programs — while move-loop and depth-check branches are biased.
//!
//! The game is a deterministic "take-away" variant whose evaluation mixes
//! the position hash, so scores (and therefore cutoffs) look irregular
//! without any randomness at runtime.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, repeat_and_halt};
use crate::workload::Workload;

const DEPTH: i64 = 7;
const NSTARTS: usize = 24;

const STARTS: i32 = 0x100;
const OUT_CHECK: i32 = STARTS + (NSTARTS * 2) as i32;
const OUT_NODES: i32 = OUT_CHECK + 1;

/// The evaluation function both implementations share.
fn eval(pile: i64, hash: i64) -> i64 {
    let mixed = (hash.wrapping_mul(2_654_435_761)) >> 13;
    (mixed & 63) - 32 + pile
}

/// Reference negamax; returns (score, nodes visited).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference_search(pile: i64, hash: i64) -> (i64, u64) {
    fn nega(pile: i64, hash: i64, depth: i64, mut alpha: i64, beta: i64, nodes: &mut u64) -> i64 {
        *nodes += 1;
        if depth == 0 || pile == 0 {
            return eval(pile, hash);
        }
        let mut best = -1_000_000;
        let max_take = pile.min(3);
        for m in 1..=max_take {
            let child = -nega(
                pile - m,
                hash.wrapping_mul(31).wrapping_add(m),
                depth - 1,
                -beta,
                -alpha,
                nodes,
            );
            if child > best {
                best = child;
            }
            if best > alpha {
                alpha = best;
            }
            if alpha >= beta {
                break;
            }
        }
        best
    }
    let mut nodes = 0;
    let score = nega(pile, hash, DEPTH, -1_000_000, 1_000_000, &mut nodes);
    (score, nodes)
}

pub(crate) fn start_states() -> Vec<u64> {
    let piles = data::uniform_words(0xC4E5, NSTARTS, 12);
    let hashes = data::uniform_words(0x51AB, NSTARTS, 1 << 24);
    let mut out = Vec::with_capacity(NSTARTS * 2);
    for i in 0..NSTARTS {
        out.push(piles[i] + 14); // piles 14..26
        out.push(hashes[i]);
    }
    out
}

pub(crate) fn build(scale: u32) -> Workload {
    let starts = start_states();

    let mut b = ProgramBuilder::new();
    // Global registers: S7 = node counter, A5 = eval multiplier constant.
    b.li(Reg::A5, 0x9e37_79b1_u32 as i32); // 2654435761 sign-extended

    let nega = b.new_label("nega");
    let start = b.new_label("start");
    b.jump(start);

    // --- fn nega(A0=pile, A1=hash, A2=depth, A3=alpha, A4=beta) -> A0 ---
    b.bind(nega).unwrap();
    b.addi(Reg::S7, Reg::S7, 1); // nodes += 1
                                 // Leaf?
    {
        let not_leaf = b.new_label("not_leaf");
        let leaf = b.new_label("leaf");
        b.beqz(Reg::A2, leaf);
        b.bnez(Reg::A0, not_leaf);
        b.bind(leaf).unwrap();
        // eval: ((hash * C) >> 13) & 63 - 32 + pile. The multiply must
        // match the reference's i64 wrapping semantics (it does: both
        // are 64-bit wrapping products of the same bit patterns).
        b.mul(Reg::T0, Reg::A1, Reg::A5);
        b.alui(tc_isa::AluOp::Sra, Reg::T0, Reg::T0, 13);
        b.andi(Reg::T0, Reg::T0, 63);
        b.addi(Reg::T0, Reg::T0, -32);
        b.add(Reg::A0, Reg::T0, Reg::A0);
        b.ret();
        b.bind(not_leaf).unwrap();
    }
    // Save state. S0=pile, S1=hash, S2=depth, S3=alpha, S4=beta,
    // S5=best, S6=m.
    b.push_regs(&[
        Reg::RA,
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
    ]);
    b.mv(Reg::S0, Reg::A0);
    b.mv(Reg::S1, Reg::A1);
    b.mv(Reg::S2, Reg::A2);
    b.mv(Reg::S3, Reg::A3);
    b.mv(Reg::S4, Reg::A4);
    b.li(Reg::S5, -1_000_000);
    // Move loop: m (S6) from 1 while m <= min(pile, 3); the bound is
    // checked per-iteration because T-registers don't survive recursion.
    b.li(Reg::S6, 1);
    {
        let loop_done = b.new_label("moves_done");
        let loop_top = b.here("moves_top");
        // m <= pile? m <= 3?
        b.branch(Cond::Lt, Reg::S0, Reg::S6, loop_done); // pile < m
        b.li(Reg::T1, 3);
        b.branch(Cond::Lt, Reg::T1, Reg::S6, loop_done); // 3 < m
                                                         // child = -nega(pile-m, hash*31+m, depth-1, -beta, -alpha)
        b.sub(Reg::A0, Reg::S0, Reg::S6);
        b.muli(Reg::A1, Reg::S1, 31);
        b.add(Reg::A1, Reg::A1, Reg::S6);
        b.addi(Reg::A2, Reg::S2, -1);
        b.sub(Reg::A3, Reg::ZERO, Reg::S4);
        b.sub(Reg::A4, Reg::ZERO, Reg::S3);
        b.call(nega);
        b.sub(Reg::T0, Reg::ZERO, Reg::A0); // child
                                            // best = max(best, child)
        {
            let no = b.new_label("no_best");
            b.branch(Cond::Ge, Reg::S5, Reg::T0, no);
            b.mv(Reg::S5, Reg::T0);
            b.bind(no).unwrap();
        }
        // alpha = max(alpha, best)
        {
            let no = b.new_label("no_alpha");
            b.branch(Cond::Ge, Reg::S3, Reg::S5, no);
            b.mv(Reg::S3, Reg::S5);
            b.bind(no).unwrap();
        }
        // if alpha >= beta: prune (the hard-to-predict branch).
        b.branch(Cond::Ge, Reg::S3, Reg::S4, loop_done);
        b.addi(Reg::S6, Reg::S6, 1);
        b.jump(loop_top);
        b.bind(loop_done).unwrap();
    }
    b.mv(Reg::A0, Reg::S5);
    b.pop_regs(&[
        Reg::RA,
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
    ]);
    b.ret();

    // --- Driver ---
    b.bind(start).unwrap();
    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        b.li(Reg::S7, 0); // nodes
        b.li(Reg::S8, 0); // checksum
        b.li(Reg::S9, 0); // state index
        let lim = Reg::T11;
        b.li(lim, NSTARTS as i32);
        for_lt(b, Reg::S9, lim, |b| {
            b.shli(Reg::T0, Reg::S9, 1);
            b.addi(Reg::T0, Reg::T0, STARTS);
            b.load(Reg::A0, Reg::T0, 0); // pile
            b.load(Reg::A1, Reg::T0, 1); // hash
            b.li(Reg::A2, DEPTH as i32);
            b.li(Reg::A3, -1_000_000);
            b.li(Reg::A4, 1_000_000);
            b.call(nega);
            // checksum = checksum*1000003 + score (two's complement)
            b.muli(Reg::S8, Reg::S8, 1_000_003);
            b.add(Reg::S8, Reg::S8, Reg::A0);
        });
        b.li(Reg::T0, OUT_CHECK);
        b.store(Reg::S8, Reg::T0, 0);
        b.li(Reg::T0, OUT_NODES);
        b.store(Reg::S7, Reg::T0, 0);
    });

    let program = b.build().expect("chess assembles");
    Workload::new("gnuchess", program, 1 << 14, vec![(STARTS as u64, starts)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "chess faulted: {:?}",
            interp.error()
        );
        let starts = start_states();
        let mut checksum = 0u64;
        let mut nodes = 0u64;
        for pair in starts.chunks_exact(2) {
            let (score, n) = reference_search(pair[0] as i64, pair[1] as i64);
            checksum = checksum.wrapping_mul(1_000_003).wrapping_add(score as u64);
            nodes += n;
        }
        assert_eq!(interp.machine().mem(OUT_CHECK as u64), checksum);
        assert_eq!(interp.machine().mem(OUT_NODES as u64), nodes);
        assert!(nodes > 1_000, "search too small: {nodes} nodes");
    }

    #[test]
    fn pruning_actually_happens() {
        // Without pruning a depth-7 ternary tree from pile 20+ would visit
        // far more nodes than alpha-beta does.
        let (_, nodes) = reference_search(20, 12345);
        assert!(nodes < 2_200, "no pruning evident: {nodes} nodes");
    }
}
