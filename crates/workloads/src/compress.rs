//! `compress`: an LZW-style dictionary compressor.
//!
//! Mirrors SPECint95 `129.compress`'s character: a tight loop over input
//! symbols, a hash-probe with chained collisions (hit/miss branches), and
//! dictionary growth. Input is skewed "text" so probe hit rates — and
//! therefore branch biases — resemble compressing real data.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, if_else, repeat_and_halt, while_cond};
use crate::workload::Workload;

/// Input length in symbols.
const INPUT_LEN: usize = 16 * 1024;
/// Input alphabet (symbol values `0..ALPHA`).
const ALPHA: u64 = 64;
/// Hash table size (power of two); sized for a worst-case load factor
/// well below 1 so linear probing always terminates.
const HASH_SIZE: i32 = 32 * 1024;

/// Word addresses of the data structures.
const INPUT: i32 = 0x100;
const HKEY: i32 = INPUT + INPUT_LEN as i32;
const HVAL: i32 = HKEY + HASH_SIZE;
/// Result cell: number of codes emitted (checked by tests).
const OUT_COUNT: i32 = HVAL + HASH_SIZE;

/// Reference implementation used by tests to validate the assembly.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference_emitted(input: &[u64]) -> u64 {
    let mut hkey = vec![0u64; HASH_SIZE as usize];
    let mut hval = vec![0u64; HASH_SIZE as usize];
    let mask = (HASH_SIZE - 1) as u64;
    let mut code = input[0];
    let mut next_code = ALPHA;
    let mut emitted = 0u64;
    for &sym in &input[1..] {
        let key = code * 256 + sym + 1;
        let mut h = (key.wrapping_mul(2_654_435_761)) & mask;
        while hkey[h as usize] != 0 && hkey[h as usize] != key {
            h = (h + 1) & mask;
        }
        if hkey[h as usize] == key {
            code = hval[h as usize];
        } else {
            emitted += 1;
            hkey[h as usize] = key;
            hval[h as usize] = next_code;
            next_code += 1;
            code = sym;
        }
    }
    emitted + 1
}

pub(crate) fn build(scale: u32) -> Workload {
    let input = data::skewed_symbols(0xC0_4D, INPUT_LEN, ALPHA);

    let mut b = ProgramBuilder::new();
    // S0=input base, S1=input len, S2=hkey base, S3=hval base, S4=mask,
    // S5=code, S6=next_code, S7=emitted, T9/T10 outer loop.
    b.li(Reg::S0, INPUT).li(Reg::S1, INPUT_LEN as i32);
    b.li(Reg::S2, HKEY)
        .li(Reg::S3, HVAL)
        .li(Reg::S4, HASH_SIZE - 1);

    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        // Clear the dictionary (biased store loop).
        b.li(Reg::T0, 0).li(Reg::T1, HASH_SIZE);
        for_lt(b, Reg::T0, Reg::T1, |b| {
            b.add(Reg::T2, Reg::S2, Reg::T0);
            b.store(Reg::ZERO, Reg::T2, 0);
        });
        // code = input[0]; next_code = ALPHA; emitted = 0.
        b.load(Reg::S5, Reg::S0, 0);
        b.li(Reg::S6, ALPHA as i32);
        b.li(Reg::S7, 0);

        // for i in 1..len
        b.li(Reg::T0, 1);
        for_lt(b, Reg::T0, Reg::S1, |b| {
            // sym = input[i]
            b.add(Reg::T1, Reg::S0, Reg::T0);
            b.load(Reg::T1, Reg::T1, 0);
            // key = code*256 + sym + 1
            b.shli(Reg::T2, Reg::S5, 8);
            b.add(Reg::T2, Reg::T2, Reg::T1);
            b.addi(Reg::T2, Reg::T2, 1);
            // h = (key * 2654435761) & mask
            // 2654435761 (Fibonacci hashing constant). `li` sign-extends,
            // but the product's low 32 bits — all the mask keeps — are
            // unaffected by the sign extension.
            b.li(Reg::T3, 0x9e37_79b1_u32 as i32);
            b.mul(Reg::T3, Reg::T2, Reg::T3);
            b.and(Reg::T3, Reg::T3, Reg::S4);
            // Linear probe: while hkey[h] != 0 && hkey[h] != key: h = (h+1) & mask
            let probe_done = b.new_label("probe_done");
            let probe_top = b.here("probe_top");
            b.add(Reg::T4, Reg::S2, Reg::T3);
            b.load(Reg::T5, Reg::T4, 0); // T5 = hkey[h]
            b.beqz(Reg::T5, probe_done);
            b.beq(Reg::T5, Reg::T2, probe_done);
            b.addi(Reg::T3, Reg::T3, 1);
            b.and(Reg::T3, Reg::T3, Reg::S4);
            b.jump(probe_top);
            b.bind(probe_done).unwrap();
            // if hkey[h] == key { code = hval[h] } else { insert }
            if_else(
                b,
                Cond::Eq,
                Reg::T5,
                Reg::T2,
                |b| {
                    b.add(Reg::T6, Reg::S3, Reg::T3);
                    b.load(Reg::S5, Reg::T6, 0);
                },
                |b| {
                    b.addi(Reg::S7, Reg::S7, 1); // emitted += 1
                    b.add(Reg::T6, Reg::S2, Reg::T3);
                    b.store(Reg::T2, Reg::T6, 0); // hkey[h] = key
                    b.add(Reg::T6, Reg::S3, Reg::T3);
                    b.store(Reg::S6, Reg::T6, 0); // hval[h] = next_code
                    b.addi(Reg::S6, Reg::S6, 1);
                    b.mv(Reg::S5, Reg::T1); // code = sym
                },
            );
        });
        // emitted += 1 (flush final code) and publish.
        b.addi(Reg::S7, Reg::S7, 1);
        b.li(Reg::T1, OUT_COUNT);
        b.store(Reg::S7, Reg::T1, 0);

        // Dummy use of while_cond to keep hot loop shapes varied: decay
        // next_code back toward ALPHA (biased loop, models table reset
        // bookkeeping in the original).
        b.li(Reg::T2, ALPHA as i32 + 32);
        while_cond(b, Cond::Geu, Reg::S6, Reg::T2, |b| {
            b.shri(Reg::S6, Reg::S6, 1);
        });
    });

    let program = b.build().expect("compress assembles");
    Workload::new("compress", program, 1 << 17, vec![(INPUT as u64, input)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "compress faulted: {:?}",
            interp.error()
        );
        let input = data::skewed_symbols(0xC0_4D, INPUT_LEN, ALPHA);
        let expected = reference_emitted(&input);
        assert_eq!(interp.machine().mem(OUT_COUNT as u64), expected);
        // A skewed input must actually compress: far fewer codes than symbols.
        assert!(
            expected < INPUT_LEN as u64 / 2,
            "no compression: {expected}"
        );
    }

    #[test]
    fn has_realistic_branch_mix() {
        let stats = build(2).stream_stats(500_000);
        let ratio = stats.cond_branch_ratio();
        assert!((0.10..0.40).contains(&ratio), "branch ratio {ratio}");
    }
}
