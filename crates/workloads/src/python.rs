//! `python`: a stack-based bytecode virtual machine.
//!
//! Mirrors the CPython interpreter's defining behavior: a fetch/decode
//! loop whose *indirect dispatch jump* has many targets and follows the
//! guest bytecode's structure, with short, branchy handler blocks.

use tc_isa::{ProgramBuilder, Reg};

use crate::kernels::{jump_table, repeat_and_halt};
use crate::workload::Workload;

/// Bytecode opcodes (encoded `op << 16 | arg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    Push(u16),
    Load(u16),
    Store(u16),
    Add,
    Sub,
    Mul,
    Lt,
    Jz(u16),
    Jmp(u16),
    Halt,
}

impl Op {
    fn encode(self) -> u64 {
        let (op, arg) = match self {
            Op::Push(a) => (0, a),
            Op::Load(a) => (1, a),
            Op::Store(a) => (2, a),
            Op::Add => (3, 0),
            Op::Sub => (4, 0),
            Op::Mul => (5, 0),
            Op::Lt => (6, 0),
            Op::Jz(a) => (7, a),
            Op::Jmp(a) => (8, a),
            Op::Halt => (9, 0),
        };
        (op << 16) | u64::from(arg)
    }
}

/// The guest program: three small scripts run back to back.
///
/// Script 1: `sum = Σ i*i for i in 0..40`
/// Script 2: iterative Fibonacci(30) into var 3
/// Script 3: nested loop computing a polynomial table checksum
pub(crate) fn guest_program() -> Vec<Op> {
    use Op::*;
    let mut p = Vec::new();
    // --- Script 1: vars: 0=i, 1=sum ---
    p.extend([Push(0), Store(0), Push(0), Store(1)]);
    let loop1 = p.len() as u16; // 4
    p.extend([Load(0), Push(40), Lt]);
    let jz1_at = p.len();
    p.push(Jz(0)); // patched
    p.extend([Load(1), Load(0), Load(0), Mul, Add, Store(1)]);
    p.extend([Load(0), Push(1), Add, Store(0), Jmp(loop1)]);
    let after1 = p.len() as u16;
    p[jz1_at] = Jz(after1);

    // --- Script 2: vars: 2=a, 3=b, 4=k ---
    p.extend([Push(0), Store(2), Push(1), Store(3), Push(0), Store(4)]);
    let loop2 = p.len() as u16;
    p.extend([Load(4), Push(30), Lt]);
    let jz2_at = p.len();
    p.push(Jz(0));
    // t = a + b; a = b; b = t  (t lives on the stack)
    p.extend([Load(2), Load(3), Add, Load(3), Store(2), Store(3)]);
    p.extend([Load(4), Push(1), Add, Store(4), Jmp(loop2)]);
    let after2 = p.len() as u16;
    p[jz2_at] = Jz(after2);

    // --- Script 3: vars: 5=x, 6=y, 7=acc ---
    p.extend([Push(0), Store(5), Push(0), Store(7)]);
    let loop3x = p.len() as u16;
    p.extend([Load(5), Push(16), Lt]);
    let jz3_at = p.len();
    p.push(Jz(0));
    p.extend([Push(0), Store(6)]);
    let loop3y = p.len() as u16;
    p.extend([Load(6), Push(12), Lt]);
    let jz4_at = p.len();
    p.push(Jz(0));
    // acc = acc*3 + x*y - y
    p.extend([
        Load(7),
        Push(3),
        Mul,
        Load(5),
        Load(6),
        Mul,
        Add,
        Load(6),
        Sub,
        Store(7),
    ]);
    p.extend([Load(6), Push(1), Add, Store(6), Jmp(loop3y)]);
    let after3y = p.len() as u16;
    p[jz4_at] = Jz(after3y);
    p.extend([Load(5), Push(1), Add, Store(5), Jmp(loop3x)]);
    let after3x = p.len() as u16;
    p[jz3_at] = Jz(after3x);

    p.push(Halt);
    p
}

/// Reference interpreter; returns the vars checksum the assembly produces.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(prog: &[Op]) -> u64 {
    let mut vars = [0u64; 16];
    let mut stack: Vec<u64> = Vec::new();
    let mut pc = 0usize;
    loop {
        let op = prog[pc];
        pc += 1;
        match op {
            Op::Push(a) => stack.push(u64::from(a)),
            Op::Load(v) => stack.push(vars[v as usize]),
            Op::Store(v) => vars[v as usize] = stack.pop().unwrap(),
            Op::Add => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a.wrapping_add(b));
            }
            Op::Sub => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a.wrapping_sub(b));
            }
            Op::Mul => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a.wrapping_mul(b));
            }
            Op::Lt => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(u64::from((a as i64) < (b as i64)));
            }
            Op::Jz(t) => {
                if stack.pop().unwrap() == 0 {
                    pc = t as usize;
                }
            }
            Op::Jmp(t) => pc = t as usize,
            Op::Halt => break,
        }
    }
    vars.iter()
        .fold(0u64, |a, &v| a.wrapping_mul(31).wrapping_add(v))
}

const BC: i32 = 0x100;
const VARS: i32 = 0x600;
const VSTACK: i32 = VARS + 16;
const DISPATCH_TABLE: i32 = VSTACK + 128;
const OUT_CHECK: i32 = DISPATCH_TABLE + 16;

pub(crate) fn build(scale: u32) -> Workload {
    let guest: Vec<u64> = guest_program().iter().map(|o| o.encode()).collect();
    assert!(guest.len() < 0x500 - 0x100, "guest program too large");

    let mut b = ProgramBuilder::new();
    // Registers: S0 = guest pc, S1 = vm stack pointer (word addr),
    // S2 = BC base, S3 = VARS base, S4 = dispatch table base,
    // S5 = current arg, T0.. scratch.
    b.li(Reg::S2, BC)
        .li(Reg::S3, VARS)
        .li(Reg::S4, DISPATCH_TABLE);

    // Handler labels.
    let handlers: Vec<_> = (0..10).map(|i| b.new_label(format!("op{i}"))).collect();
    let dispatch = b.new_label("dispatch");
    let vm_done = b.new_label("vm_done");
    let start = b.new_label("start");

    // Build dispatch table in memory at startup.
    for (i, &h) in handlers.iter().enumerate() {
        b.la(Reg::T0, h);
        b.li(Reg::T1, DISPATCH_TABLE + i as i32);
        b.store(Reg::T0, Reg::T1, 0);
    }
    b.jump(start);

    // --- Dispatch ---
    b.bind(dispatch).unwrap();
    b.add(Reg::T0, Reg::S2, Reg::S0); // &bc[pc]
    b.load(Reg::T1, Reg::T0, 0); // word
    b.addi(Reg::S0, Reg::S0, 1); // pc += 1
    b.shri(Reg::T2, Reg::T1, 16); // op
    b.li(Reg::T3, 0xFFFF);
    b.and(Reg::S5, Reg::T1, Reg::T3); // arg
    jump_table(&mut b, Reg::S4, Reg::T2, Reg::T4);

    // --- Handlers ---
    // 0: PUSH arg
    b.bind(handlers[0]).unwrap();
    b.store(Reg::S5, Reg::S1, 0);
    b.addi(Reg::S1, Reg::S1, 1);
    b.jump(dispatch);
    // 1: LOAD var
    b.bind(handlers[1]).unwrap();
    b.add(Reg::T0, Reg::S3, Reg::S5);
    b.load(Reg::T1, Reg::T0, 0);
    b.store(Reg::T1, Reg::S1, 0);
    b.addi(Reg::S1, Reg::S1, 1);
    b.jump(dispatch);
    // 2: STORE var
    b.bind(handlers[2]).unwrap();
    b.addi(Reg::S1, Reg::S1, -1);
    b.load(Reg::T1, Reg::S1, 0);
    b.add(Reg::T0, Reg::S3, Reg::S5);
    b.store(Reg::T1, Reg::T0, 0);
    b.jump(dispatch);
    // 3/4/5/6: binary ops
    for (i, emit) in [
        (3usize, 0u8), // add
        (4, 1),        // sub
        (5, 2),        // mul
        (6, 3),        // lt
    ] {
        b.bind(handlers[i]).unwrap();
        b.addi(Reg::S1, Reg::S1, -1);
        b.load(Reg::T1, Reg::S1, 0); // b
        b.addi(Reg::S1, Reg::S1, -1);
        b.load(Reg::T0, Reg::S1, 0); // a
        match emit {
            0 => {
                b.add(Reg::T0, Reg::T0, Reg::T1);
            }
            1 => {
                b.sub(Reg::T0, Reg::T0, Reg::T1);
            }
            2 => {
                b.mul(Reg::T0, Reg::T0, Reg::T1);
            }
            _ => {
                b.alu(tc_isa::AluOp::Slt, Reg::T0, Reg::T0, Reg::T1);
            }
        }
        b.store(Reg::T0, Reg::S1, 0);
        b.addi(Reg::S1, Reg::S1, 1);
        b.jump(dispatch);
    }
    // 7: JZ target
    b.bind(handlers[7]).unwrap();
    b.addi(Reg::S1, Reg::S1, -1);
    b.load(Reg::T0, Reg::S1, 0);
    {
        let no_jump = b.new_label("jz_no");
        b.bnez(Reg::T0, no_jump);
        b.mv(Reg::S0, Reg::S5);
        b.bind(no_jump).unwrap();
    }
    b.jump(dispatch);
    // 8: JMP target
    b.bind(handlers[8]).unwrap();
    b.mv(Reg::S0, Reg::S5);
    b.jump(dispatch);
    // 9: HALT
    b.bind(handlers[9]).unwrap();
    b.jump(vm_done);

    // --- Outer driver ---
    b.bind(start).unwrap();
    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        // Clear vars, reset pc/stack, run the VM.
        b.li(Reg::T0, 0);
        let lim = Reg::T1;
        b.li(lim, 16);
        crate::kernels::for_lt(b, Reg::T0, lim, |b| {
            b.add(Reg::T2, Reg::S3, Reg::T0);
            b.store(Reg::ZERO, Reg::T2, 0);
        });
        b.li(Reg::S0, 0);
        b.li(Reg::S1, VSTACK);
        // Jump into the VM; HALT handler jumps to vm_done below.
        let resume = b.new_label("resume");
        b.la(Reg::S6, resume);
        b.jump(dispatch);
        // vm_done: return to the driver via S6 (indirect, like a
        // computed return — bound once, outside the rep loop? No: bind
        // here, each rep overwrites S6 first).
        b.bind(vm_done).unwrap();
        b.jr(Reg::S6);
        b.bind(resume).unwrap();
        // Publish vars checksum.
        b.li(Reg::T0, 0).li(Reg::T2, 0);
        let lim2 = Reg::T1;
        b.li(lim2, 16);
        crate::kernels::for_lt(b, Reg::T0, lim2, |b| {
            b.add(Reg::T3, Reg::S3, Reg::T0);
            b.load(Reg::T3, Reg::T3, 0);
            b.muli(Reg::T2, Reg::T2, 31);
            b.add(Reg::T2, Reg::T2, Reg::T3);
        });
        b.li(Reg::T3, OUT_CHECK);
        b.store(Reg::T2, Reg::T3, 0);
    });

    let program = b.build().expect("python assembles");
    Workload::new("python", program, 1 << 14, vec![(BC as u64, guest)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "python faulted: {:?}",
            interp.error()
        );
        let expected = reference(&guest_program());
        assert_eq!(interp.machine().mem(OUT_CHECK as u64), expected);
        assert_ne!(expected, 0);
    }

    #[test]
    fn dispatch_dominates_control_flow() {
        let stats = build(2).stream_stats(200_000);
        // The VM's indirect dispatch should produce a high indirect-jump
        // rate relative to other benchmarks.
        let per_kilo = stats.indirect * 1000 / stats.instructions.max(1);
        assert!(
            per_kilo > 30,
            "expected heavy indirect dispatch, got {per_kilo}/1000"
        );
    }
}
