//! Shared assembly idioms used by the benchmark builders.

use tc_isa::{Cond, ProgramBuilder, Reg};

/// Emits `for (; i < n; i += 1) { body }`. `i` and `n` are live registers;
/// the body must preserve them.
pub(crate) fn for_lt(
    b: &mut ProgramBuilder,
    i: Reg,
    n: Reg,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    let top = b.new_label("for_top");
    let done = b.new_label("for_done");
    b.bind(top).expect("fresh label");
    b.branch(Cond::Ge, i, n, done);
    body(b);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done).expect("fresh label");
}

/// Emits `while (cond(a, b)) { body }` where the body must make progress.
pub(crate) fn while_cond(
    b: &mut ProgramBuilder,
    cond: Cond,
    a: Reg,
    rb: Reg,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    let top = b.new_label("while_top");
    let done = b.new_label("while_done");
    b.bind(top).expect("fresh label");
    b.branch(cond.negate(), a, rb, done);
    body(b);
    b.jump(top);
    b.bind(done).expect("fresh label");
}

/// Emits `if cond(a, rb) { then }` (no else).
pub(crate) fn if_cond(
    b: &mut ProgramBuilder,
    cond: Cond,
    a: Reg,
    rb: Reg,
    then: impl FnOnce(&mut ProgramBuilder),
) {
    let skip = b.new_label("if_skip");
    b.branch(cond.negate(), a, rb, skip);
    then(b);
    b.bind(skip).expect("fresh label");
}

/// Emits `if cond(a, rb) { then } else { otherwise }`.
pub(crate) fn if_else(
    b: &mut ProgramBuilder,
    cond: Cond,
    a: Reg,
    rb: Reg,
    then: impl FnOnce(&mut ProgramBuilder),
    otherwise: impl FnOnce(&mut ProgramBuilder),
) {
    let else_l = b.new_label("else");
    let end = b.new_label("endif");
    b.branch(cond.negate(), a, rb, else_l);
    then(b);
    b.jump(end);
    b.bind(else_l).expect("fresh label");
    otherwise(b);
    b.bind(end).expect("fresh label");
}

/// Emits an outer "repeat `reps` times" loop around `body` and halts
/// afterwards; this is how every benchmark extends its dynamic length.
/// Uses `ctr` and `lim` as scratch registers, which the body must not
/// clobber.
pub(crate) fn repeat_and_halt(
    b: &mut ProgramBuilder,
    ctr: Reg,
    lim: Reg,
    reps: i32,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    b.li(ctr, 0).li(lim, reps);
    for_lt(b, ctr, lim, body);
    b.halt();
}

/// Emits a jump-table dispatch: `goto table[idx]` where the table of code
/// addresses lives at `table_base` (a register holding a data address).
/// Clobbers `scratch`.
pub(crate) fn jump_table(b: &mut ProgramBuilder, table_base: Reg, idx: Reg, scratch: Reg) {
    b.add(scratch, table_base, idx);
    b.load(scratch, scratch, 0);
    b.jr(scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_isa::Interpreter;

    #[test]
    fn for_lt_runs_expected_iterations() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 0).li(Reg::T1, 5).li(Reg::T2, 0);
        for_lt(&mut b, Reg::T0, Reg::T1, |b| {
            b.addi(Reg::T2, Reg::T2, 2);
        });
        b.halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        i.by_ref().for_each(drop);
        assert_eq!(i.machine().reg(Reg::T2), 10);
    }

    #[test]
    fn if_else_takes_correct_arm() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 3).li(Reg::T1, 5);
        if_else(
            &mut b,
            Cond::Lt,
            Reg::T0,
            Reg::T1,
            |b| {
                b.li(Reg::T2, 111);
            },
            |b| {
                b.li(Reg::T2, 222);
            },
        );
        b.halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        i.by_ref().for_each(drop);
        assert_eq!(i.machine().reg(Reg::T2), 111);
    }

    #[test]
    fn while_cond_terminates() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 0).li(Reg::T1, 8);
        while_cond(&mut b, Cond::Lt, Reg::T0, Reg::T1, |b| {
            b.addi(Reg::T0, Reg::T0, 3);
        });
        b.halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        i.by_ref().for_each(drop);
        assert_eq!(i.machine().reg(Reg::T0), 9);
    }

    #[test]
    fn jump_table_dispatches() {
        let mut b = ProgramBuilder::new();
        let case0 = b.new_label("case0");
        let case1 = b.new_label("case1");
        // Build the table in memory at address 100: [case0, case1].
        b.la(Reg::T5, case0)
            .li(Reg::T6, 100)
            .store(Reg::T5, Reg::T6, 0);
        b.la(Reg::T5, case1).store(Reg::T5, Reg::T6, 1);
        b.li(Reg::T0, 1); // select case1
        jump_table(&mut b, Reg::T6, Reg::T0, Reg::T7);
        b.bind(case0).unwrap();
        b.li(Reg::T1, 10).halt();
        b.bind(case1).unwrap();
        b.li(Reg::T1, 20).halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 256);
        i.by_ref().for_each(drop);
        assert_eq!(i.machine().reg(Reg::T1), 20);
    }
}
