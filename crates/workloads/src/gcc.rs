//! `gcc`: a table-driven lexer, a parser state machine, and a large set
//! of generated semantic-action routines.
//!
//! Mirrors SPECint95 `126.gcc`'s defining property: a *large active code
//! footprint* (64 distinct action routines, invoked data-dependently via
//! indirect calls) with branchy scanning code of mixed bias.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::genfuncs::{family, GenFunc};
use crate::kernels::{for_lt, if_else, jump_table, repeat_and_halt};
use crate::workload::Workload;

const TEXT_LEN: usize = 8 * 1024;
const ALPHA: u64 = 96;
const NSTATES: u64 = 16;
const NCLASSES: u64 = 5; // char classes: letter, digit, space, punct, other
const NTOKENS: u64 = 8; // token classes fed to the FSM
const NFUNCS: usize = 128;

const TEXT: i32 = 0x100;
const CLS: i32 = TEXT + TEXT_LEN as i32;
const FSM: i32 = CLS + ALPHA as i32;
const FUNCS: i32 = FSM + (NSTATES * NTOKENS) as i32;
const CLS_DISPATCH: i32 = FUNCS + NFUNCS as i32;
const OUT_TOKENS: i32 = CLS_DISPATCH + 8;
const OUT_CHECK: i32 = OUT_TOKENS + 1;

/// Synthetic "source code": identifiers, numbers, punctuation and other
/// tokens separated by whitespace, with source-like proportions.
fn source_text(seed: u64, len: usize) -> Vec<u64> {
    use crate::rng::Rng;
    let mut r = data::rng(seed);
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        match r.gen_range(0..10u32) {
            0..=4 => {
                // identifier: 1-8 letters
                for _ in 0..r.gen_range(1..9) {
                    out.push(r.gen_range(0..56u64));
                }
            }
            5..=6 => {
                // number: 1-5 digits
                for _ in 0..r.gen_range(1..6) {
                    out.push(r.gen_range(56..71u64));
                }
            }
            7 | 8 => out.push(r.gen_range(83..93u64)), // punct
            _ => out.push(r.gen_range(93..96u64)),     // other
        }
        out.push(r.gen_range(71..83u64)); // whitespace separator
    }
    out.truncate(len);
    out
}

/// Character class table: maps symbols to classes with realistic
/// proportions (letters dominate).
fn class_table() -> Vec<u64> {
    (0..ALPHA)
        .map(|c| match c {
            0..=55 => 0,  // letter
            56..=70 => 1, // digit
            71..=82 => 2, // space
            83..=92 => 3, // punct
            _ => 4,       // other
        })
        .collect()
}

/// The parser transition table: `next = fsm[state * NTOKENS + token]`.
fn fsm_table() -> Vec<u64> {
    data::uniform_words(0x6CC0, (NSTATES * NTOKENS) as usize, NSTATES)
}

fn functions() -> Vec<GenFunc> {
    family(0x6CC1, NFUNCS)
}

/// Reference lexer+parser; returns (tokens, checksum).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(text: &[u64]) -> (u64, u64) {
    let cls = class_table();
    let fsm = fsm_table();
    let funcs = functions();
    let mut state = 0u64;
    let mut check = 0u64;
    let mut tokens = 0u64;
    let mut i = 0usize;
    while i < text.len() {
        let c = text[i] as usize;
        let class = cls[c];
        // Lex one token.
        let (tok_class, tok_value) = match class {
            0 => {
                // identifier: consume letters/digits, hash them.
                let mut h = 0u64;
                while i < text.len() && cls[text[i] as usize] <= 1 {
                    h = h.wrapping_mul(31).wrapping_add(text[i]);
                    i += 1;
                }
                (0u64, h)
            }
            1 => {
                // number: consume digits, build value.
                let mut v = 0u64;
                while i < text.len() && cls[text[i] as usize] == 1 {
                    v = v.wrapping_mul(10).wrapping_add(text[i] - 56);
                    i += 1;
                }
                (1, v)
            }
            2 => {
                i += 1;
                continue; // whitespace: no token
            }
            3 => {
                i += 1;
                (2 + (c as u64 & 3), c as u64)
            }
            _ => {
                i += 1;
                (6 + (c as u64 & 1), c as u64)
            }
        };
        tokens += 1;
        // FSM step.
        state = fsm[(state * NTOKENS + tok_class) as usize];
        // Semantic action: indirect call.
        let fidx = ((state * NTOKENS + tok_class) as usize) & (NFUNCS - 1);
        let out = funcs[fidx].eval(check ^ tok_value, state);
        check = out;
    }
    (tokens, check)
}

pub(crate) fn build(scale: u32) -> Workload {
    let text = source_text(0x6CC2, TEXT_LEN);
    let cls = class_table();
    let fsm = fsm_table();
    let funcs = functions();

    let mut b = ProgramBuilder::new();
    // A4 = TEXT, A5 = len, S2 = CLS, S3 = FSM base, S4 = FUNCS table.
    b.li(Reg::A4, TEXT).li(Reg::A5, TEXT_LEN as i32);
    b.li(Reg::S2, CLS).li(Reg::S3, FSM).li(Reg::S4, FUNCS);

    // Emit the 64 action routines after a jump; record labels, fill the
    // function-pointer table at startup.
    let flabels: Vec<_> = (0..NFUNCS)
        .map(|i| b.new_label(format!("act{i}")))
        .collect();
    // Class-dispatch handler labels for the lexer.
    let hlabels: Vec<_> = (0..NCLASSES)
        .map(|i| b.new_label(format!("cls{i}")))
        .collect();
    let start = b.new_label("start");
    for (i, &l) in flabels.iter().enumerate() {
        b.la(Reg::T0, l);
        b.li(Reg::T1, FUNCS + i as i32);
        b.store(Reg::T0, Reg::T1, 0);
    }
    for (i, &l) in hlabels.iter().enumerate() {
        b.la(Reg::T0, l);
        b.li(Reg::T1, CLS_DISPATCH + i as i32);
        b.store(Reg::T0, Reg::T1, 0);
    }
    b.jump(start);
    for (f, &l) in funcs.iter().zip(&flabels) {
        f.emit(&mut b, l);
    }

    // --- Lexer/parser loop (registers) ---
    // S0 = i, S1 = state, S5 = check, S6 = tokens, S7 = tok_class,
    // S8 = tok_value, S9 = scratch (current char).
    let scan_top = b.new_label("scan_top");
    let scan_done = b.new_label("scan_done");
    let token_ready = b.new_label("token_ready");

    b.bind(scan_top).unwrap();
    b.branch(Cond::Geu, Reg::S0, Reg::A5, scan_done);
    // c = text[i]; class = cls[c]
    b.add(Reg::T0, Reg::A4, Reg::S0);
    b.load(Reg::S9, Reg::T0, 0);
    b.add(Reg::T1, Reg::S2, Reg::S9);
    b.load(Reg::T2, Reg::T1, 0);
    // Dispatch on class via jump table (indirect, like gcc's switch).
    b.li(Reg::T3, CLS_DISPATCH);
    jump_table(&mut b, Reg::T3, Reg::T2, Reg::T4);

    // class 0: identifier.
    b.bind(hlabels[0]).unwrap();
    b.li(Reg::S8, 0);
    {
        let done = b.new_label("ident_done");
        let top = b.here("ident_top");
        b.branch(Cond::Geu, Reg::S0, Reg::A5, done);
        b.add(Reg::T0, Reg::A4, Reg::S0);
        b.load(Reg::T1, Reg::T0, 0);
        b.add(Reg::T2, Reg::S2, Reg::T1);
        b.load(Reg::T2, Reg::T2, 0);
        b.li(Reg::T3, 1);
        b.branch(Cond::Ltu, Reg::T3, Reg::T2, done); // class > 1
        b.muli(Reg::S8, Reg::S8, 31);
        b.add(Reg::S8, Reg::S8, Reg::T1);
        b.addi(Reg::S0, Reg::S0, 1);
        b.jump(top);
        b.bind(done).unwrap();
    }
    b.li(Reg::S7, 0);
    b.jump(token_ready);

    // class 1: number.
    b.bind(hlabels[1]).unwrap();
    b.li(Reg::S8, 0);
    {
        let done = b.new_label("num_done");
        let top = b.here("num_top");
        b.branch(Cond::Geu, Reg::S0, Reg::A5, done);
        b.add(Reg::T0, Reg::A4, Reg::S0);
        b.load(Reg::T1, Reg::T0, 0);
        b.add(Reg::T2, Reg::S2, Reg::T1);
        b.load(Reg::T2, Reg::T2, 0);
        b.li(Reg::T3, 1);
        b.bne(Reg::T2, Reg::T3, done);
        b.muli(Reg::S8, Reg::S8, 10);
        b.add(Reg::S8, Reg::S8, Reg::T1);
        b.addi(Reg::S8, Reg::S8, -56);
        b.addi(Reg::S0, Reg::S0, 1);
        b.jump(top);
        b.bind(done).unwrap();
    }
    b.li(Reg::S7, 1);
    b.jump(token_ready);

    // class 2: whitespace — skip.
    b.bind(hlabels[2]).unwrap();
    b.addi(Reg::S0, Reg::S0, 1);
    b.jump(scan_top);

    // class 3: punct — token class 2 + (c & 3).
    b.bind(hlabels[3]).unwrap();
    b.addi(Reg::S0, Reg::S0, 1);
    b.andi(Reg::S7, Reg::S9, 3);
    b.addi(Reg::S7, Reg::S7, 2);
    b.mv(Reg::S8, Reg::S9);
    b.jump(token_ready);

    // class 4: other — token class 6 + (c & 1).
    b.bind(hlabels[4]).unwrap();
    b.addi(Reg::S0, Reg::S0, 1);
    b.andi(Reg::S7, Reg::S9, 1);
    b.addi(Reg::S7, Reg::S7, 6);
    b.mv(Reg::S8, Reg::S9);
    b.jump(token_ready);

    // token_ready: FSM step + action call.
    b.bind(token_ready).unwrap();
    b.addi(Reg::S6, Reg::S6, 1);
    // state = fsm[state * NTOKENS + tok_class]
    b.muli(Reg::T0, Reg::S1, NTOKENS as i32);
    b.add(Reg::T0, Reg::T0, Reg::S7);
    b.add(Reg::T1, Reg::T0, Reg::S3);
    b.load(Reg::S1, Reg::T1, 0);
    // fidx = (state * NTOKENS + tok_class) & 63 — note: *new* state.
    b.muli(Reg::T0, Reg::S1, NTOKENS as i32);
    b.add(Reg::T0, Reg::T0, Reg::S7);
    b.andi(Reg::T0, Reg::T0, (NFUNCS - 1) as i32);
    // A0 = check ^ tok_value, A1 = state.
    b.xor(Reg::A0, Reg::S5, Reg::S8);
    b.mv(Reg::A1, Reg::S1);
    b.add(Reg::T1, Reg::S4, Reg::T0);
    b.load(Reg::T1, Reg::T1, 0);
    b.callr(Reg::T1);
    b.mv(Reg::S5, Reg::A0);
    b.jump(scan_top);

    b.bind(scan_done).unwrap();
    // Publish and return to driver (via S11? — use a return-address reg).
    b.li(Reg::T0, OUT_TOKENS);
    b.store(Reg::S6, Reg::T0, 0);
    b.li(Reg::T0, OUT_CHECK);
    b.store(Reg::S5, Reg::T0, 0);
    b.jr(Reg::T11); // resume address placed by the driver

    // --- Driver ---
    b.bind(start).unwrap();
    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        b.li(Reg::S0, 0)
            .li(Reg::S1, 0)
            .li(Reg::S5, 0)
            .li(Reg::S6, 0);
        let resume = b.new_label("resume");
        b.la(Reg::T11, resume);
        b.jump(scan_top);
        b.bind(resume).unwrap();
        // Minor bookkeeping between reps to vary shapes.
        b.li(Reg::T0, 0);
        let lim = Reg::T1;
        b.li(lim, 4);
        for_lt(b, Reg::T0, lim, |b| {
            b.nop();
        });
        if_else(
            b,
            Cond::Ltu,
            Reg::S5,
            Reg::S6,
            |b| {
                b.addi(Reg::T2, Reg::S5, 1);
            },
            |b| {
                b.addi(Reg::T2, Reg::S6, 1);
            },
        );
    });

    let program = b.build().expect("gcc assembles");
    Workload::new(
        "gcc",
        program,
        1 << 15,
        vec![(TEXT as u64, text), (CLS as u64, cls), (FSM as u64, fsm)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "gcc faulted: {:?}",
            interp.error()
        );
        let text = source_text(0x6CC2, TEXT_LEN);
        let (tokens, check) = reference(&text);
        assert_eq!(interp.machine().mem(OUT_TOKENS as u64), tokens);
        assert_eq!(interp.machine().mem(OUT_CHECK as u64), check);
        assert!(tokens > 1000, "too few tokens: {tokens}");
    }

    #[test]
    fn static_footprint_is_large() {
        let w = build(1);
        assert!(
            w.program().len() > 2000,
            "gcc should have a large code footprint, got {} instructions",
            w.program().len()
        );
    }
}
