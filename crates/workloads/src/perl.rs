//! `perl`: text scanning — Boyer-Moore-Horspool search plus word
//! frequency hashing.
//!
//! Mirrors SPECint95 `134.perl` running a text-processing script:
//! skip-table pattern search with data-dependent early exits, and an
//! associative-array update loop.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, if_cond, repeat_and_halt};
use crate::workload::Workload;

const TEXT_LEN: usize = 12 * 1024;
const ALPHA: u64 = 32;
const NPATS: usize = 4;
const PAT_LEN: usize = 5;
/// Sized so the distinct-word count stays well under the table size
/// (linear probing must terminate).
const HASH_SIZE: i32 = 8192;

const TEXT: i32 = 0x100;
const PATS: i32 = TEXT + TEXT_LEN as i32;
const SKIP: i32 = PATS + (NPATS * PAT_LEN) as i32;
const HKEY: i32 = SKIP + (NPATS as i32) * ALPHA as i32;
const HCNT: i32 = HKEY + HASH_SIZE;
const OUT_MATCHES: i32 = HCNT + HASH_SIZE;
const OUT_WORDS: i32 = OUT_MATCHES + 1;

fn patterns(text: &[u64]) -> Vec<u64> {
    // Take real substrings of the text so matches occur.
    let mut out = Vec::with_capacity(NPATS * PAT_LEN);
    for p in 0..NPATS {
        let start = 1000 + p * 2500;
        out.extend_from_slice(&text[start..start + PAT_LEN]);
    }
    out
}

fn skip_tables(pats: &[u64]) -> Vec<u64> {
    let mut out = vec![PAT_LEN as u64; NPATS * ALPHA as usize];
    for p in 0..NPATS {
        for j in 0..PAT_LEN - 1 {
            let c = pats[p * PAT_LEN + j] as usize;
            out[p * ALPHA as usize + c] = (PAT_LEN - 1 - j) as u64;
        }
    }
    out
}

/// Reference: returns (total matches over patterns, distinct words).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(text: &[u64]) -> (u64, u64) {
    let pats = patterns(text);
    let skip = skip_tables(&pats);
    let mut matches = 0u64;
    for p in 0..NPATS {
        let pat = &pats[p * PAT_LEN..(p + 1) * PAT_LEN];
        let mut i = PAT_LEN - 1;
        while i < text.len() {
            let mut j = 0;
            while j < PAT_LEN && text[i - j] == pat[PAT_LEN - 1 - j] {
                j += 1;
            }
            if j == PAT_LEN {
                matches += 1;
                i += 1;
            } else {
                i += skip[p * ALPHA as usize + text[i] as usize] as usize;
            }
        }
    }
    // Word hashing: separator symbol = 0.
    let mut hkey = vec![0u64; HASH_SIZE as usize];
    let mut distinct = 0u64;
    let mask = (HASH_SIZE - 1) as u64;
    let mut word = 0u64;
    for &c in text {
        if c == 0 {
            if word != 0 {
                let mut h = word.wrapping_mul(0x9E37_79B1) & mask;
                while hkey[h as usize] != 0 && hkey[h as usize] != word {
                    h = (h + 1) & mask;
                }
                if hkey[h as usize] == 0 {
                    hkey[h as usize] = word;
                    distinct += 1;
                }
                word = 0;
            }
        } else {
            word = word.wrapping_mul(37).wrapping_add(c);
        }
    }
    (matches, distinct)
}

pub(crate) fn build(scale: u32) -> Workload {
    let text = data::skewed_symbols(0x9E51, TEXT_LEN, ALPHA);
    let pats = patterns(&text);
    let skip = skip_tables(&pats);

    let mut b = ProgramBuilder::new();
    // A4 = text base, A5 = text len.
    b.li(Reg::A4, TEXT).li(Reg::A5, TEXT_LEN as i32);

    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        b.li(Reg::S8, 0); // matches
                          // --- BMH per pattern ---
        b.li(Reg::S0, 0); // pattern index
        let pat_lim = Reg::T11;
        b.li(pat_lim, NPATS as i32);
        for_lt(b, Reg::S0, pat_lim, |b| {
            // S1 = &pat[p*PAT_LEN], S2 = &skip[p*ALPHA]
            b.muli(Reg::S1, Reg::S0, PAT_LEN as i32);
            b.addi(Reg::S1, Reg::S1, PATS);
            b.muli(Reg::S2, Reg::S0, ALPHA as i32);
            b.addi(Reg::S2, Reg::S2, SKIP);
            // i = PAT_LEN - 1
            b.li(Reg::S3, (PAT_LEN - 1) as i32);
            let scan_done = b.new_label("scan_done");
            let scan_top = b.here("scan_top");
            b.branch(Cond::Geu, Reg::S3, Reg::A5, scan_done);
            // Backward compare: j in 0..PAT_LEN.
            b.li(Reg::S4, 0); // j
            let cmp_fail = b.new_label("cmp_fail");
            let cmp_done = b.new_label("cmp_done");
            let cmp_top = b.here("cmp_top");
            b.li(Reg::T0, PAT_LEN as i32);
            b.branch(Cond::Geu, Reg::S4, Reg::T0, cmp_done);
            // text[i-j] vs pat[PAT_LEN-1-j]
            b.sub(Reg::T1, Reg::S3, Reg::S4);
            b.add(Reg::T1, Reg::T1, Reg::A4);
            b.load(Reg::T1, Reg::T1, 0);
            b.li(Reg::T2, (PAT_LEN - 1) as i32);
            b.sub(Reg::T2, Reg::T2, Reg::S4);
            b.add(Reg::T2, Reg::T2, Reg::S1);
            b.load(Reg::T2, Reg::T2, 0);
            b.bne(Reg::T1, Reg::T2, cmp_fail);
            b.addi(Reg::S4, Reg::S4, 1);
            b.jump(cmp_top);
            b.bind(cmp_done).unwrap();
            // Full match.
            b.addi(Reg::S8, Reg::S8, 1);
            b.addi(Reg::S3, Reg::S3, 1);
            b.jump(scan_top);
            b.bind(cmp_fail).unwrap();
            // i += skip[text[i]]
            b.add(Reg::T3, Reg::S3, Reg::A4);
            b.load(Reg::T3, Reg::T3, 0);
            b.add(Reg::T3, Reg::T3, Reg::S2);
            b.load(Reg::T3, Reg::T3, 0);
            b.add(Reg::S3, Reg::S3, Reg::T3);
            b.jump(scan_top);
            b.bind(scan_done).unwrap();
        });
        b.li(Reg::T0, OUT_MATCHES);
        b.store(Reg::S8, Reg::T0, 0);

        // --- Word hashing ---
        // Clear table.
        b.li(Reg::T0, 0);
        let clear_lim = Reg::T1;
        b.li(clear_lim, HASH_SIZE);
        for_lt(b, Reg::T0, clear_lim, |b| {
            b.addi(Reg::T2, Reg::T0, HKEY);
            b.store(Reg::ZERO, Reg::T2, 0);
        });
        b.li(Reg::S5, 0); // word
        b.li(Reg::S6, 0); // distinct
        b.li(Reg::S7, HASH_SIZE - 1); // mask
        b.li(Reg::S0, 0); // i
        for_lt(b, Reg::S0, Reg::A5, |b| {
            b.add(Reg::T0, Reg::A4, Reg::S0);
            b.load(Reg::T0, Reg::T0, 0); // c
            let is_sep = b.new_label("is_sep");
            let next = b.new_label("next_char");
            b.beqz(Reg::T0, is_sep);
            // word = word*37 + c
            b.muli(Reg::S5, Reg::S5, 37);
            b.add(Reg::S5, Reg::S5, Reg::T0);
            b.jump(next);
            b.bind(is_sep).unwrap();
            if_cond(b, Cond::Ne, Reg::S5, Reg::ZERO, |b| {
                // h = word * 0x9E3779B1 & mask (low bits unaffected by
                // the sign-extended immediate).
                b.li(Reg::T1, 0x9e37_79b1_u32 as i32);
                b.mul(Reg::T1, Reg::S5, Reg::T1);
                b.and(Reg::T1, Reg::T1, Reg::S7);
                let probe_done = b.new_label("probe_done");
                let probe_top = b.here("probe_top");
                b.addi(Reg::T2, Reg::T1, HKEY);
                b.load(Reg::T3, Reg::T2, 0);
                b.beqz(Reg::T3, probe_done);
                b.beq(Reg::T3, Reg::S5, probe_done);
                b.addi(Reg::T1, Reg::T1, 1);
                b.and(Reg::T1, Reg::T1, Reg::S7);
                b.jump(probe_top);
                b.bind(probe_done).unwrap();
                if_cond(b, Cond::Eq, Reg::T3, Reg::ZERO, |b| {
                    b.store(Reg::S5, Reg::T2, 0);
                    b.addi(Reg::S6, Reg::S6, 1);
                });
                b.li(Reg::S5, 0);
            });
            b.bind(next).unwrap();
        });
        b.li(Reg::T0, OUT_WORDS);
        b.store(Reg::S6, Reg::T0, 0);
    });

    let program = b.build().expect("perl assembles");
    Workload::new(
        "perl",
        program,
        1 << 16,
        vec![
            (TEXT as u64, text),
            (PATS as u64, pats),
            (SKIP as u64, skip),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "perl faulted: {:?}",
            interp.error()
        );
        let text = data::skewed_symbols(0x9E51, TEXT_LEN, ALPHA);
        let (matches, distinct) = reference(&text);
        assert_eq!(interp.machine().mem(OUT_MATCHES as u64), matches);
        assert_eq!(interp.machine().mem(OUT_WORDS as u64), distinct);
        assert!(
            matches >= NPATS as u64,
            "planted patterns must be found: {matches}"
        );
        assert!(distinct > 50, "too few words: {distinct}");
    }
}
