//! `tex`: hyphenation-pattern probing and greedy paragraph breaking.
//!
//! Mirrors TeX's text-processing core: per-word pattern-table probes with
//! data-dependent early exit (hyphenation), width accumulation with a
//! line-overflow branch, and a wide family of formatting routines — the
//! large, varied trace footprint behind `tex`'s standout sensitivity to
//! trace packing in the paper's Table 4.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::genfuncs::{family, GenFunc};
use crate::kernels::{for_lt, if_cond, repeat_and_halt};
use crate::workload::Workload;

const NWORDS: usize = 6 * 1024;
const VOCAB: u64 = 4096;
const NFUNCS: usize = 96;
const LINE_WIDTH: i64 = 60;

const WORDS: i32 = 0x100;
const WIDTHS: i32 = WORDS + NWORDS as i32;
const PATTERNS: i32 = WIDTHS + 64;
const FUNCS: i32 = PATTERNS + 256;
const OUT_LINES: i32 = FUNCS + NFUNCS as i32;
const OUT_CHECK: i32 = OUT_LINES + 1;

fn width_table() -> Vec<u64> {
    data::uniform_words(0x7E40, 64, 11)
        .iter()
        .map(|w| w + 1)
        .collect()
}

fn pattern_table() -> Vec<u64> {
    data::uniform_words(0x7E41, 256, 1 << 16)
}

fn functions() -> Vec<GenFunc> {
    family(0x7E42, NFUNCS)
}

/// Reference; returns (lines, checksum).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(words: &[u64]) -> (u64, u64) {
    let widths = width_table();
    let patterns = pattern_table();
    let funcs = functions();
    let mut lines = 0u64;
    let mut check = 0u64;
    let mut line_fill = 0i64;
    for (wi, &word) in words.iter().enumerate() {
        let width = widths[(word & 63) as usize] as i64;
        // Hyphenation probe: up to 3 rounds with early exit.
        let mut h = word;
        for _ in 0..3 {
            h = patterns[(h & 255) as usize] ^ (h >> 3);
            if h & 7 == 0 {
                break;
            }
        }
        // Formatting routine.
        let fidx = ((word ^ wi as u64) as usize) % NFUNCS;
        check = funcs[fidx].eval(check ^ h, width as u64);
        // Greedy line breaking.
        line_fill += width + 1;
        if line_fill > LINE_WIDTH {
            lines += 1;
            let overflow = (line_fill - LINE_WIDTH) as u64;
            check = check.wrapping_add(overflow.wrapping_mul(overflow));
            line_fill = width;
        }
    }
    (lines, check)
}

pub(crate) fn build(scale: u32) -> Workload {
    let words = data::zipf_words(0x7E43, NWORDS, VOCAB);
    let funcs = functions();

    let mut b = ProgramBuilder::new();
    // A4 = WORDS, A5 = count, S2 = WIDTHS, S3 = PATTERNS, S4 = FUNCS.
    b.li(Reg::A4, WORDS).li(Reg::A5, NWORDS as i32);
    b.li(Reg::S2, WIDTHS)
        .li(Reg::S3, PATTERNS)
        .li(Reg::S4, FUNCS);

    let flabels: Vec<_> = (0..NFUNCS)
        .map(|i| b.new_label(format!("fmt{i}")))
        .collect();
    let start = b.new_label("start");
    for (i, &l) in flabels.iter().enumerate() {
        b.la(Reg::T0, l);
        b.li(Reg::T1, FUNCS + i as i32);
        b.store(Reg::T0, Reg::T1, 0);
    }
    b.jump(start);
    for (f, &l) in funcs.iter().zip(&flabels) {
        f.emit(&mut b, l);
    }

    b.bind(start).unwrap();
    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        // S0 = wi, S5 = check, S6 = lines, S7 = line_fill, S8 = word,
        // S9 = width, S1 = h.
        b.li(Reg::S5, 0).li(Reg::S6, 0).li(Reg::S7, 0);
        b.li(Reg::S0, 0);
        for_lt(b, Reg::S0, Reg::A5, |b| {
            b.add(Reg::T0, Reg::A4, Reg::S0);
            b.load(Reg::S8, Reg::T0, 0);
            // width = widths[word & 63]
            b.andi(Reg::T1, Reg::S8, 63);
            b.add(Reg::T1, Reg::T1, Reg::S2);
            b.load(Reg::S9, Reg::T1, 0);
            // Hyphenation probe: 3 rounds, early exit.
            b.mv(Reg::S1, Reg::S8);
            let probe_done = b.new_label("hyph_done");
            for _ in 0..3 {
                b.andi(Reg::T2, Reg::S1, 255);
                b.add(Reg::T2, Reg::T2, Reg::S3);
                b.load(Reg::T2, Reg::T2, 0);
                b.shri(Reg::T3, Reg::S1, 3);
                b.xor(Reg::S1, Reg::T2, Reg::T3);
                b.andi(Reg::T4, Reg::S1, 7);
                b.beqz(Reg::T4, probe_done);
            }
            b.bind(probe_done).unwrap();
            // Formatting call: fidx = (word ^ wi) % NFUNCS.
            b.xor(Reg::T0, Reg::S8, Reg::S0);
            b.li(Reg::T1, NFUNCS as i32);
            b.alu(tc_isa::AluOp::Rem, Reg::T0, Reg::T0, Reg::T1);
            b.xor(Reg::A0, Reg::S5, Reg::S1);
            b.mv(Reg::A1, Reg::S9);
            b.add(Reg::T1, Reg::S4, Reg::T0);
            b.load(Reg::T1, Reg::T1, 0);
            b.callr(Reg::T1);
            b.mv(Reg::S5, Reg::A0);
            // line_fill += width + 1; overflow branch.
            b.add(Reg::S7, Reg::S7, Reg::S9);
            b.addi(Reg::S7, Reg::S7, 1);
            b.li(Reg::T2, LINE_WIDTH as i32);
            if_cond(b, Cond::Lt, Reg::T2, Reg::S7, |b| {
                b.addi(Reg::S6, Reg::S6, 1);
                b.li(Reg::T3, LINE_WIDTH as i32);
                b.sub(Reg::T3, Reg::S7, Reg::T3);
                b.mul(Reg::T4, Reg::T3, Reg::T3);
                b.add(Reg::S5, Reg::S5, Reg::T4);
                b.mv(Reg::S7, Reg::S9);
            });
        });
        b.li(Reg::T0, OUT_LINES);
        b.store(Reg::S6, Reg::T0, 0);
        b.li(Reg::T0, OUT_CHECK);
        b.store(Reg::S5, Reg::T0, 0);
    });

    let program = b.build().expect("tex assembles");
    Workload::new(
        "tex",
        program,
        1 << 14,
        vec![
            (WORDS as u64, words),
            (WIDTHS as u64, width_table()),
            (PATTERNS as u64, pattern_table()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "tex faulted: {:?}",
            interp.error()
        );
        let words = data::zipf_words(0x7E43, NWORDS, VOCAB);
        let (lines, check) = reference(&words);
        assert_eq!(interp.machine().mem(OUT_LINES as u64), lines);
        assert_eq!(interp.machine().mem(OUT_CHECK as u64), check);
        assert!(lines > 300, "too few lines: {lines}");
    }

    #[test]
    fn footprint_is_large_and_paths_varied() {
        let w = build(1);
        assert!(
            w.program().len() > 1500,
            "tex footprint: {}",
            w.program().len()
        );
    }
}
