//! A small, vendored, deterministic random-number generator.
//!
//! The workspace builds with no external crates (see the workspace
//! manifest), so input synthesis cannot use the `rand` crate. This
//! module provides the subset of its API the workload generators need,
//! backed by xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets. Streams are
//! stable across platforms and releases: changing them would silently
//! change every synthetic benchmark input, so treat the algorithms here
//! as frozen.

/// xoshiro256++ by Blackman & Vigna: fast, 256-bit state, and more than
/// adequate statistical quality for input synthesis (this is *not* a
/// cryptographic generator).
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the full 256-bit state with SplitMix64,
    /// which guarantees a non-zero, well-mixed state for every seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Xoshiro256PlusPlus {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// The generator interface: mirrors the parts of `rand::Rng` the
/// workload generators and tests use.
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 raw bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from `range` (half-open, `low < high` required).
    fn gen_range<T: UniformSample>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // Compare 64 raw bits against a fixed-point threshold; exact for
        // any p representable in 64 fractional bits.
        let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < threshold
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait UniformSample: Copy {
    /// Draws a uniform sample in `[low, high)`.
    fn sample<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased bounded sample in `[0, bound)` via Lemire's widening
/// multiply with rejection.
fn bounded_u64<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject the partial final interval so every value is equally likely.
    let zone = bound.wrapping_neg() % bound; // = 2^64 mod bound
    loop {
        let v = rng.next_u64();
        let wide = u128::from(v) * u128::from(bound);
        if (wide as u64) >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64,
);

impl UniformSample for f64 {
    fn sample<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let v = low + (high - low) * rng.gen_f64();
        // Guard the open upper bound against rounding.
        if v < high {
            v
        } else {
            low
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_is_frozen() {
        // First outputs of xoshiro256++ seeded via SplitMix64(0) — pins
        // the generator so workload inputs can never silently change.
        let mut r = Xoshiro256PlusPlus::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = Xoshiro256PlusPlus::seed_from_u64(0);
        assert_eq!(first, (0..4).map(|_| again.next_u64()).collect::<Vec<_>>());
        assert_eq!(first[0], 5987356902031041503);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let s = r.gen_range(-5i32..6);
            assert!((-5..6).contains(&s));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "p=0.25 produced {hits}/100000"
        );
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }
}
