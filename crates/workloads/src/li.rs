//! `li`: a cons-cell list kernel with deep recursion.
//!
//! Mirrors SPECint95 `130.li` (xlisp): heap-allocated cons cells, tag
//! checks on every access, and recursive list walks — call/return-heavy
//! code with pointer chasing.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, if_else, repeat_and_halt};
use crate::workload::Workload;

/// Number of lists and elements per list.
const NLISTS: usize = 24;
const LIST_LEN: usize = 48;

/// Heap layout: cell i has CAR[i], CDR[i], TAG[i] (0 = int payload in
/// CAR, 1 = pointer payload in CAR). CDR of 0 = nil (cell 0 reserved).
const NCELLS: usize = 4096;
const CAR: i32 = 0x400;
const CDR: i32 = CAR + NCELLS as i32;
const TAG: i32 = CDR + NCELLS as i32;
const HEADS: i32 = TAG + NCELLS as i32;
const OUT_SUM: i32 = HEADS + NLISTS as i32;
const OUT_DEPTH: i32 = OUT_SUM + 1;

/// Builds the heap image: NLISTS lists of LIST_LEN ints; every fourth
/// element is a nested single-element list (tagged pointer) to force tag
/// dispatch during walks.
pub(crate) fn heap_image() -> (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>) {
    let values = data::uniform_words(0x11AA, NLISTS * LIST_LEN, 1 << 20);
    let mut car = vec![0u64; NCELLS];
    let mut cdr = vec![0u64; NCELLS];
    let mut tag = vec![0u64; NCELLS];
    let mut heads = Vec::with_capacity(NLISTS);
    let mut next = 1usize; // cell 0 = nil
    for l in 0..NLISTS {
        let mut head = 0usize;
        // Build back to front.
        for e in (0..LIST_LEN).rev() {
            let v = values[l * LIST_LEN + e];
            let cell = next;
            next += 1;
            if e % 4 == 3 {
                // Nested single-element list.
                let inner = next;
                next += 1;
                car[inner] = v;
                cdr[inner] = 0;
                tag[inner] = 0;
                car[cell] = inner as u64;
                tag[cell] = 1;
            } else {
                car[cell] = v;
                tag[cell] = 0;
            }
            cdr[cell] = head as u64;
            head = cell;
        }
        heads.push(head as u64);
    }
    assert!(next < NCELLS);
    (car, cdr, tag, heads)
}

/// Reference walk: recursive sum with tag dispatch; returns (sum, max
/// recursion depth).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference() -> (u64, u64) {
    let (car, cdr, tag, heads) = heap_image();
    fn sum(cell: usize, car: &[u64], cdr: &[u64], tag: &[u64], depth: u64, maxd: &mut u64) -> u64 {
        *maxd = (*maxd).max(depth);
        if cell == 0 {
            return 0;
        }
        let head = if tag[cell] == 1 {
            sum(car[cell] as usize, car, cdr, tag, depth + 1, maxd)
        } else {
            car[cell]
        };
        head.wrapping_add(sum(cdr[cell] as usize, car, cdr, tag, depth + 1, maxd))
    }
    let mut total = 0u64;
    let mut maxd = 0u64;
    for &h in &heads {
        total = total.wrapping_add(sum(h as usize, &car, &cdr, &tag, 1, &mut maxd));
    }
    (total, maxd)
}

pub(crate) fn build(scale: u32) -> Workload {
    let (car, cdr, tag, heads) = heap_image();

    let mut b = ProgramBuilder::new();
    // S2=CAR, S3=CDR, S4=TAG, S5=depth counter, S6=max depth.
    b.li(Reg::S2, CAR).li(Reg::S3, CDR).li(Reg::S4, TAG);

    let sum_fn = b.new_label("sum");
    let start = b.new_label("start");
    b.jump(start);

    // --- fn sum(A0: cell) -> A0: sum; uses stack for ra + locals ---
    b.bind(sum_fn).unwrap();
    // depth tracking (branchy bookkeeping).
    b.addi(Reg::S5, Reg::S5, 1);
    {
        let no_max = b.new_label("no_max");
        b.branch(Cond::Ge, Reg::S6, Reg::S5, no_max);
        b.mv(Reg::S6, Reg::S5);
        b.bind(no_max).unwrap();
    }
    {
        let not_nil = b.new_label("not_nil");
        b.bnez(Reg::A0, not_nil);
        b.li(Reg::A0, 0);
        b.addi(Reg::S5, Reg::S5, -1);
        b.ret();
        b.bind(not_nil).unwrap();
    }
    b.push_regs(&[Reg::RA, Reg::S0, Reg::S1]);
    b.mv(Reg::S0, Reg::A0); // S0 = cell
                            // head value: tag dispatch.
    b.add(Reg::T0, Reg::S4, Reg::S0);
    b.load(Reg::T0, Reg::T0, 0);
    if_else(
        &mut b,
        Cond::Eq,
        Reg::T0,
        Reg::ZERO,
        |b| {
            // int: head = car[cell]
            b.add(Reg::T1, Reg::S2, Reg::S0);
            b.load(Reg::S1, Reg::T1, 0);
        },
        |b| {
            // pointer: head = sum(car[cell])
            b.add(Reg::T1, Reg::S2, Reg::S0);
            b.load(Reg::A0, Reg::T1, 0);
            b.call(sum_fn);
            b.mv(Reg::S1, Reg::A0);
        },
    );
    // tail = sum(cdr[cell])
    b.add(Reg::T1, Reg::S3, Reg::S0);
    b.load(Reg::A0, Reg::T1, 0);
    b.call(sum_fn);
    b.add(Reg::A0, Reg::A0, Reg::S1);
    b.pop_regs(&[Reg::RA, Reg::S0, Reg::S1]);
    b.addi(Reg::S5, Reg::S5, -1);
    b.ret();

    // --- Driver ---
    b.bind(start).unwrap();
    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        b.li(Reg::S7, 0); // total
        b.li(Reg::S5, 0).li(Reg::S6, 0);
        b.li(Reg::S8, 0); // list index
        let lim = Reg::S9;
        b.li(lim, NLISTS as i32);
        for_lt(b, Reg::S8, lim, |b| {
            b.addi(Reg::T0, Reg::S8, HEADS);
            b.load(Reg::A0, Reg::T0, 0);
            b.call(sum_fn);
            b.add(Reg::S7, Reg::S7, Reg::A0);
        });
        b.li(Reg::T0, OUT_SUM);
        b.store(Reg::S7, Reg::T0, 0);
        b.li(Reg::T0, OUT_DEPTH);
        b.store(Reg::S6, Reg::T0, 0);
    });

    let program = b.build().expect("li assembles");
    Workload::new(
        "li",
        program,
        1 << 15,
        vec![
            (CAR as u64, car),
            (CDR as u64, cdr),
            (TAG as u64, tag),
            (HEADS as u64, heads),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(interp.error().is_none(), "li faulted: {:?}", interp.error());
        let (sum, depth) = reference();
        assert_eq!(interp.machine().mem(OUT_SUM as u64), sum);
        assert_eq!(interp.machine().mem(OUT_DEPTH as u64), depth);
        assert!(depth >= LIST_LEN as u64, "recursion too shallow: {depth}");
    }

    #[test]
    fn call_return_heavy() {
        let stats = build(1).stream_stats(300_000);
        let call_per_kilo = (stats.calls + stats.returns) * 1000 / stats.instructions.max(1);
        assert!(
            call_per_kilo > 50,
            "li should be call-heavy, got {call_per_kilo}/1000"
        );
    }
}
