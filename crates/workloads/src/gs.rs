//! `ghostscript`: line rasterization and span filling.
//!
//! Mirrors ghostscript's rendering loops: Bresenham line stepping with a
//! data-dependent error-term branch, octant setup branches, and biased
//! span-fill loops over the canvas.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, if_cond, if_else, repeat_and_halt};
use crate::workload::Workload;

const CANVAS: i64 = 128;
const NSEGS: usize = 96;

const SEGS: i32 = 0x100;
const PIX: i32 = SEGS + (NSEGS * 4) as i32;
const OUT_PLOTTED: i32 = PIX + (CANVAS * CANVAS) as i32;
const OUT_FILLED: i32 = OUT_PLOTTED + 1;

/// Reference rasterizer: returns (pixels plotted, cells span-filled).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(segs: &[u64]) -> (u64, u64) {
    let n = CANVAS;
    let mut pix = vec![0u64; (n * n) as usize];
    let mut plotted = 0u64;
    for s in segs.chunks_exact(4) {
        let (mut x0, mut y0, x1, y1) = (s[0] as i64, s[1] as i64, s[2] as i64, s[3] as i64);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            pix[(y0 * n + x0) as usize] = 1;
            plotted += 1;
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }
    // Span fill: for each row, fill between first and last set pixel.
    let mut filled = 0u64;
    for y in 0..n {
        let row = &mut pix[(y * n) as usize..((y + 1) * n) as usize];
        let first = row.iter().position(|&p| p != 0);
        let last = row.iter().rposition(|&p| p != 0);
        if let (Some(f), Some(l)) = (first, last) {
            for p in &mut row[f..=l] {
                if *p == 0 {
                    *p = 2;
                    filled += 1;
                }
            }
        }
    }
    (plotted, filled)
}

pub(crate) fn build(scale: u32) -> Workload {
    let segs = data::segments(0x95C7, NSEGS, CANVAS as u64);

    let mut b = ProgramBuilder::new();
    // A5 = canvas size.
    b.li(Reg::A5, CANVAS as i32);

    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        // Clear canvas.
        b.li(Reg::T0, 0).li(Reg::T1, (CANVAS * CANVAS) as i32);
        for_lt(b, Reg::T0, Reg::T1, |b| {
            b.addi(Reg::T2, Reg::T0, PIX);
            b.store(Reg::ZERO, Reg::T2, 0);
        });
        b.li(Reg::S8, 0); // plotted
        b.li(Reg::S9, 0); // filled

        // --- Bresenham over all segments ---
        // Loop var T11 over segments.
        b.li(Reg::T11, 0).li(Reg::T8, NSEGS as i32);
        for_lt(b, Reg::T11, Reg::T8, |b| {
            // Load x0 y0 x1 y1 into S0..S3.
            b.muli(Reg::T0, Reg::T11, 4);
            b.addi(Reg::T0, Reg::T0, SEGS);
            b.load(Reg::S0, Reg::T0, 0);
            b.load(Reg::S1, Reg::T0, 1);
            b.load(Reg::S2, Reg::T0, 2);
            b.load(Reg::S3, Reg::T0, 3);
            // dx = |x1-x0| (S4), dy = -|y1-y0| (S5), sx (S6), sy (S7).
            b.sub(Reg::S4, Reg::S2, Reg::S0);
            if_else(
                b,
                Cond::Lt,
                Reg::S4,
                Reg::ZERO,
                |b| {
                    b.sub(Reg::S4, Reg::ZERO, Reg::S4);
                    b.li(Reg::S6, -1);
                },
                |b| {
                    b.li(Reg::S6, 1);
                },
            );
            b.sub(Reg::S5, Reg::S3, Reg::S1);
            if_else(
                b,
                Cond::Lt,
                Reg::S5,
                Reg::ZERO,
                |b| {
                    b.li(Reg::S7, -1);
                },
                |b| {
                    b.sub(Reg::S5, Reg::ZERO, Reg::S5);
                    b.li(Reg::S7, 1);
                },
            );
            // err (A0) = dx + dy.
            b.add(Reg::A0, Reg::S4, Reg::S5);
            // Stepping loop.
            let step_done = b.new_label("step_done");
            let step_top = b.here("step_top");
            // pix[y0*n + x0] = 1; plotted += 1.
            b.mul(Reg::T1, Reg::S1, Reg::A5);
            b.add(Reg::T1, Reg::T1, Reg::S0);
            b.addi(Reg::T1, Reg::T1, PIX);
            b.li(Reg::T2, 1);
            b.store(Reg::T2, Reg::T1, 0);
            b.addi(Reg::S8, Reg::S8, 1);
            // if x0 == x1 && y0 == y1 break.
            let not_done = b.new_label("not_done");
            b.bne(Reg::S0, Reg::S2, not_done);
            b.beq(Reg::S1, Reg::S3, step_done);
            b.bind(not_done).unwrap();
            // e2 = 2*err.
            b.add(Reg::A1, Reg::A0, Reg::A0);
            // if e2 >= dy { err += dy; x0 += sx }
            if_cond(b, Cond::Ge, Reg::A1, Reg::S5, |b| {
                b.add(Reg::A0, Reg::A0, Reg::S5);
                b.add(Reg::S0, Reg::S0, Reg::S6);
            });
            // if e2 <= dx { err += dx; y0 += sy }
            if_cond(b, Cond::Ge, Reg::S4, Reg::A1, |b| {
                b.add(Reg::A0, Reg::A0, Reg::S4);
                b.add(Reg::S1, Reg::S1, Reg::S7);
            });
            b.jump(step_top);
            b.bind(step_done).unwrap();
        });

        // --- Span fill per row ---
        b.li(Reg::S0, 0); // y
        for_lt(b, Reg::S0, Reg::A5, |b| {
            // Row base in S1.
            b.mul(Reg::S1, Reg::S0, Reg::A5);
            b.addi(Reg::S1, Reg::S1, PIX);
            // first (S2): scan forward; CANVAS if none.
            b.li(Reg::S2, 0);
            let ff_done = b.new_label("ff_done");
            let ff_top = b.here("ff_top");
            b.branch(Cond::Ge, Reg::S2, Reg::A5, ff_done);
            b.add(Reg::T0, Reg::S1, Reg::S2);
            b.load(Reg::T0, Reg::T0, 0);
            b.bnez(Reg::T0, ff_done);
            b.addi(Reg::S2, Reg::S2, 1);
            b.jump(ff_top);
            b.bind(ff_done).unwrap();
            // If none found skip row.
            if_cond(b, Cond::Lt, Reg::S2, Reg::A5, |b| {
                // last (S3): scan backward.
                b.addi(Reg::S3, Reg::A5, -1);
                let fl_done = b.new_label("fl_done");
                let fl_top = b.here("fl_top");
                b.add(Reg::T0, Reg::S1, Reg::S3);
                b.load(Reg::T0, Reg::T0, 0);
                b.bnez(Reg::T0, fl_done);
                b.addi(Reg::S3, Reg::S3, -1);
                b.jump(fl_top);
                b.bind(fl_done).unwrap();
                // Fill between.
                b.mv(Reg::T1, Reg::S2);
                let fill_done = b.new_label("fill_done");
                let fill_top = b.here("fill_top");
                b.branch(Cond::Ge, Reg::T1, Reg::S3, fill_done);
                b.add(Reg::T2, Reg::S1, Reg::T1);
                b.load(Reg::T3, Reg::T2, 0);
                if_cond(b, Cond::Eq, Reg::T3, Reg::ZERO, |b| {
                    b.li(Reg::T4, 2);
                    b.store(Reg::T4, Reg::T2, 0);
                    b.addi(Reg::S9, Reg::S9, 1);
                });
                b.addi(Reg::T1, Reg::T1, 1);
                b.jump(fill_top);
                b.bind(fill_done).unwrap();
            });
        });
        b.li(Reg::T0, OUT_PLOTTED);
        b.store(Reg::S8, Reg::T0, 0);
        b.li(Reg::T0, OUT_FILLED);
        b.store(Reg::S9, Reg::T0, 0);
    });

    let program = b.build().expect("gs assembles");
    Workload::new("gs", program, 1 << 16, vec![(SEGS as u64, segs)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(interp.error().is_none(), "gs faulted: {:?}", interp.error());
        let segs = data::segments(0x95C7, NSEGS, CANVAS as u64);
        let (plotted, filled) = reference(&segs);
        assert_eq!(interp.machine().mem(OUT_PLOTTED as u64), plotted);
        assert_eq!(interp.machine().mem(OUT_FILLED as u64), filled);
        assert!(plotted > 1000, "lines too short: {plotted}");
        assert!(filled > 1000, "spans too small: {filled}");
    }
}
