//! Deterministic synthetic input data for the benchmarks.
//!
//! Every generator takes an explicit seed so workloads are reproducible
//! bit-for-bit across runs and platforms.

use crate::rng::{Rng, Xoshiro256PlusPlus};

/// A seeded RNG for input synthesis.
#[must_use]
pub fn rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

/// Skewed "text" symbols in `0..alphabet`: a Zipf-ish distribution where
/// low symbols dominate, mimicking natural-language letter frequencies
/// (drives compress/perl/tex input).
#[must_use]
pub fn skewed_symbols(seed: u64, len: usize, alphabet: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..len)
        .map(|_| {
            // Fourth-power transform of a uniform: heavily favors small
            // values (P(x = 0) ≈ 35% for a 64-symbol alphabet), like
            // letter frequencies in natural text.
            let u: f64 = r.gen_range(0.0f64..1.0);
            ((alphabet as f64) * u * u * u * u) as u64
        })
        .collect()
}

/// Uniform random words below `bound`.
#[must_use]
pub fn uniform_words(seed: u64, len: usize, bound: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen_range(0..bound)).collect()
}

/// A random Go-like board: `size*size` words, each 0 (empty), 1 (black),
/// or 2 (white), with `fill_pct` percent of points occupied.
#[must_use]
pub fn board(seed: u64, size: usize, fill_pct: u32) -> Vec<u64> {
    let mut r = rng(seed);
    (0..size * size)
        .map(|_| {
            if r.gen_range(0..100) < fill_pct {
                1 + u64::from(r.gen_bool(0.5))
            } else {
                0
            }
        })
        .collect()
}

/// Grayscale "image" samples in `0..256` with smooth spatial structure
/// (sum of a ramp and noise), for the DCT benchmark.
#[must_use]
pub fn image(seed: u64, width: usize, height: usize) -> Vec<u64> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let ramp = ((x * 31 + y * 17) / 4) % 192;
            let noise = r.gen_range(0..64);
            out.push((ramp + noise) as u64);
        }
    }
    out
}

/// "Natural" text as words: a sequence of word ids with Zipf-like reuse
/// (high-frequency function words plus a long tail), for perl/tex.
#[must_use]
pub fn zipf_words(seed: u64, len: usize, vocab: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..len)
        .map(|_| {
            let u: f64 = r.gen_range(0.0f64..1.0).max(1e-9);
            // Inverse-power transform: rank ~ u^(-1/s) with s≈1.
            let rank = (1.0 / u).min(vocab as f64) as u64;
            rank - 1
        })
        .collect()
}

/// Random line segments `(x0, y0, x1, y1)` within a `bound`-sized canvas,
/// flattened, for the rasterizer.
#[must_use]
pub fn segments(seed: u64, count: usize, bound: u64) -> Vec<u64> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(count * 4);
    for _ in 0..count {
        out.push(r.gen_range(0..bound));
        out.push(r.gen_range(0..bound));
        out.push(r.gen_range(0..bound));
        out.push(r.gen_range(0..bound));
    }
    out
}

/// Pseudo-random odd multi-word big numbers for pgp: `words` 32-bit limbs
/// stored one per word.
#[must_use]
pub fn bignum(seed: u64, words: usize) -> Vec<u64> {
    let mut r = rng(seed);
    let mut out: Vec<u64> = (0..words).map(|_| u64::from(r.next_u32())).collect();
    out[0] |= 1; // odd
    out[words - 1] |= 0x8000_0000; // full width
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(skewed_symbols(7, 100, 32), skewed_symbols(7, 100, 32));
        assert_eq!(uniform_words(3, 50, 1000), uniform_words(3, 50, 1000));
        assert_ne!(uniform_words(3, 50, 1000), uniform_words(4, 50, 1000));
    }

    #[test]
    fn skewed_symbols_favor_small_values() {
        let v = skewed_symbols(1, 10_000, 64);
        let small = v.iter().filter(|&&x| x < 16).count();
        assert!(
            small > 6_000,
            "expected skew toward small symbols, got {small}/10000"
        );
        assert!(v.iter().all(|&x| x < 64));
    }

    #[test]
    fn board_fill_ratio_is_respected() {
        let b = board(2, 19, 40);
        let filled = b.iter().filter(|&&x| x != 0).count();
        let pct = filled * 100 / b.len();
        assert!((30..=50).contains(&pct), "fill {pct}% out of range");
        assert!(b.iter().all(|&x| x <= 2));
    }

    #[test]
    fn image_values_are_bytes() {
        let img = image(5, 64, 64);
        assert_eq!(img.len(), 64 * 64);
        assert!(img.iter().all(|&p| p < 256));
    }

    #[test]
    fn zipf_words_reuse_head_of_vocabulary() {
        let w = zipf_words(9, 10_000, 5_000);
        let head = w.iter().filter(|&&x| x < 10).count();
        assert!(head > 3_000, "Zipf head underrepresented: {head}/10000");
        assert!(w.iter().all(|&x| x < 5_000));
    }

    #[test]
    fn bignum_is_odd_and_full_width() {
        let n = bignum(11, 8);
        assert_eq!(n.len(), 8);
        assert_eq!(n[0] & 1, 1);
        assert!(n[7] >= 0x8000_0000);
        assert!(n.iter().all(|&l| l <= u64::from(u32::MAX)));
    }

    #[test]
    fn segments_within_bounds() {
        let s = segments(13, 100, 512);
        assert_eq!(s.len(), 400);
        assert!(s.iter().all(|&c| c < 512));
    }
}
