//! `sim-outorder` (`ss`): a discrete-event simulation kernel.
//!
//! Mirrors the SimpleScalar simulator the paper itself was built on: an
//! event loop popping from a queue, dispatching on event type, scheduling
//! follow-up events, and updating hashed statistics — a mix of biased
//! queue checks and data-dependent dispatch.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::kernels::{for_lt, if_cond, repeat_and_halt};
use crate::workload::Workload;

/// Event types.
const NTYPES: u64 = 5;
/// Ring capacity (power of two).
const QCAP: i64 = 1024;
/// Events processed per rep.
const BUDGET: i64 = 6000;

const QUEUE: i32 = 0x100; // ring of (type, payload) pairs -> 2 words each
const STATS: i32 = QUEUE + (QCAP * 2) as i32;
const OUT_PROCESSED: i32 = STATS + 64;
const OUT_CHECK: i32 = OUT_PROCESSED + 1;

/// The shared LCG both implementations use for event payloads.
fn lcg(state: u64) -> u64 {
    state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407)
}

/// Reference simulator: returns (processed, stats checksum).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference() -> (u64, u64) {
    let mut queue = std::collections::VecDeque::new();
    let mut stats = [0u64; 64];
    let mut rng: u64 = 0xDEAD_BEEF;
    queue.push_back((0u64, 1u64));
    queue.push_back((1, 2));
    let mut processed = 0u64;
    while processed < BUDGET as u64 {
        let Some((ty, payload)) = queue.pop_front() else {
            break;
        };
        processed += 1;
        stats[(payload % 64) as usize] = stats[(payload % 64) as usize]
            .wrapping_mul(3)
            .wrapping_add(ty + 1);
        rng = lcg(rng ^ payload);
        // Handlers: each type schedules differently (bounded by capacity).
        let room = QCAP as usize - 2 - queue.len();
        match ty {
            0 => {
                // Fork: two children.
                if room >= 2 {
                    queue.push_back((1, rng >> 5));
                    queue.push_back((2, rng >> 9));
                }
            }
            1 => {
                if room >= 1 {
                    queue.push_back(((rng >> 3) % NTYPES, payload.wrapping_add(rng & 0xFF)));
                }
            }
            2 => {
                // Conditional reschedule: data-dependent.
                if payload & 1 == 1 && room >= 1 {
                    queue.push_back((3, payload >> 1));
                }
            }
            3 => {
                if room >= 1 {
                    queue.push_back((4, payload.wrapping_mul(3)));
                }
            }
            _ => {
                // Sink: occasionally restart the cascade.
                if queue.is_empty() {
                    queue.push_back((0, rng & 0xFFFF));
                }
            }
        }
        if queue.is_empty() {
            queue.push_back((0, rng & 0xFFFF));
        }
    }
    let check = stats
        .iter()
        .fold(0u64, |a, &s| a.wrapping_mul(31).wrapping_add(s));
    (processed, check)
}

pub(crate) fn build(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    // S0 = head, S1 = tail (indices, masked), S2 = processed,
    // S3 = rng, A5 = QCAP-1 mask, S4/S5 = current (type, payload).
    b.li(Reg::A5, (QCAP - 1) as i32);

    // Helper: enqueue (T5=type, T6=payload) at tail.
    // Inlined at each site via closure.
    let enqueue = |b: &mut ProgramBuilder| {
        b.and(Reg::T7, Reg::S1, Reg::A5);
        b.shli(Reg::T7, Reg::T7, 1);
        b.addi(Reg::T7, Reg::T7, QUEUE);
        b.store(Reg::T5, Reg::T7, 0);
        b.store(Reg::T6, Reg::T7, 1);
        b.addi(Reg::S1, Reg::S1, 1);
    };
    // Helper: rng = lcg(rng ^ payload) — uses the same constants.
    let advance_rng = |b: &mut ProgramBuilder| {
        b.xor(Reg::S3, Reg::S3, Reg::S5);
        // 64-bit constants via li+shifts: C1 = 6364136223846793005.
        // Materialize from four 16-bit chunks.
        let c1: u64 = 6_364_136_223_846_793_005;
        let c2: u64 = 1_442_695_040_888_963_407;
        for (reg, c) in [(Reg::T5, c1), (Reg::T6, c2)] {
            b.li(reg, ((c >> 48) & 0xFFFF) as i32);
            for shift in [32, 16, 0] {
                b.shli(reg, reg, 16);
                b.li(Reg::T7, ((c >> shift) & 0xFFFF) as i32);
                b.or(reg, reg, Reg::T7);
            }
        }
        b.mul(Reg::S3, Reg::S3, Reg::T5);
        b.add(Reg::S3, Reg::S3, Reg::T6);
    };

    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        // Clear stats; seed queue and rng.
        b.li(Reg::T0, 0);
        let lim = Reg::T1;
        b.li(lim, 64);
        for_lt(b, Reg::T0, lim, |b| {
            b.addi(Reg::T2, Reg::T0, STATS);
            b.store(Reg::ZERO, Reg::T2, 0);
        });
        b.li(Reg::S0, 0).li(Reg::S1, 0).li(Reg::S2, 0);
        b.li(Reg::S3, 0xDEAD_BEEF_u32 as i32);
        // Mask the seed to the positive 32-bit value (li sign-extends).
        b.li(Reg::T0, -1);
        b.shri(Reg::T0, Reg::T0, 32);
        b.and(Reg::S3, Reg::S3, Reg::T0);
        // push (0,1), (1,2)
        b.li(Reg::T5, 0).li(Reg::T6, 1);
        enqueue(b);
        b.li(Reg::T5, 1).li(Reg::T6, 2);
        enqueue(b);

        // Event loop.
        let loop_done = b.new_label("ev_done");
        let loop_top = b.here("ev_top");
        b.li(Reg::T0, BUDGET as i32);
        b.branch(Cond::Geu, Reg::S2, Reg::T0, loop_done);
        b.beq(Reg::S0, Reg::S1, loop_done); // queue empty (defensive)
                                            // pop front.
        b.and(Reg::T0, Reg::S0, Reg::A5);
        b.shli(Reg::T0, Reg::T0, 1);
        b.addi(Reg::T0, Reg::T0, QUEUE);
        b.load(Reg::S4, Reg::T0, 0); // type
        b.load(Reg::S5, Reg::T0, 1); // payload
        b.addi(Reg::S0, Reg::S0, 1);
        b.addi(Reg::S2, Reg::S2, 1);
        // stats[payload % 64] = stats[..]*3 + ty + 1
        b.andi(Reg::T1, Reg::S5, 63);
        b.addi(Reg::T1, Reg::T1, STATS);
        b.load(Reg::T2, Reg::T1, 0);
        b.muli(Reg::T2, Reg::T2, 3);
        b.add(Reg::T2, Reg::T2, Reg::S4);
        b.addi(Reg::T2, Reg::T2, 1);
        b.store(Reg::T2, Reg::T1, 0);
        advance_rng(b);
        // room = QCAP - 2 - (tail - head)
        b.sub(Reg::S6, Reg::S1, Reg::S0);
        b.li(Reg::T0, (QCAP - 2) as i32);
        b.sub(Reg::S6, Reg::T0, Reg::S6); // S6 = room
                                          // Dispatch on type via compare chain (5 types).
        let after = b.new_label("after_dispatch");
        let mut arms = Vec::new();
        for t in 0..NTYPES {
            arms.push(b.new_label(format!("ty{t}")));
        }
        for (t, &arm) in arms.iter().enumerate() {
            b.li(Reg::T0, t as i32);
            b.beq(Reg::S4, Reg::T0, arm);
        }
        b.jump(after);
        // Type 0: fork two children if room >= 2.
        b.bind(arms[0]).unwrap();
        b.li(Reg::T0, 2);
        {
            let no = b.new_label("no_fork");
            b.branch(Cond::Lt, Reg::S6, Reg::T0, no);
            b.li(Reg::T5, 1);
            b.shri(Reg::T6, Reg::S3, 5);
            enqueue(b);
            b.li(Reg::T5, 2);
            b.shri(Reg::T6, Reg::S3, 9);
            enqueue(b);
            b.bind(no).unwrap();
        }
        b.jump(after);
        // Type 1: reschedule with random type.
        b.bind(arms[1]).unwrap();
        {
            let no = b.new_label("no_r1");
            b.branch(Cond::Lt, Reg::S6, Reg::ZERO, no); // room >= 1? S6 < 1
            b.li(Reg::T0, 1);
            b.branch(Cond::Lt, Reg::S6, Reg::T0, no);
            b.shri(Reg::T5, Reg::S3, 3);
            b.li(Reg::T0, NTYPES as i32);
            b.alu(tc_isa::AluOp::Rem, Reg::T5, Reg::T5, Reg::T0);
            b.andi(Reg::T6, Reg::S3, 0xFF);
            b.add(Reg::T6, Reg::S5, Reg::T6);
            enqueue(b);
            b.bind(no).unwrap();
        }
        b.jump(after);
        // Type 2: conditional on payload parity.
        b.bind(arms[2]).unwrap();
        {
            let no = b.new_label("no_r2");
            b.andi(Reg::T0, Reg::S5, 1);
            b.beqz(Reg::T0, no);
            b.li(Reg::T0, 1);
            b.branch(Cond::Lt, Reg::S6, Reg::T0, no);
            b.li(Reg::T5, 3);
            b.shri(Reg::T6, Reg::S5, 1);
            enqueue(b);
            b.bind(no).unwrap();
        }
        b.jump(after);
        // Type 3: multiply payload.
        b.bind(arms[3]).unwrap();
        {
            let no = b.new_label("no_r3");
            b.li(Reg::T0, 1);
            b.branch(Cond::Lt, Reg::S6, Reg::T0, no);
            b.li(Reg::T5, 4);
            b.muli(Reg::T6, Reg::S5, 3);
            enqueue(b);
            b.bind(no).unwrap();
        }
        b.jump(after);
        // Type 4: sink; restart only if queue is empty.
        b.bind(arms[4]).unwrap();
        {
            let no = b.new_label("no_r4");
            b.bne(Reg::S0, Reg::S1, no);
            b.li(Reg::T5, 0);
            b.li(Reg::T0, -1);
            b.shri(Reg::T0, Reg::T0, 48); // 0xFFFF
            b.and(Reg::T6, Reg::S3, Reg::T0);
            enqueue(b);
            b.bind(no).unwrap();
        }
        b.bind(after).unwrap();
        // Global guard: never leave the queue empty.
        {
            let no = b.new_label("no_guard");
            b.bne(Reg::S0, Reg::S1, no);
            b.li(Reg::T5, 0);
            b.li(Reg::T0, -1);
            b.shri(Reg::T0, Reg::T0, 48);
            b.and(Reg::T6, Reg::S3, Reg::T0);
            enqueue(b);
            b.bind(no).unwrap();
        }
        b.jump(loop_top);
        b.bind(loop_done).unwrap();

        // Publish.
        b.li(Reg::T0, OUT_PROCESSED);
        b.store(Reg::S2, Reg::T0, 0);
        b.li(Reg::S7, 0);
        b.li(Reg::T0, 0);
        let lim2 = Reg::T1;
        b.li(lim2, 64);
        for_lt(b, Reg::T0, lim2, |b| {
            b.addi(Reg::T2, Reg::T0, STATS);
            b.load(Reg::T2, Reg::T2, 0);
            b.muli(Reg::S7, Reg::S7, 31);
            b.add(Reg::S7, Reg::S7, Reg::T2);
        });
        b.li(Reg::T0, OUT_CHECK);
        b.store(Reg::S7, Reg::T0, 0);
        // Shape variety: a no-op if to exercise if_cond.
        if_cond(b, Cond::Eq, Reg::S7, Reg::S7, |b| {
            b.nop();
        });
    });

    let program = b.build().expect("ss assembles");
    Workload::new("sim-outorder", program, 1 << 13, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(interp.error().is_none(), "ss faulted: {:?}", interp.error());
        let (processed, check) = reference();
        assert_eq!(interp.machine().mem(OUT_PROCESSED as u64), processed);
        assert_eq!(interp.machine().mem(OUT_CHECK as u64), check);
        assert_eq!(processed, BUDGET as u64, "event cascade died early");
    }
}
