//! Generated routine families for the large-footprint benchmarks.
//!
//! `gcc` and `tex` owe their distinctive cache behavior to *lots of
//! distinct code*: hundreds of small semantic-action / formatting
//! routines. This module generates families of such routines from a seed:
//! each routine is a short, deterministic mix of ALU work, a
//! data-dependent branch, and sometimes a small counted loop. The same
//! description drives both the emitted assembly and a Rust evaluator, so
//! benchmark outputs remain checkable.

use crate::rng::Rng;
use tc_isa::{Cond, Label, ProgramBuilder, Reg};

use crate::data;

/// One step of a generated routine's body.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `acc = acc + (arg << k)`
    AddShifted(u32),
    /// `acc = acc ^ (acc >> k)`, k in 1..31
    XorShift(u32),
    /// `acc = acc * c` (odd constant)
    MulConst(u32),
    /// `acc = acc - arg`
    SubArg,
    /// `if acc & 1 { acc += c }` — data-dependent branch
    CondAdd(u32),
    /// `if acc < arg { acc = arg - acc } else { acc = acc - arg }`
    CondSwap,
    /// `for i in 0..n { acc = acc*3 + i }` — short biased loop
    Loop(u32),
}

/// A generated routine: a fixed sequence of steps.
#[derive(Debug, Clone)]
pub(crate) struct GenFunc {
    steps: Vec<Step>,
}

impl GenFunc {
    /// Evaluates the routine on `(acc, arg)` exactly as the emitted
    /// assembly does.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn eval(&self, mut acc: u64, arg: u64) -> u64 {
        for &s in &self.steps {
            match s {
                Step::AddShifted(k) => acc = acc.wrapping_add(arg << k),
                Step::XorShift(k) => acc ^= acc >> k,
                Step::MulConst(c) => acc = acc.wrapping_mul(u64::from(c)),
                Step::SubArg => acc = acc.wrapping_sub(arg),
                Step::CondAdd(c) => {
                    if acc & 1 == 1 {
                        acc = acc.wrapping_add(u64::from(c));
                    }
                }
                Step::CondSwap => {
                    acc = if acc < arg {
                        arg.wrapping_sub(acc)
                    } else {
                        acc.wrapping_sub(arg)
                    };
                }
                Step::Loop(n) => {
                    for i in 0..u64::from(n) {
                        acc = acc.wrapping_mul(3).wrapping_add(i);
                    }
                }
            }
        }
        acc
    }

    /// Emits the routine body as a callable function bound at `label`:
    /// takes `A0 = acc`, `A1 = arg`, returns `A0`. Clobbers T0–T2 only.
    pub(crate) fn emit(&self, b: &mut ProgramBuilder, label: Label) {
        b.bind(label).expect("generated function label bound once");
        for &s in &self.steps {
            match s {
                Step::AddShifted(k) => {
                    b.shli(Reg::T0, Reg::A1, k as i32);
                    b.add(Reg::A0, Reg::A0, Reg::T0);
                }
                Step::XorShift(k) => {
                    b.shri(Reg::T0, Reg::A0, k as i32);
                    b.xor(Reg::A0, Reg::A0, Reg::T0);
                }
                Step::MulConst(c) => {
                    b.muli(Reg::A0, Reg::A0, c as i32);
                }
                Step::SubArg => {
                    b.sub(Reg::A0, Reg::A0, Reg::A1);
                }
                Step::CondAdd(c) => {
                    let skip = b.new_label("gf_skip");
                    b.andi(Reg::T0, Reg::A0, 1);
                    b.beqz(Reg::T0, skip);
                    b.addi(Reg::A0, Reg::A0, c as i32);
                    b.bind(skip).unwrap();
                }
                Step::CondSwap => {
                    let ge = b.new_label("gf_ge");
                    let done = b.new_label("gf_done");
                    b.branch(Cond::Geu, Reg::A0, Reg::A1, ge);
                    b.sub(Reg::A0, Reg::A1, Reg::A0);
                    b.jump(done);
                    b.bind(ge).unwrap();
                    b.sub(Reg::A0, Reg::A0, Reg::A1);
                    b.bind(done).unwrap();
                }
                Step::Loop(n) => {
                    let top = b.new_label("gf_loop");
                    let done = b.new_label("gf_loop_done");
                    b.li(Reg::T0, 0);
                    b.li(Reg::T1, n as i32);
                    b.bind(top).unwrap();
                    b.branch(Cond::Ge, Reg::T0, Reg::T1, done);
                    b.muli(Reg::A0, Reg::A0, 3);
                    b.add(Reg::A0, Reg::A0, Reg::T0);
                    b.addi(Reg::T0, Reg::T0, 1);
                    b.jump(top);
                    b.bind(done).unwrap();
                }
            }
        }
        b.ret();
    }
}

/// Generates a family of `count` routines from `seed`.
pub(crate) fn family(seed: u64, count: usize) -> Vec<GenFunc> {
    let mut r = data::rng(seed);
    (0..count)
        .map(|_| {
            let len = r.gen_range(4..11);
            let steps = (0..len)
                .map(|_| match r.gen_range(0..7u32) {
                    0 => Step::AddShifted(r.gen_range(0..8)),
                    1 => Step::XorShift(r.gen_range(1..31)),
                    2 => Step::MulConst(r.gen_range(3u32..0x7FFF) | 1),
                    3 => Step::SubArg,
                    4 => Step::CondAdd(r.gen_range(1..0x1000)),
                    5 => Step::CondSwap,
                    _ => Step::Loop(r.gen_range(2..6)),
                })
                .collect();
            GenFunc { steps }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_isa::Interpreter;

    #[test]
    fn emitted_assembly_matches_eval() {
        let funcs = family(42, 16);
        for (fi, f) in funcs.iter().enumerate() {
            let mut b = ProgramBuilder::new();
            let lbl = b.new_label("f");
            let start = b.new_label("start");
            b.jump(start);
            f.emit(&mut b, lbl);
            b.bind(start).unwrap();
            // Call with a couple of operand pairs.
            b.li(Reg::A0, 0x1234).li(Reg::A1, 0x77).call(lbl);
            b.mv(Reg::S0, Reg::A0);
            b.li(Reg::A0, -5).li(Reg::A1, 3).call(lbl);
            b.halt();
            let p = b.build().unwrap();
            let mut i = Interpreter::new(&p, 256);
            i.by_ref().for_each(drop);
            assert!(i.error().is_none(), "func {fi} faulted");
            assert_eq!(
                i.machine().reg(Reg::S0),
                f.eval(0x1234, 0x77),
                "func {fi} first call"
            );
            assert_eq!(
                i.machine().reg(Reg::A0),
                f.eval((-5i64) as u64, 3),
                "func {fi} second call"
            );
        }
    }

    #[test]
    fn family_is_deterministic_and_diverse() {
        let a = family(7, 32);
        let b = family(7, 32);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.eval(99, 3), y.eval(99, 3));
        }
        // Diversity: most functions should map the same input differently.
        let outs: std::collections::HashSet<u64> = a.iter().map(|f| f.eval(99, 3)).collect();
        assert!(
            outs.len() > 24,
            "generated functions too similar: {} distinct",
            outs.len()
        );
    }
}
