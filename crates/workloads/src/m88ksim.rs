//! `m88ksim`: an instruction-set interpreter interpreting a guest RISC
//! program.
//!
//! Mirrors SPECint95 `124.m88ksim` (a Motorola 88100 simulator): a
//! fetch/decode/dispatch loop over guest instructions, guest register
//! file and memory updates, and a guest branch handler. Dispatch-target
//! patterns are periodic (the guest runs loops), exactly the behavior
//! that makes simulator workloads distinctive.

use tc_isa::{ProgramBuilder, Reg};

use crate::kernels::{for_lt, jump_table, repeat_and_halt};
use crate::workload::Workload;

/// Guest instruction encoding: `op << 24 | rd << 20 | rs1 << 16 | rs2 << 12 | imm`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum GOp {
    /// rd = rs1 + rs2
    Add(u8, u8, u8),
    /// rd = rs1 - rs2
    Sub(u8, u8, u8),
    /// rd = rs1 * rs2
    Mul(u8, u8, u8),
    /// rd = imm
    Li(u8, u16),
    /// rd = gmem[rs1 + imm]
    Ld(u8, u8, u16),
    /// gmem[rs1 + imm] = rd
    St(u8, u8, u16),
    /// if rs1 != rs2 goto imm
    Bne(u8, u8, u16),
    /// if rs1 < rs2 (signed) goto imm
    Blt(u8, u8, u16),
    /// stop
    Stop,
}

impl GOp {
    fn encode(self) -> u64 {
        let (op, rd, rs1, rs2, imm) = match self {
            GOp::Add(d, a, b) => (0u64, d, a, b, 0u16),
            GOp::Sub(d, a, b) => (1, d, a, b, 0),
            GOp::Mul(d, a, b) => (2, d, a, b, 0),
            GOp::Li(d, i) => (3, d, 0, 0, i),
            GOp::Ld(d, a, i) => (4, d, a, 0, i),
            GOp::St(d, a, i) => (5, d, a, 0, i),
            GOp::Bne(a, b, t) => (6, 0, a, b, t),
            GOp::Blt(a, b, t) => (7, 0, a, b, t),
            GOp::Stop => (8, 0, 0, 0, 0),
        };
        (op << 24)
            | (u64::from(rd) << 20)
            | (u64::from(rs1) << 16)
            | (u64::from(rs2) << 12)
            | u64::from(imm)
    }
}

/// The guest program: initializes a table, then runs a checksum loop over
/// it with an inner multiply chain — a typical embedded-style kernel.
pub(crate) fn guest_program() -> Vec<GOp> {
    use GOp::*;
    let mut p = Vec::new();
    // r1 = i, r2 = N, r3 = scratch, r4 = checksum, r5 = one
    p.push(Li(1, 0)); // i = 0
    p.push(Li(2, 48)); // N
    p.push(Li(5, 1));
    // init loop: gmem[i] = i*i + 3
    let init_top = p.len() as u16; // 3
    p.push(Mul(3, 1, 1));
    p.push(Li(6, 3));
    p.push(Add(3, 3, 6));
    p.push(St(3, 1, 0));
    p.push(Add(1, 1, 5));
    p.push(Blt(1, 2, init_top));
    // checksum loop: r4 = r4*7 + gmem[i] - i
    p.push(Li(1, 0));
    p.push(Li(4, 0));
    let sum_top = p.len() as u16;
    p.push(Ld(3, 1, 0));
    p.push(Li(6, 7));
    p.push(Mul(4, 4, 6));
    p.push(Add(4, 4, 3));
    p.push(Sub(4, 4, 1));
    p.push(Add(1, 1, 5));
    p.push(Blt(1, 2, sum_top));
    // Countdown drain loop exercising the BNE handler (r0 stays 0).
    p.push(Li(7, 5));
    let dec_top = p.len() as u16;
    p.push(Sub(7, 7, 5));
    p.push(Bne(7, 0, dec_top));
    // store checksum to gmem[63]
    p.push(St(4, 0, 63));
    p.push(Stop);
    p
}

/// Reference interpreter: returns final guest checksum (gmem[63]).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(prog: &[GOp]) -> u64 {
    let mut regs = [0u64; 16];
    let mut gmem = [0u64; 64];
    let mut pc = 0usize;
    loop {
        let op = prog[pc];
        pc += 1;
        match op {
            GOp::Add(d, a, b) => regs[d as usize] = regs[a as usize].wrapping_add(regs[b as usize]),
            GOp::Sub(d, a, b) => regs[d as usize] = regs[a as usize].wrapping_sub(regs[b as usize]),
            GOp::Mul(d, a, b) => regs[d as usize] = regs[a as usize].wrapping_mul(regs[b as usize]),
            GOp::Li(d, i) => regs[d as usize] = u64::from(i),
            GOp::Ld(d, a, i) => {
                regs[d as usize] = gmem[(regs[a as usize] as usize + i as usize) & 63];
            }
            GOp::St(d, a, i) => {
                gmem[(regs[a as usize] as usize + i as usize) & 63] = regs[d as usize];
            }
            GOp::Bne(a, b, t) => {
                if regs[a as usize] != regs[b as usize] {
                    pc = t as usize;
                }
            }
            GOp::Blt(a, b, t) => {
                if (regs[a as usize] as i64) < (regs[b as usize] as i64) {
                    pc = t as usize;
                }
            }
            GOp::Stop => break,
        }
    }
    gmem[63]
}

const GPROG: i32 = 0x100;
const GREGS: i32 = 0x200;
const GMEM: i32 = GREGS + 16;
const DISPATCH_TABLE: i32 = GMEM + 64;
const OUT_CHECK: i32 = DISPATCH_TABLE + 16;

pub(crate) fn build(scale: u32) -> Workload {
    let guest: Vec<u64> = guest_program().iter().map(|o| o.encode()).collect();

    let mut b = ProgramBuilder::new();
    // S0 = guest pc, S2 = GPROG, S3 = GREGS, S4 = table, S5..: decoded
    // fields rd/rs1/rs2/imm in S5,S6,S7,A0. A5 = GMEM.
    b.li(Reg::S2, GPROG)
        .li(Reg::S3, GREGS)
        .li(Reg::S4, DISPATCH_TABLE)
        .li(Reg::A5, GMEM);

    let handlers: Vec<_> = (0..9).map(|i| b.new_label(format!("g{i}"))).collect();
    let dispatch = b.new_label("dispatch");
    let vm_done = b.new_label("vm_done");
    let start = b.new_label("start");

    for (i, &h) in handlers.iter().enumerate() {
        b.la(Reg::T0, h);
        b.li(Reg::T1, DISPATCH_TABLE + i as i32);
        b.store(Reg::T0, Reg::T1, 0);
    }
    b.jump(start);

    // --- Fetch/decode/dispatch ---
    b.bind(dispatch).unwrap();
    b.add(Reg::T0, Reg::S2, Reg::S0);
    b.load(Reg::T1, Reg::T0, 0);
    b.addi(Reg::S0, Reg::S0, 1);
    b.shri(Reg::T2, Reg::T1, 24); // op
    b.shri(Reg::S5, Reg::T1, 20);
    b.andi(Reg::S5, Reg::S5, 15); // rd
    b.shri(Reg::S6, Reg::T1, 16);
    b.andi(Reg::S6, Reg::S6, 15); // rs1
    b.shri(Reg::S7, Reg::T1, 12);
    b.andi(Reg::S7, Reg::S7, 15); // rs2
    b.li(Reg::T3, 0xFFF);
    b.and(Reg::A0, Reg::T1, Reg::T3); // imm (12 bits used)
    jump_table(&mut b, Reg::S4, Reg::T2, Reg::T4);

    // Helper closure-style emission for the three ALU handlers.
    // reg read: T0 = gregs[S6], T1 = gregs[S7]; write: gregs[S5] = T0.
    for (i, kind) in [(0usize, 0u8), (1, 1), (2, 2)] {
        b.bind(handlers[i]).unwrap();
        b.add(Reg::T0, Reg::S3, Reg::S6);
        b.load(Reg::T0, Reg::T0, 0);
        b.add(Reg::T1, Reg::S3, Reg::S7);
        b.load(Reg::T1, Reg::T1, 0);
        match kind {
            0 => {
                b.add(Reg::T0, Reg::T0, Reg::T1);
            }
            1 => {
                b.sub(Reg::T0, Reg::T0, Reg::T1);
            }
            _ => {
                b.mul(Reg::T0, Reg::T0, Reg::T1);
            }
        }
        b.add(Reg::T1, Reg::S3, Reg::S5);
        b.store(Reg::T0, Reg::T1, 0);
        b.jump(dispatch);
    }
    // 3: LI
    b.bind(handlers[3]).unwrap();
    b.add(Reg::T0, Reg::S3, Reg::S5);
    b.store(Reg::A0, Reg::T0, 0);
    b.jump(dispatch);
    // 4: LD rd, [rs1 + imm]
    b.bind(handlers[4]).unwrap();
    b.add(Reg::T0, Reg::S3, Reg::S6);
    b.load(Reg::T0, Reg::T0, 0);
    b.add(Reg::T0, Reg::T0, Reg::A0);
    b.andi(Reg::T0, Reg::T0, 63);
    b.add(Reg::T0, Reg::T0, Reg::A5);
    b.load(Reg::T0, Reg::T0, 0);
    b.add(Reg::T1, Reg::S3, Reg::S5);
    b.store(Reg::T0, Reg::T1, 0);
    b.jump(dispatch);
    // 5: ST rd, [rs1 + imm]
    b.bind(handlers[5]).unwrap();
    b.add(Reg::T0, Reg::S3, Reg::S6);
    b.load(Reg::T0, Reg::T0, 0);
    b.add(Reg::T0, Reg::T0, Reg::A0);
    b.andi(Reg::T0, Reg::T0, 63);
    b.add(Reg::T0, Reg::T0, Reg::A5);
    b.add(Reg::T1, Reg::S3, Reg::S5);
    b.load(Reg::T1, Reg::T1, 0);
    b.store(Reg::T1, Reg::T0, 0);
    b.jump(dispatch);
    // 6: BNE, 7: BLT
    for (i, is_blt) in [(6usize, false), (7, true)] {
        b.bind(handlers[i]).unwrap();
        b.add(Reg::T0, Reg::S3, Reg::S6);
        b.load(Reg::T0, Reg::T0, 0);
        b.add(Reg::T1, Reg::S3, Reg::S7);
        b.load(Reg::T1, Reg::T1, 0);
        let no = b.new_label("gb_no");
        if is_blt {
            b.branch(tc_isa::Cond::Ge, Reg::T0, Reg::T1, no);
        } else {
            b.beq(Reg::T0, Reg::T1, no);
        }
        b.mv(Reg::S0, Reg::A0);
        b.bind(no).unwrap();
        b.jump(dispatch);
    }
    // 8: STOP
    b.bind(handlers[8]).unwrap();
    b.jump(vm_done);

    // --- Driver ---
    b.bind(start).unwrap();
    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        // Clear guest regs and memory.
        b.li(Reg::T0, 0);
        let lim = Reg::T1;
        b.li(lim, 16 + 64);
        for_lt(b, Reg::T0, lim, |b| {
            b.add(Reg::T2, Reg::S3, Reg::T0);
            b.store(Reg::ZERO, Reg::T2, 0);
        });
        b.li(Reg::S0, 0);
        let resume = b.new_label("resume");
        b.la(Reg::S8, resume);
        b.jump(dispatch);
        b.bind(vm_done).unwrap();
        b.jr(Reg::S8);
        b.bind(resume).unwrap();
        // Publish gmem[63].
        b.load(Reg::T0, Reg::A5, 63);
        b.li(Reg::T1, OUT_CHECK);
        b.store(Reg::T0, Reg::T1, 0);
    });

    let program = b.build().expect("m88ksim assembles");
    Workload::new("m88ksim", program, 1 << 13, vec![(GPROG as u64, guest)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "m88ksim faulted: {:?}",
            interp.error()
        );
        let expected = reference(&guest_program());
        assert_eq!(interp.machine().mem(OUT_CHECK as u64), expected);
        assert_ne!(expected, 0);
    }

    #[test]
    fn guest_loops_make_periodic_dispatch() {
        let stats = build(4).stream_stats(300_000);
        // An interpreter's signature: indirect dispatch dominates control
        // flow (conditional branches are rare in the handlers).
        let per_kilo = stats.indirect * 1000 / stats.instructions.max(1);
        assert!(
            per_kilo > 25,
            "expected heavy indirect dispatch, got {per_kilo}/1000"
        );
    }
}
