//! The benchmark suite enumeration (the paper's Table 1).

use std::fmt;

use crate::workload::Workload;

/// One of the fifteen benchmarks of the paper's Table 1.
///
/// Eight SPECint95 programs plus seven common UNIX applications. Each
/// builds into a [`Workload`] — see the crate docs for what each
/// synthetic equivalent computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// LZW-style compressor (SPECint95 `129.compress`).
    Compress,
    /// Lexer + parser FSM with many action routines (`126.gcc`).
    Gcc,
    /// Board influence and group search (`099.go`).
    Go,
    /// Integer DCT image coder (`132.ijpeg`).
    Ijpeg,
    /// Cons-cell list interpreter (`130.li`).
    Li,
    /// Guest-ISA interpreter (`124.m88ksim`).
    M88ksim,
    /// Text search and word hashing (`134.perl`).
    Perl,
    /// Indexed object store (`147.vortex`).
    Vortex,
    /// Alpha-beta game-tree search (gnuchess).
    Gnuchess,
    /// Rasterizer and span fill (ghostscript).
    Ghostscript,
    /// Modular exponentiation (pgp).
    Pgp,
    /// Stack bytecode VM (python).
    Python,
    /// Curve evaluation and clipping (gnuplot).
    Gnuplot,
    /// Discrete-event simulator (sim-outorder / `ss`).
    SimOutorder,
    /// Hyphenation and line breaking (tex).
    Tex,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 15] = [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Ijpeg,
        Benchmark::Li,
        Benchmark::M88ksim,
        Benchmark::Perl,
        Benchmark::Vortex,
        Benchmark::Gnuchess,
        Benchmark::Ghostscript,
        Benchmark::Pgp,
        Benchmark::Python,
        Benchmark::Gnuplot,
        Benchmark::SimOutorder,
        Benchmark::Tex,
    ];

    /// The benchmark's name as the paper prints it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::Li => "li",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Perl => "perl",
            Benchmark::Vortex => "vortex",
            Benchmark::Gnuchess => "gnuchess",
            Benchmark::Ghostscript => "gs",
            Benchmark::Pgp => "pgp",
            Benchmark::Python => "python",
            Benchmark::Gnuplot => "gnuplot",
            Benchmark::SimOutorder => "ss",
            Benchmark::Tex => "tex",
        }
    }

    /// The short column label used in the paper's figures.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Benchmark::Compress => "comp",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::Li => "li",
            Benchmark::M88ksim => "m88k",
            Benchmark::Perl => "perl",
            Benchmark::Vortex => "vor",
            Benchmark::Gnuchess => "ch",
            Benchmark::Ghostscript => "gs",
            Benchmark::Pgp => "pgp",
            Benchmark::Python => "py",
            Benchmark::Gnuplot => "plot",
            Benchmark::SimOutorder => "ss",
            Benchmark::Tex => "tex",
        }
    }

    /// Builds the workload at the default scale (enough dynamic
    /// instructions for multi-million-instruction simulations).
    #[must_use]
    pub fn build(self) -> Workload {
        self.build_scaled(self.default_scale())
    }

    /// Builds the workload with an explicit outer-repetition scale.
    #[must_use]
    pub fn build_scaled(self, scale: u32) -> Workload {
        match self {
            Benchmark::Compress => crate::compress::build(scale),
            Benchmark::Gcc => crate::gcc::build(scale),
            Benchmark::Go => crate::go::build(scale),
            Benchmark::Ijpeg => crate::ijpeg::build(scale),
            Benchmark::Li => crate::li::build(scale),
            Benchmark::M88ksim => crate::m88ksim::build(scale),
            Benchmark::Perl => crate::perl::build(scale),
            Benchmark::Vortex => crate::vortex::build(scale),
            Benchmark::Gnuchess => crate::chess::build(scale),
            Benchmark::Ghostscript => crate::gs::build(scale),
            Benchmark::Pgp => crate::pgp::build(scale),
            Benchmark::Python => crate::python::build(scale),
            Benchmark::Gnuplot => crate::plot::build(scale),
            Benchmark::SimOutorder => crate::ss::build(scale),
            Benchmark::Tex => crate::tex::build(scale),
        }
    }

    /// Repetitions chosen so one build comfortably exceeds ~10M dynamic
    /// instructions (per-rep costs differ by benchmark).
    fn default_scale(self) -> u32 {
        match self {
            Benchmark::Compress => 24,
            Benchmark::Gcc => 32,
            Benchmark::Go => 64,
            Benchmark::Ijpeg => 16,
            Benchmark::Li => 64,
            Benchmark::M88ksim => 512,
            Benchmark::Perl => 24,
            Benchmark::Vortex => 48,
            Benchmark::Gnuchess => 24,
            Benchmark::Ghostscript => 48,
            Benchmark::Pgp => 12,
            Benchmark::Python => 256,
            Benchmark::Gnuplot => 48,
            Benchmark::SimOutorder => 24,
            Benchmark::Tex => 24,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_fifteen_distinct_benchmarks() {
        let names: std::collections::HashSet<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::SimOutorder.to_string(), "ss");
        assert_eq!(Benchmark::Ghostscript.to_string(), "gs");
    }
}
