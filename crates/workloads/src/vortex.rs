//! `vortex`: an object-store with B-tree-style indexed transactions.
//!
//! Mirrors SPECint95 `147.vortex` (an OO database): a three-level index
//! of sorted nodes searched by binary search (hard-to-predict compares),
//! record updates, and a call-per-transaction structure.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, if_else, repeat_and_halt};
use crate::workload::Workload;

/// Index geometry: root node of FANOUT keys, FANOUT mid nodes, FANOUT²
/// leaf nodes of LEAF_KEYS records each.
const FANOUT: usize = 16;
const LEAF_KEYS: usize = 16;
const NKEYS: usize = FANOUT * FANOUT * LEAF_KEYS; // 4096 records
const NQUERIES: usize = 2048;

const ROOT: i32 = 0x100;
const MID: i32 = ROOT + FANOUT as i32;
const LEAVES: i32 = MID + (FANOUT * FANOUT) as i32;
const VALUES: i32 = LEAVES + NKEYS as i32;
const QUERIES: i32 = VALUES + NKEYS as i32;
const OUT_FOUND: i32 = QUERIES + NQUERIES as i32;
const OUT_SUM: i32 = OUT_FOUND + 1;

/// Key space: keys are `i * 7 + 3` so queries mix hits and misses.
fn key_of(i: usize) -> u64 {
    (i as u64) * 7 + 3
}

/// Builds (root, mid, leaves, values): a static sorted index.
fn index_image() -> (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>) {
    let leaves: Vec<u64> = (0..NKEYS).map(key_of).collect();
    let values: Vec<u64> = (0..NKEYS)
        .map(|i| (i as u64).wrapping_mul(0xABCD) & 0xFFFF)
        .collect();
    // mid[m] = first key of leaf block m; root[r] = first key of mid block r.
    let mid: Vec<u64> = (0..FANOUT * FANOUT)
        .map(|m| leaves[m * LEAF_KEYS])
        .collect();
    let root: Vec<u64> = (0..FANOUT).map(|r| mid[r * FANOUT]).collect();
    (root, mid, leaves, values)
}

/// Reference: returns (hits, value sum of hits).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference(queries: &[u64]) -> (u64, u64) {
    let (root, mid, leaves, values) = index_image();
    let mut found = 0u64;
    let mut sum = 0u64;
    for &q in queries {
        // Descend: pick last root slot with key <= q (linear scan, as the
        // asm does for the small root), then binary search.
        let mut r = 0usize;
        while r + 1 < FANOUT && root[r + 1] <= q {
            r += 1;
        }
        let mid_base = r * FANOUT;
        let mut m = mid_base;
        while m + 1 < mid_base + FANOUT && mid[m + 1] <= q {
            m += 1;
        }
        // Binary search within the leaf block.
        let leaf_base = m * LEAF_KEYS;
        let (mut lo, mut hi) = (leaf_base, leaf_base + LEAF_KEYS);
        while lo < hi {
            let mididx = (lo + hi) / 2;
            if leaves[mididx] < q {
                lo = mididx + 1;
            } else {
                hi = mididx;
            }
        }
        if lo < leaf_base + LEAF_KEYS && leaves[lo] == q {
            found += 1;
            sum = sum.wrapping_add(values[lo]);
        }
    }
    (found, sum)
}

pub(crate) fn build(scale: u32) -> Workload {
    let (root, mid, leaves, values) = index_image();
    // Queries: half are present keys, half are uniform misses.
    let mut queries = Vec::with_capacity(NQUERIES);
    let present = data::uniform_words(0x0BEE, NQUERIES / 2, NKEYS as u64);
    let misses = data::uniform_words(0x0FAD, NQUERIES / 2, key_of(NKEYS) + 100);
    for i in 0..NQUERIES / 2 {
        queries.push(key_of(present[i] as usize));
        queries.push(misses[i]);
    }

    let mut b = ProgramBuilder::new();
    let lookup = b.new_label("lookup");
    let start = b.new_label("start");
    b.jump(start);

    // --- fn lookup(A0: key) -> A0: value+1, or 0 if absent ---
    b.bind(lookup).unwrap();
    // Root scan: r (T0) = last slot with root[r+1] <= key.
    b.li(Reg::T0, 0);
    {
        let done = b.new_label("root_done");
        let top = b.here("root_top");
        b.addi(Reg::T1, Reg::T0, 1);
        b.li(Reg::T2, FANOUT as i32);
        b.branch(Cond::Geu, Reg::T1, Reg::T2, done);
        b.addi(Reg::T3, Reg::T1, ROOT);
        b.load(Reg::T3, Reg::T3, 0);
        b.branch(Cond::Ltu, Reg::A0, Reg::T3, done);
        b.mv(Reg::T0, Reg::T1);
        b.jump(top);
        b.bind(done).unwrap();
    }
    // Mid scan over mid[r*F .. r*F+F].
    b.muli(Reg::T4, Reg::T0, FANOUT as i32); // mid_base
    b.mv(Reg::T5, Reg::T4); // m
    {
        let done = b.new_label("mid_done");
        let top = b.here("mid_top");
        b.addi(Reg::T1, Reg::T5, 1);
        b.addi(Reg::T2, Reg::T4, FANOUT as i32);
        b.branch(Cond::Geu, Reg::T1, Reg::T2, done);
        b.addi(Reg::T3, Reg::T1, MID);
        b.load(Reg::T3, Reg::T3, 0);
        b.branch(Cond::Ltu, Reg::A0, Reg::T3, done);
        b.mv(Reg::T5, Reg::T1);
        b.jump(top);
        b.bind(done).unwrap();
    }
    // Binary search leaves[m*L .. m*L+L): lo (T6), hi (T7).
    b.muli(Reg::T6, Reg::T5, LEAF_KEYS as i32);
    b.addi(Reg::T7, Reg::T6, LEAF_KEYS as i32);
    b.mv(Reg::A1, Reg::T7); // leaf limit for the final check
    {
        let done = b.new_label("bs_done");
        let top = b.here("bs_top");
        b.branch(Cond::Geu, Reg::T6, Reg::T7, done);
        b.add(Reg::T1, Reg::T6, Reg::T7);
        b.shri(Reg::T1, Reg::T1, 1); // mid index
        b.addi(Reg::T2, Reg::T1, LEAVES);
        b.load(Reg::T2, Reg::T2, 0);
        if_else(
            &mut b,
            Cond::Ltu,
            Reg::T2,
            Reg::A0,
            |b| {
                b.addi(Reg::T6, Reg::T1, 1);
            },
            |b| {
                b.mv(Reg::T7, Reg::T1);
            },
        );
        b.jump(top);
        b.bind(done).unwrap();
    }
    // if lo < limit && leaves[lo] == key: return values[lo]+1 else 0.
    {
        let miss = b.new_label("miss");
        let out = b.new_label("out");
        b.branch(Cond::Geu, Reg::T6, Reg::A1, miss);
        b.addi(Reg::T1, Reg::T6, LEAVES);
        b.load(Reg::T1, Reg::T1, 0);
        b.bne(Reg::T1, Reg::A0, miss);
        b.addi(Reg::T1, Reg::T6, VALUES);
        b.load(Reg::A0, Reg::T1, 0);
        b.addi(Reg::A0, Reg::A0, 1);
        b.jump(out);
        b.bind(miss).unwrap();
        b.li(Reg::A0, 0);
        b.bind(out).unwrap();
    }
    b.ret();

    // --- Driver ---
    b.bind(start).unwrap();
    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        b.li(Reg::S5, 0); // found
        b.li(Reg::S6, 0); // sum
        b.li(Reg::S0, 0);
        let lim = Reg::S1;
        b.li(lim, NQUERIES as i32);
        for_lt(b, Reg::S0, lim, |b| {
            b.addi(Reg::T0, Reg::S0, QUERIES);
            b.load(Reg::A0, Reg::T0, 0);
            b.call(lookup);
            let absent = b.new_label("absent");
            b.beqz(Reg::A0, absent);
            b.addi(Reg::S5, Reg::S5, 1);
            b.addi(Reg::A0, Reg::A0, -1);
            b.add(Reg::S6, Reg::S6, Reg::A0);
            b.bind(absent).unwrap();
        });
        b.li(Reg::T0, OUT_FOUND);
        b.store(Reg::S5, Reg::T0, 0);
        b.li(Reg::T0, OUT_SUM);
        b.store(Reg::S6, Reg::T0, 0);
    });

    let program = b.build().expect("vortex assembles");
    Workload::new(
        "vortex",
        program,
        1 << 15,
        vec![
            (ROOT as u64, root),
            (MID as u64, mid),
            (LEAVES as u64, leaves),
            (VALUES as u64, values),
            (QUERIES as u64, queries),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn built_queries() -> Vec<u64> {
        let mut queries = Vec::with_capacity(NQUERIES);
        let present = data::uniform_words(0x0BEE, NQUERIES / 2, NKEYS as u64);
        let misses = data::uniform_words(0x0FAD, NQUERIES / 2, key_of(NKEYS) + 100);
        for i in 0..NQUERIES / 2 {
            queries.push(key_of(present[i] as usize));
            queries.push(misses[i]);
        }
        queries
    }

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "vortex faulted: {:?}",
            interp.error()
        );
        let (found, sum) = reference(&built_queries());
        assert_eq!(interp.machine().mem(OUT_FOUND as u64), found);
        assert_eq!(interp.machine().mem(OUT_SUM as u64), sum);
        // Half the queries are planted hits; misses can accidentally hit.
        assert!(found >= (NQUERIES / 2) as u64, "lookups broken: {found}");
    }

    #[test]
    fn value_plus_one_cannot_collide_with_miss() {
        // The lookup returns value+1 for hits; ensure no value is u64::MAX.
        let (_, _, _, values) = index_image();
        assert!(values.iter().all(|&v| v < u64::MAX));
    }
}
