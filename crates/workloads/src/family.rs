//! Workload families: the synthetic suite plus compiled RV32I programs.
//!
//! [`Benchmark`] stays the paper's fifteen-entry synthetic suite;
//! [`RvBench`] enumerates the committed RV32I programs translated by
//! `tc-rv`; [`WorkloadId`] unifies both behind one buildable, nameable
//! identifier. Harness APIs accept `impl Into<WorkloadId>` so existing
//! `Benchmark`-typed call sites keep compiling unchanged.

use std::fmt;

use crate::suite::Benchmark;
use crate::workload::Workload;
use tc_rv::RvProgram;

/// One of the committed RV32I workloads (the `rv/` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RvBench {
    /// Bubble sort over a reseeded 16-word array.
    Bubble,
    /// Recursive quicksort with real stack frames.
    Qsort,
    /// Byte-wise strlen/strcpy/memset kernels.
    Strops,
    /// 8x8 integer matmul with shift-add multiply.
    Matmul,
    /// Pointer chasing over a 256-node linked list.
    Listchase,
    /// Naively recursive fibonacci.
    Fib,
    /// Bitwise CRC-32 over a small buffer.
    Crc,
    /// Sieve of Eratosthenes over a byte array.
    Sieve,
    /// Binary search with data-dependent branches.
    Bsearch,
    /// Jump-table interpreter dispatch loop.
    Dispatch,
}

impl RvBench {
    /// Every RV32I workload, in listing order.
    pub const ALL: [RvBench; 10] = [
        RvBench::Bubble,
        RvBench::Qsort,
        RvBench::Strops,
        RvBench::Matmul,
        RvBench::Listchase,
        RvBench::Fib,
        RvBench::Crc,
        RvBench::Sieve,
        RvBench::Bsearch,
        RvBench::Dispatch,
    ];

    /// The family-qualified name shown by the CLI (`rv/<name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RvBench::Bubble => "rv/bubble",
            RvBench::Qsort => "rv/qsort",
            RvBench::Strops => "rv/strops",
            RvBench::Matmul => "rv/matmul",
            RvBench::Listchase => "rv/listchase",
            RvBench::Fib => "rv/fib",
            RvBench::Crc => "rv/crc",
            RvBench::Sieve => "rv/sieve",
            RvBench::Bsearch => "rv/bsearch",
            RvBench::Dispatch => "rv/dispatch",
        }
    }

    /// Short column label for tables.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            RvBench::Bubble => "bub",
            RvBench::Qsort => "qs",
            RvBench::Strops => "str",
            RvBench::Matmul => "mm",
            RvBench::Listchase => "list",
            RvBench::Fib => "fib",
            RvBench::Crc => "crc",
            RvBench::Sieve => "sv",
            RvBench::Bsearch => "bs",
            RvBench::Dispatch => "disp",
        }
    }

    /// The committed program backing this workload.
    ///
    /// # Panics
    ///
    /// Panics if the `tc-rv` suite no longer carries this program — a
    /// build invariant covered by tests.
    #[must_use]
    pub fn program(self) -> &'static RvProgram {
        let bare = &self.name()["rv/".len()..];
        RvProgram::find(bare)
            .unwrap_or_else(|| panic!("rv suite is missing committed program {bare}"))
    }

    /// Decodes and translates the committed image into a [`Workload`].
    #[must_use]
    pub fn build(self) -> Workload {
        let t = self.program().build();
        Workload::new(self.name(), t.program, t.mem_words, t.image)
    }
}

impl fmt::Display for RvBench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A workload from either family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadId {
    /// A synthetic benchmark (the paper's Table 1).
    Synth(Benchmark),
    /// A compiled RV32I program run through the `tc-rv` front end.
    Rv(RvBench),
}

impl WorkloadId {
    /// Total workload count across both families.
    pub const COUNT: usize = Benchmark::ALL.len() + RvBench::ALL.len();

    /// Every workload: the synthetic suite first, then the RV family.
    #[must_use]
    pub fn all() -> Vec<WorkloadId> {
        Benchmark::ALL
            .iter()
            .map(|&b| WorkloadId::Synth(b))
            .chain(RvBench::ALL.iter().map(|&r| WorkloadId::Rv(r)))
            .collect()
    }

    /// The CLI-facing name: bare for synthetic, `rv/`-qualified for RV.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Synth(b) => b.name(),
            WorkloadId::Rv(r) => r.name(),
        }
    }

    /// Short column label for tables.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            WorkloadId::Synth(b) => b.short_name(),
            WorkloadId::Rv(r) => r.short_name(),
        }
    }

    /// The family tag surfaced by listings and the HTTP service.
    #[must_use]
    pub fn family(self) -> &'static str {
        match self {
            WorkloadId::Synth(_) => "synthetic",
            WorkloadId::Rv(_) => "rv32i",
        }
    }

    /// Builds the runnable workload.
    #[must_use]
    pub fn build(self) -> Workload {
        match self {
            WorkloadId::Synth(b) => b.build(),
            WorkloadId::Rv(r) => r.build(),
        }
    }

    /// Resolves a CLI name from either family.
    #[must_use]
    pub fn from_name(name: &str) -> Option<WorkloadId> {
        WorkloadId::all().into_iter().find(|w| w.name() == name)
    }
}

impl From<Benchmark> for WorkloadId {
    fn from(b: Benchmark) -> WorkloadId {
        WorkloadId::Synth(b)
    }
}

impl From<RvBench> for WorkloadId {
    fn from(r: RvBench) -> WorkloadId {
        WorkloadId::Rv(r)
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rv_bench_has_a_committed_program() {
        for r in RvBench::ALL {
            assert_eq!(format!("rv/{}", r.program().name), r.name());
        }
    }

    #[test]
    fn every_committed_program_has_an_rv_bench() {
        for p in tc_rv::PROGRAMS {
            assert!(
                RvBench::ALL.iter().any(|r| r.program().name == p.name),
                "committed program {} has no RvBench entry",
                p.name
            );
        }
    }

    #[test]
    fn names_resolve_round_trip_across_families() {
        let all = WorkloadId::all();
        assert_eq!(all.len(), WorkloadId::COUNT);
        for w in all {
            assert_eq!(WorkloadId::from_name(w.name()), Some(w));
        }
        assert_eq!(
            WorkloadId::from_name("gcc"),
            Some(WorkloadId::Synth(Benchmark::Gcc))
        );
        assert_eq!(
            WorkloadId::from_name("rv/fib"),
            Some(WorkloadId::Rv(RvBench::Fib))
        );
        assert_eq!(WorkloadId::from_name("fib"), None);
        assert_eq!(WorkloadId::from_name("rv/gcc"), None);
    }

    #[test]
    fn rv_workloads_build_and_run() {
        let w = RvBench::Fib.build();
        let stats = w.stream_stats(50_000);
        assert_eq!(stats.instructions, 50_000);
        assert!(stats.cond_branch_ratio() > 0.02);
    }

    #[test]
    fn families_are_tagged() {
        assert_eq!(WorkloadId::from(Benchmark::Gcc).family(), "synthetic");
        assert_eq!(WorkloadId::from(RvBench::Crc).family(), "rv32i");
    }
}
