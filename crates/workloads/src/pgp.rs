//! `pgp`: multi-limb modular exponentiation.
//!
//! Mirrors PGP's RSA kernel: square-and-multiply modular exponentiation
//! over multi-word integers, built from binary modular multiplication
//! (shift, conditional-subtract). Branch profile: compare/borrow chains
//! with early exits, ~50/50 key-bit branches, and biased limb loops.

use tc_isa::{Cond, ProgramBuilder, Reg};

use crate::data;
use crate::kernels::{for_lt, repeat_and_halt};
use crate::workload::Workload;

/// Limbs per big number (32-bit limbs stored one per 64-bit word).
const LIMBS: i32 = 4;

const MOD: i32 = 0x100; // modulus m
const BASE: i32 = MOD + LIMBS; // base g
const EXP: i32 = BASE + LIMBS; // exponent e
const RESULT: i32 = EXP + LIMBS; // result accumulator
const SQ: i32 = RESULT + LIMBS; // running square
const MULR: i32 = SQ + LIMBS; // mulmod scratch result
const MULA: i32 = MULR + LIMBS; // mulmod operand copy
const OUT_CHECK: i32 = MULA + LIMBS;

type Big = Vec<u64>;

/// Reference modexp over LIMB 32-bit limbs (little-endian), computing
/// `g^e mod m` exactly as the assembly does (binary mulmod).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reference_modexp(g: &Big, e: &Big, m: &Big) -> Big {
    fn to_u128(x: &[u64]) -> u128 {
        x.iter()
            .rev()
            .fold(0u128, |a, &l| (a << 32) | u128::from(l))
    }
    fn from_u128(mut v: u128, limbs: usize) -> Big {
        let mut out = vec![0u64; limbs];
        for l in &mut out {
            *l = (v & 0xFFFF_FFFF) as u64;
            v >>= 32;
        }
        out
    }
    let (g, e, m) = (to_u128(g), to_u128(e), to_u128(m));
    let mut result = 1u128;
    let mut sq = g % m;
    let mut exp = e;
    while exp != 0 {
        if exp & 1 == 1 {
            result = mulmod(result, sq, m);
        }
        sq = mulmod(sq, sq, m);
        exp >>= 1;
    }
    fn mulmod(a: u128, b: u128, m: u128) -> u128 {
        // Same binary algorithm as the assembly (values < 2^128 won't
        // overflow u128 math here because m < 2^128 and we reduce every
        // step — use checked doubling identical to the asm).
        let mut r = 0u128;
        let a = a % m;
        let mut bits = 128 - b.leading_zeros();
        while bits > 0 {
            bits -= 1;
            // r = 2r mod m
            r <<= 1;
            if r >= m {
                r -= m;
            }
            if (b >> bits) & 1 == 1 {
                r += a;
                if r >= m {
                    r -= m;
                }
            }
        }
        r
    }
    from_u128(result, LIMBS as usize)
}

/// Emits `if big(at A0) >= big(at A1): big(A0) -= big(A1)` over LIMBS
/// 32-bit limbs. Clobbers T0..T7.
fn cond_sub(b: &mut ProgramBuilder) {
    let no_sub = b.new_label("no_sub");
    let do_sub = b.new_label("do_sub");
    // Compare from most-significant limb down, early exit (unpredictable).
    b.li(Reg::T0, LIMBS - 1);
    let cmp_top = b.here("cmp_top");
    b.add(Reg::T1, Reg::A0, Reg::T0);
    b.load(Reg::T2, Reg::T1, 0);
    b.add(Reg::T1, Reg::A1, Reg::T0);
    b.load(Reg::T3, Reg::T1, 0);
    b.branch(Cond::Ltu, Reg::T2, Reg::T3, no_sub);
    b.branch(Cond::Ltu, Reg::T3, Reg::T2, do_sub);
    b.addi(Reg::T0, Reg::T0, -1);
    b.branch(Cond::Ge, Reg::T0, Reg::ZERO, cmp_top);
    // Equal: subtract.
    b.bind(do_sub).unwrap();
    // Subtract with borrow, lsb first.
    b.li(Reg::T0, 0);
    b.li(Reg::T4, 0); // borrow
    let sub_lim = Reg::T7;
    b.li(sub_lim, LIMBS);
    for_lt(b, Reg::T0, sub_lim, |b| {
        b.add(Reg::T1, Reg::A0, Reg::T0);
        b.load(Reg::T2, Reg::T1, 0);
        b.add(Reg::T3, Reg::A1, Reg::T0);
        b.load(Reg::T3, Reg::T3, 0);
        b.add(Reg::T3, Reg::T3, Reg::T4); // b + borrow
        b.sub(Reg::T2, Reg::T2, Reg::T3);
        // borrow = (result < 0) via sign bit of 64-bit subtraction.
        b.li(Reg::T4, 0);
        let no_borrow = b.new_label("no_borrow");
        b.branch(Cond::Ge, Reg::T2, Reg::ZERO, no_borrow);
        b.li(Reg::T4, 1);
        b.bind(no_borrow).unwrap();
        // Mask to 32 bits (adds 2^32 when borrowed).
        b.li(Reg::T5, -1);
        b.shri(Reg::T5, Reg::T5, 32); // T5 = 0xFFFF_FFFF
        b.and(Reg::T2, Reg::T2, Reg::T5);
        b.store(Reg::T2, Reg::T1, 0);
    });
    b.bind(no_sub).unwrap();
}

/// Emits `shift_left_one(big at A0)` over 32-bit limbs (no overflow out of
/// the top limb by construction: a conditional subtract precedes growth
/// past the modulus). Clobbers T0..T5.
fn shl1(b: &mut ProgramBuilder) {
    b.li(Reg::T0, 0);
    b.li(Reg::T4, 0); // carry
    let lim = Reg::T5;
    b.li(lim, LIMBS);
    for_lt(b, Reg::T0, lim, |b| {
        b.add(Reg::T1, Reg::A0, Reg::T0);
        b.load(Reg::T2, Reg::T1, 0);
        b.shli(Reg::T2, Reg::T2, 1);
        b.add(Reg::T2, Reg::T2, Reg::T4);
        b.shri(Reg::T4, Reg::T2, 32); // next carry
        b.li(Reg::T3, -1);
        b.shri(Reg::T3, Reg::T3, 32);
        b.and(Reg::T2, Reg::T2, Reg::T3);
        b.store(Reg::T2, Reg::T1, 0);
    });
}

/// Emits `add(big at A0) += big(at A1)` with 32-bit limb carries.
/// Clobbers T0..T5.
fn add_big(b: &mut ProgramBuilder) {
    b.li(Reg::T0, 0);
    b.li(Reg::T4, 0); // carry
    let lim = Reg::T5;
    b.li(lim, LIMBS);
    for_lt(b, Reg::T0, lim, |b| {
        b.add(Reg::T1, Reg::A0, Reg::T0);
        b.load(Reg::T2, Reg::T1, 0);
        b.add(Reg::T3, Reg::A1, Reg::T0);
        b.load(Reg::T3, Reg::T3, 0);
        b.add(Reg::T2, Reg::T2, Reg::T3);
        b.add(Reg::T2, Reg::T2, Reg::T4);
        b.shri(Reg::T4, Reg::T2, 32);
        b.li(Reg::T3, -1);
        b.shri(Reg::T3, Reg::T3, 32);
        b.and(Reg::T2, Reg::T2, Reg::T3);
        b.store(Reg::T2, Reg::T1, 0);
    });
}

/// The benchmark's inputs: the modulus is kept below 2^127 so the binary
/// mulmod's doubling step (`r <<= 1` with `r < m`) never overflows the
/// four 32-bit limbs, and the base is pre-reduced below the modulus.
pub(crate) fn inputs() -> (Big, Big, Big) {
    fn to_u128(x: &[u64]) -> u128 {
        x.iter()
            .rev()
            .fold(0u128, |a, &l| (a << 32) | u128::from(l))
    }
    fn from_u128(mut v: u128, limbs: usize) -> Big {
        let mut out = vec![0u64; limbs];
        for l in &mut out {
            *l = (v & 0xFFFF_FFFF) as u64;
            v >>= 32;
        }
        out
    }
    let mut m = data::bignum(0x9657, LIMBS as usize);
    let top = LIMBS as usize - 1;
    m[top] = (m[top] & 0x3FFF_FFFF) | 0x4000_0000; // m in [2^126, 2^127)
    let g_raw = data::uniform_words(0x2323, LIMBS as usize, 1 << 32);
    let g = from_u128(to_u128(&g_raw) % to_u128(&m), LIMBS as usize);
    let e = data::uniform_words(0x7171, LIMBS as usize, 1 << 32);
    (g, e, m)
}

pub(crate) fn build(scale: u32) -> Workload {
    let (g, e, m) = inputs();

    let mut b = ProgramBuilder::new();
    // The modexp subroutine layout is inlined; registers:
    // S0 = exponent bit index, S1 = total bits, S2 = &result, S3 = &sq,
    // S4 = &modulus, S5 = bit value, S8 = mulmod bit counter.
    b.li(Reg::S4, MOD);

    // --- mulmod subroutine: MULR = (MULR_init=0; fold MULA by bits of
    // arg at A2) — computes (x * y) mod m where x at MULA, y at A2-ptr.
    // Inputs: MULA holds x (already < m), A2 = address of y.
    // Output: MULR. Uses A0/A1 for cond_sub/shl1/add_big operands.
    let mulmod = {
        let mulmod = b.new_label("mulmod");
        let main = b.new_label("main");
        b.jump(main);
        b.bind(mulmod).unwrap();
        // Clear MULR.
        b.li(Reg::T0, 0);
        let lim = Reg::T1;
        b.li(lim, LIMBS);
        for_lt(&mut b, Reg::T0, lim, |b| {
            b.li(Reg::T2, MULR);
            b.add(Reg::T2, Reg::T2, Reg::T0);
            b.store(Reg::ZERO, Reg::T2, 0);
        });
        // For bit in (32*LIMBS-1)..=0 of y.
        b.li(Reg::S8, 32 * LIMBS - 1);
        let bit_done = b.new_label("bit_done");
        let bit_top = b.here("bit_top");
        b.branch(Cond::Lt, Reg::S8, Reg::ZERO, bit_done);
        // r <<= 1; if r >= m: r -= m.
        b.li(Reg::A0, MULR);
        shl1(&mut b);
        b.li(Reg::A0, MULR);
        b.mv(Reg::A1, Reg::S4);
        cond_sub(&mut b);
        // if bit set: r += x; if r >= m: r -= m.
        // bit = (y[bit/32] >> (bit%32)) & 1.
        b.shri(Reg::T6, Reg::S8, 5); // limb index
        b.add(Reg::T6, Reg::T6, Reg::A2);
        b.load(Reg::T6, Reg::T6, 0);
        b.andi(Reg::T0, Reg::S8, 31);
        b.alu(tc_isa::AluOp::Shr, Reg::T6, Reg::T6, Reg::T0);
        b.andi(Reg::T6, Reg::T6, 1);
        let bit_clear = b.new_label("bit_clear");
        b.beqz(Reg::T6, bit_clear);
        b.li(Reg::A0, MULR);
        b.li(Reg::A1, MULA);
        add_big(&mut b);
        b.li(Reg::A0, MULR);
        b.mv(Reg::A1, Reg::S4);
        cond_sub(&mut b);
        b.bind(bit_clear).unwrap();
        b.addi(Reg::S8, Reg::S8, -1);
        b.jump(bit_top);
        b.bind(bit_done).unwrap();
        b.ret();
        b.bind(main).unwrap();
        mulmod
    };

    repeat_and_halt(&mut b, Reg::T9, Reg::T10, scale as i32, |b| {
        // result = 1; sq = g (g < m by construction of data); copy loop.
        b.li(Reg::T0, 0);
        let lim = Reg::T1;
        b.li(lim, LIMBS);
        for_lt(b, Reg::T0, lim, |b| {
            b.li(Reg::T2, BASE);
            b.add(Reg::T2, Reg::T2, Reg::T0);
            b.load(Reg::T3, Reg::T2, 0);
            b.li(Reg::T2, SQ);
            b.add(Reg::T2, Reg::T2, Reg::T0);
            b.store(Reg::T3, Reg::T2, 0);
            b.li(Reg::T2, RESULT);
            b.add(Reg::T2, Reg::T2, Reg::T0);
            b.store(Reg::ZERO, Reg::T2, 0);
        });
        b.li(Reg::T2, RESULT);
        b.li(Reg::T3, 1);
        b.store(Reg::T3, Reg::T2, 0);
        // (g is pre-reduced below m by `inputs`.)

        // For each exponent bit, lsb first: S0 = bit index.
        b.li(Reg::S0, 0).li(Reg::S1, 32 * LIMBS);
        for_lt(b, Reg::S0, Reg::S1, |b| {
            // bit = (e[idx/32] >> (idx%32)) & 1
            b.shri(Reg::T6, Reg::S0, 5);
            b.addi(Reg::T6, Reg::T6, EXP);
            b.load(Reg::T6, Reg::T6, 0);
            b.andi(Reg::T0, Reg::S0, 31);
            b.alu(tc_isa::AluOp::Shr, Reg::T6, Reg::T6, Reg::T0);
            b.andi(Reg::S5, Reg::T6, 1);
            let skip_mul = b.new_label("skip_mul");
            b.beqz(Reg::S5, skip_mul);
            // result = mulmod(result, sq): MULA <- result, y = sq.
            b.li(Reg::T0, 0);
            let lim2 = Reg::T1;
            b.li(lim2, LIMBS);
            for_lt(b, Reg::T0, lim2, |b| {
                b.li(Reg::T2, RESULT);
                b.add(Reg::T2, Reg::T2, Reg::T0);
                b.load(Reg::T3, Reg::T2, 0);
                b.li(Reg::T2, MULA);
                b.add(Reg::T2, Reg::T2, Reg::T0);
                b.store(Reg::T3, Reg::T2, 0);
            });
            b.li(Reg::A2, SQ);
            b.call(mulmod);
            // result <- MULR.
            b.li(Reg::T0, 0);
            let lim3 = Reg::T1;
            b.li(lim3, LIMBS);
            for_lt(b, Reg::T0, lim3, |b| {
                b.li(Reg::T2, MULR);
                b.add(Reg::T2, Reg::T2, Reg::T0);
                b.load(Reg::T3, Reg::T2, 0);
                b.li(Reg::T2, RESULT);
                b.add(Reg::T2, Reg::T2, Reg::T0);
                b.store(Reg::T3, Reg::T2, 0);
            });
            b.bind(skip_mul).unwrap();
            // sq = mulmod(sq, sq).
            b.li(Reg::T0, 0);
            let lim4 = Reg::T1;
            b.li(lim4, LIMBS);
            for_lt(b, Reg::T0, lim4, |b| {
                b.li(Reg::T2, SQ);
                b.add(Reg::T2, Reg::T2, Reg::T0);
                b.load(Reg::T3, Reg::T2, 0);
                b.li(Reg::T2, MULA);
                b.add(Reg::T2, Reg::T2, Reg::T0);
                b.store(Reg::T3, Reg::T2, 0);
            });
            b.li(Reg::A2, SQ);
            b.call(mulmod);
            b.li(Reg::T0, 0);
            let lim5 = Reg::T1;
            b.li(lim5, LIMBS);
            for_lt(b, Reg::T0, lim5, |b| {
                b.li(Reg::T2, MULR);
                b.add(Reg::T2, Reg::T2, Reg::T0);
                b.load(Reg::T3, Reg::T2, 0);
                b.li(Reg::T2, SQ);
                b.add(Reg::T2, Reg::T2, Reg::T0);
                b.store(Reg::T3, Reg::T2, 0);
            });
        });
        // Publish a checksum of the result.
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 0);
        let lim6 = Reg::T2;
        b.li(lim6, LIMBS);
        for_lt(b, Reg::T0, lim6, |b| {
            b.li(Reg::T3, RESULT);
            b.add(Reg::T3, Reg::T3, Reg::T0);
            b.load(Reg::T3, Reg::T3, 0);
            b.muli(Reg::T1, Reg::T1, 1_000_003);
            b.add(Reg::T1, Reg::T1, Reg::T3);
        });
        b.li(Reg::T3, OUT_CHECK);
        b.store(Reg::T1, Reg::T3, 0);
    });

    let program = b.build().expect("pgp assembles");
    Workload::new(
        "pgp",
        program,
        1 << 14,
        vec![(MOD as u64, m), (BASE as u64, g), (EXP as u64, e)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_matches_reference() {
        let w = build(1);
        let mut interp = w.interpreter();
        interp.by_ref().for_each(drop);
        assert!(
            interp.error().is_none(),
            "pgp faulted: {:?}",
            interp.error()
        );
        let (g, e, m) = inputs();
        let expected = reference_modexp(&g, &e, &m);
        let checksum = expected
            .iter()
            .rev()
            .fold(0u64, |a, &l| a.wrapping_mul(1_000_003).wrapping_add(l));
        // The asm folds lsb-first: recompute in that order.
        let checksum_lsb_first = expected
            .iter()
            .fold(0u64, |a, &l| a.wrapping_mul(1_000_003).wrapping_add(l));
        let got = interp.machine().mem(OUT_CHECK as u64);
        assert!(
            got == checksum || got == checksum_lsb_first,
            "modexp mismatch: got {got:#x}, expected {checksum:#x} or {checksum_lsb_first:#x}"
        );
        assert_ne!(got, 0);
    }

    #[test]
    fn dynamic_length_is_substantial() {
        let stats = build(1).stream_stats(5_000_000);
        assert!(
            stats.instructions > 200_000,
            "modexp too short: {}",
            stats.instructions
        );
    }
}
