//! Dynamic instruction stream records.

use std::fmt;

use crate::instr::{ControlKind, Instr};
use crate::program::Addr;

/// One executed dynamic instruction: the unit of the oracle stream the
/// timing simulator replays.
///
/// The functional [`crate::Interpreter`] produces these in program order.
/// Together they record everything the timing model needs: the PC, the
/// decoded instruction, the *architectural* next PC (i.e. the correct-path
/// successor), the branch outcome, and the data address touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// Address of the instruction.
    pub pc: Addr,
    /// The instruction itself.
    pub instr: Instr,
    /// Address of the next correct-path instruction.
    pub next_pc: Addr,
    /// For conditional branches: whether the branch was taken. `false` for
    /// everything else.
    pub taken: bool,
    /// For loads/stores: the word address accessed.
    pub mem_addr: Option<u64>,
}

impl ExecRecord {
    /// The control-flow class of the executed instruction.
    #[must_use]
    pub fn control_kind(&self) -> ControlKind {
        self.instr.control_kind()
    }

    /// Whether this record is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        self.instr.is_cond_branch()
    }
}

impl fmt::Display for ExecRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.pc, self.instr, self.next_pc)?;
        if self.is_cond_branch() {
            write!(f, " [{}]", if self.taken { "T" } else { "N" })?;
        }
        Ok(())
    }
}

/// Aggregate statistics over a dynamic instruction stream; used to
/// characterize workloads (average fetch-block size, branch mix, bias).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Dynamic taken conditional branches.
    pub taken_branches: u64,
    /// Dynamic unconditional direct jumps.
    pub jumps: u64,
    /// Dynamic direct calls.
    pub calls: u64,
    /// Dynamic returns.
    pub returns: u64,
    /// Dynamic indirect jumps + indirect calls.
    pub indirect: u64,
    /// Dynamic serializing traps.
    pub traps: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
}

impl StreamStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> StreamStats {
        StreamStats::default()
    }

    /// Accumulates one record.
    pub fn record(&mut self, rec: &ExecRecord) {
        self.instructions += 1;
        match rec.control_kind() {
            ControlKind::CondBranch => {
                self.cond_branches += 1;
                if rec.taken {
                    self.taken_branches += 1;
                }
            }
            ControlKind::Jump => self.jumps += 1,
            ControlKind::Call => self.calls += 1,
            ControlKind::Return => self.returns += 1,
            ControlKind::IndirectJump | ControlKind::IndirectCall => self.indirect += 1,
            ControlKind::Trap => self.traps += 1,
            ControlKind::None => {}
        }
        if rec.instr.is_load() {
            self.loads += 1;
        } else if rec.instr.is_store() {
            self.stores += 1;
        }
    }

    /// Average dynamic fetch-block size: instructions per block-ending
    /// control instruction (conditional branch, return, indirect, trap).
    ///
    /// Returns `None` when the stream contains no block terminators.
    #[must_use]
    pub fn avg_block_size(&self) -> Option<f64> {
        let terminators = self.cond_branches + self.returns + self.indirect + self.traps;
        if terminators == 0 {
            None
        } else {
            Some(self.instructions as f64 / terminators as f64)
        }
    }

    /// Fraction of dynamic instructions that are conditional branches.
    #[must_use]
    pub fn cond_branch_ratio(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cond_branches as f64 / self.instructions as f64
        }
    }
}

impl std::iter::Extend<ExecRecord> for StreamStats {
    fn extend<T: IntoIterator<Item = ExecRecord>>(&mut self, iter: T) {
        for r in iter {
            self.record(&r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;
    use crate::reg::Reg;

    fn rec(instr: Instr, taken: bool) -> ExecRecord {
        ExecRecord {
            pc: Addr::new(0),
            instr,
            next_pc: Addr::new(1),
            taken,
            mem_addr: None,
        }
    }

    #[test]
    fn stats_classify_control_flow() {
        let mut s = StreamStats::new();
        s.record(&rec(Instr::Nop, false));
        s.record(&rec(
            Instr::Branch {
                cond: Cond::Eq,
                rs1: Reg::T0,
                rs2: Reg::T1,
                target: Addr::new(0),
            },
            true,
        ));
        s.record(&rec(Instr::Ret, false));
        s.record(&rec(Instr::JumpInd { base: Reg::T0 }, false));
        s.record(&rec(
            Instr::Call {
                target: Addr::new(0),
            },
            false,
        ));
        s.record(&rec(
            Instr::Load {
                rd: Reg::T0,
                base: Reg::SP,
                offset: 0,
            },
            false,
        ));
        assert_eq!(s.instructions, 6);
        assert_eq!(s.cond_branches, 1);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.returns, 1);
        assert_eq!(s.indirect, 1);
        assert_eq!(s.calls, 1);
        assert_eq!(s.loads, 1);
    }

    #[test]
    fn avg_block_size_counts_terminators_only() {
        let mut s = StreamStats::new();
        for _ in 0..9 {
            s.record(&rec(Instr::Nop, false));
        }
        s.record(&rec(
            Instr::Branch {
                cond: Cond::Eq,
                rs1: Reg::T0,
                rs2: Reg::T1,
                target: Addr::new(0),
            },
            false,
        ));
        assert_eq!(s.avg_block_size(), Some(10.0));
    }

    #[test]
    fn avg_block_size_none_without_terminators() {
        let mut s = StreamStats::new();
        s.record(&rec(Instr::Nop, false));
        s.record(&rec(
            Instr::Jump {
                target: Addr::new(0),
            },
            false,
        ));
        assert_eq!(s.avg_block_size(), None);
    }

    #[test]
    fn display_marks_branch_outcome() {
        let r = rec(
            Instr::Branch {
                cond: Cond::Eq,
                rs1: Reg::T0,
                rs2: Reg::T1,
                target: Addr::new(0),
            },
            true,
        );
        assert!(r.to_string().contains("[T]"));
    }
}
