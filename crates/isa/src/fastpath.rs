//! Fast functional dispatch: predecoded straight-line blocks let the
//! machine fast-forward at full interpreter speed without materialising a
//! per-step [`crate::ExecRecord`].
//!
//! The timing simulator consumes the dynamic instruction stream one
//! [`crate::ExecRecord`] at a time, which is exactly right when every
//! instruction is being timed — and pure overhead when the simulator only
//! needs to *skip ahead* (fast-forward before a sampled measurement
//! window, or to build a checkpoint). [`BlockCache`] predecodes a program
//! into straight-line runs; [`Machine::fast_forward`] then executes whole
//! runs in a tight loop with no per-instruction next-PC resolution, no
//! bounds re-checks on fall-through, and no record construction.
//!
//! The fast path is *architecturally bit-identical* to stepping: after
//! `fast_forward(p, &blocks, n)` the machine's registers, memory, PC,
//! retired count, and halt flag are exactly what `n` calls of
//! [`Machine::step`] would have produced, including the state at which an
//! [`ExecError`] is raised. The equivalence tests below drive both paths
//! in lockstep.

use crate::instr::Instr;
use crate::interp::{ExecError, Machine};
use crate::program::{Addr, Program};
use crate::reg::Reg;

/// Whether `instr` ends a straight-line run: any instruction that can
/// redirect the PC away from `pc + 1`, plus `halt`. Traps and nops fall
/// through architecturally and stay inside a run.
fn ends_run(instr: Instr) -> bool {
    matches!(
        instr,
        Instr::Branch { .. }
            | Instr::Jump { .. }
            | Instr::Call { .. }
            | Instr::Ret
            | Instr::JumpInd { .. }
            | Instr::CallInd { .. }
            | Instr::Halt
    )
}

/// Predecoded straight-line run lengths for a [`Program`].
///
/// `run_len(i)` is the number of instructions in the straight-line run
/// starting at instruction `i`: everything up to and including the first
/// PC-redirecting instruction or `halt` (or the last instruction of the
/// program). Every instruction before the run's tail is guaranteed to
/// fall through to `pc + 1` *inside* the program, so the fast-forward
/// executor retires them without per-instruction next-PC checks.
///
/// Construction is `O(program len)` (a single reverse scan) and the table
/// is immutable, so one cache can be shared across any number of
/// fast-forward calls over the same program.
#[derive(Debug, Clone)]
pub struct BlockCache {
    run_len: Vec<u32>,
}

impl BlockCache {
    /// Predecodes `program` into straight-line runs.
    #[must_use]
    pub fn new(program: &Program) -> BlockCache {
        let instrs = program.instrs();
        let mut run_len = vec![1u32; instrs.len()];
        // Reverse scan: a run either stops here (control / halt / end of
        // program) or extends the run that starts at the next instruction.
        for i in (0..instrs.len()).rev() {
            if !ends_run(instrs[i]) && i + 1 < instrs.len() {
                run_len[i] = run_len[i + 1] + 1;
            }
        }
        BlockCache { run_len }
    }

    /// Straight-line run length starting at `addr` (`None` if out of
    /// range).
    #[must_use]
    pub fn run_len(&self, addr: Addr) -> Option<u32> {
        self.run_len.get(addr.index()).copied()
    }

    /// Number of static instructions covered (equals the program length).
    #[must_use]
    pub fn len(&self) -> usize {
        self.run_len.len()
    }

    /// Whether the cache covers no instructions (never true for a cache
    /// built from a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.run_len.is_empty()
    }
}

impl Machine {
    /// Executes up to `max_insts` instructions through the predecoded
    /// fast path, returning how many retired.
    ///
    /// Architecturally bit-identical to calling [`Machine::step`] in a
    /// loop: stops early on `halt` (the halt itself does not count, as in
    /// `step`), and faults leave the machine in exactly the state `step`
    /// would have left it (PC at the faulting instruction, prior
    /// instructions retired).
    ///
    /// `blocks` must have been built from this `program`; a cache from a
    /// different program produces unspecified (but still memory-safe)
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] under the same conditions as
    /// [`Machine::step`]: the PC leaving the program or an out-of-bounds
    /// data access. Inspect [`Machine::retired`] for progress made before
    /// the fault.
    pub fn fast_forward(
        &mut self,
        program: &Program,
        blocks: &BlockCache,
        max_insts: u64,
    ) -> Result<u64, ExecError> {
        let instrs = program.instrs();
        let mut executed: u64 = 0;
        while executed < max_insts && !self.is_halted() {
            let pc = self.pc();
            let Some(run) = blocks.run_len(pc) else {
                return Err(ExecError::PcOutOfRange { pc });
            };
            let remaining = max_insts - executed;
            if u64::from(run) > remaining {
                // Budget expires inside the run: the prefix is pure
                // straight-line code (the run's only possible ender is its
                // tail), so execute exactly `remaining` and stop.
                let n = remaining as usize;
                self.run_straight(pc, &instrs[pc.index()..pc.index() + n])?;
                executed += remaining;
                break;
            }
            // Whole run: straight-line prefix, then the tail with full
            // step semantics (control resolution, halt, range check).
            let n = run as usize;
            self.run_straight(pc, &instrs[pc.index()..pc.index() + n - 1])?;
            executed += u64::from(run) - 1;
            if self.step_tail(program, instrs[pc.index() + n - 1])? {
                executed += 1;
            }
        }
        Ok(executed)
    }

    /// Executes a straight-line slice of instructions starting at `pc`.
    /// Every instruction is known to fall through inside the program, so
    /// the PC advances by `window.len()` in one commit.
    ///
    /// On a memory fault, state is fixed up to match stepwise execution:
    /// PC at the faulting instruction, earlier instructions retired.
    fn run_straight(&mut self, pc: Addr, window: &[Instr]) -> Result<(), ExecError> {
        for (k, &instr) in window.iter().enumerate() {
            if let Err(e) = self.exec_straight(pc.offset(k as u32), instr) {
                self.commit_straight(pc.offset(k as u32), k as u64);
                return Err(e);
            }
        }
        self.commit_straight(pc.offset(window.len() as u32), window.len() as u64);
        Ok(())
    }

    /// Executes one known-fall-through instruction without touching PC or
    /// the retired counter (batched by the caller).
    #[inline]
    fn exec_straight(&mut self, pc: Addr, instr: Instr) -> Result<(), ExecError> {
        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm as i64 as u64);
                self.set_reg(rd, v);
            }
            Instr::Li { rd, imm } => self.set_reg(rd, imm as i64 as u64),
            Instr::Load { rd, base, offset } => {
                let addr = self.data_addr(pc, base, offset)?;
                let v = self.mem(addr);
                self.set_reg(rd, v);
            }
            Instr::Store { src, base, offset } => {
                let addr = self.data_addr(pc, base, offset)?;
                let v = self.reg(src);
                self.set_mem(addr, v);
            }
            Instr::LoadN {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let addr = self.narrow_addr(pc, base, offset, width)?;
                let v = self.narrow_load(addr, width, signed);
                self.set_reg(rd, v);
            }
            Instr::StoreN {
                src,
                base,
                offset,
                width,
            } => {
                let addr = self.narrow_addr(pc, base, offset, width)?;
                let v = self.reg(src);
                self.narrow_store(addr, width, v);
            }
            Instr::Trap { .. } | Instr::Nop => {}
            // `BlockCache` construction guarantees straight-line windows
            // contain no control transfers or halts.
            _ => unreachable!("control instruction inside straight-line run"),
        }
        Ok(())
    }

    /// Executes the run's tail instruction with the exact semantics of
    /// [`Machine::step`]. Returns whether an instruction retired (`false`
    /// for `halt`).
    fn step_tail(&mut self, program: &Program, instr: Instr) -> Result<bool, ExecError> {
        let pc = self.pc();
        let mut next_pc = pc.next();
        match instr {
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(self.reg(rs1), self.reg(rs2)) {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::Call { target } => {
                self.set_reg(Reg::RA, u64::from(pc.next()));
                next_pc = target;
            }
            Instr::Ret => next_pc = Addr::new(self.reg(Reg::RA) as u32),
            Instr::JumpInd { base } => next_pc = Addr::new(self.reg(base) as u32),
            Instr::CallInd { base } => {
                let target = Addr::new(self.reg(base) as u32);
                self.set_reg(Reg::RA, u64::from(pc.next()));
                next_pc = target;
            }
            Instr::Halt => {
                self.set_halted();
                return Ok(false);
            }
            // Straight-line tails (run truncated by the end of the
            // program) share step's fall-through handling.
            other => {
                self.exec_straight(pc, other)?;
            }
        }
        if next_pc.index() >= program.len() {
            return Err(ExecError::PcOutOfRange { pc: next_pc });
        }
        self.commit_straight(next_pc, 1);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::instr::Cond;
    use crate::interp::StepOutcome;

    /// A program exercising every run shape: loops, calls/returns,
    /// indirect jumps, memory traffic, traps.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.new_label("top");
        let body = b.new_label("body");
        let func = b.new_label("func");
        let done = b.new_label("done");
        let fin = b.new_label("fin");
        let main = b.new_label("main");
        b.entry(main);
        b.bind(func).unwrap();
        b.add(Reg::A0, Reg::A0, Reg::A1).trap(1).ret();
        b.bind(main).unwrap();
        b.li(Reg::T0, 0).li(Reg::T1, 57).li(Reg::T2, 0);
        b.bind(top).unwrap();
        b.branch(Cond::Ge, Reg::T0, Reg::T1, done);
        b.bind(body).unwrap();
        b.add(Reg::A0, Reg::T2, Reg::ZERO)
            .add(Reg::A1, Reg::T0, Reg::ZERO)
            .call(func)
            .add(Reg::T2, Reg::A0, Reg::ZERO);
        b.store(Reg::T2, Reg::GP, 5)
            .load(Reg::T3, Reg::GP, 5)
            .addi(Reg::T0, Reg::T0, 1)
            .jump(top);
        b.bind(done).unwrap();
        b.la(Reg::T4, fin).jr(Reg::T4).nop();
        b.bind(fin).unwrap();
        b.halt();
        b.build().unwrap()
    }

    /// Drives `step` and `fast_forward` in lockstep with awkward chunk
    /// sizes and asserts bit-identical machine state at every boundary.
    #[test]
    fn fast_forward_matches_step_at_every_chunk_boundary() {
        let p = mixed_program();
        let blocks = BlockCache::new(&p);
        let mut slow = Machine::new(p.entry(), 64);
        let mut fast = Machine::new(p.entry(), 64);
        let mut chunk = 1u64;
        loop {
            let n = fast.fast_forward(&p, &blocks, chunk).unwrap();
            for _ in 0..n {
                match slow.step(&p).unwrap() {
                    StepOutcome::Executed(_) => {}
                    StepOutcome::Halted => panic!("slow halted before fast"),
                }
            }
            // Fast path may stop at a halt without retiring; let the slow
            // machine observe it too.
            if fast.is_halted() {
                assert!(matches!(slow.step(&p).unwrap(), StepOutcome::Halted));
            }
            assert_eq!(slow.pc(), fast.pc(), "pc diverged");
            assert_eq!(slow.retired(), fast.retired(), "retired diverged");
            assert_eq!(slow.is_halted(), fast.is_halted(), "halt diverged");
            for r in 0..Reg::COUNT {
                assert_eq!(
                    slow.reg(Reg::new(r as u8)),
                    fast.reg(Reg::new(r as u8)),
                    "register {r} diverged"
                );
            }
            for a in 0..64 {
                assert_eq!(slow.mem(a), fast.mem(a), "mem[{a}] diverged");
            }
            if fast.is_halted() {
                break;
            }
            chunk = (chunk * 3 + 1) % 17 + 1;
        }
        assert!(fast.retired() > 400, "program should run a while");
    }

    #[test]
    fn fast_forward_counts_exactly() {
        let p = mixed_program();
        let blocks = BlockCache::new(&p);
        let mut m = Machine::new(p.entry(), 64);
        assert_eq!(m.fast_forward(&p, &blocks, 100).unwrap(), 100);
        assert_eq!(m.retired(), 100);
        assert_eq!(m.fast_forward(&p, &blocks, 0).unwrap(), 0);
        assert_eq!(m.retired(), 100);
    }

    #[test]
    fn fast_forward_stops_at_halt_like_step() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 1).addi(Reg::T0, Reg::T0, 2).halt();
        let p = b.build().unwrap();
        let blocks = BlockCache::new(&p);
        let mut m = Machine::new(p.entry(), 64);
        assert_eq!(m.fast_forward(&p, &blocks, 1_000).unwrap(), 2);
        assert!(m.is_halted());
        assert_eq!(m.reg(Reg::T0), 3);
        // Further calls are no-ops, as with step.
        assert_eq!(m.fast_forward(&p, &blocks, 1_000).unwrap(), 0);
    }

    #[test]
    fn fault_state_matches_step_fault_state() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 1 << 20)
            .li(Reg::T1, 7)
            .load(Reg::T2, Reg::T0, 0)
            .halt();
        let p = b.build().unwrap();
        let blocks = BlockCache::new(&p);

        let mut slow = Machine::new(p.entry(), 64);
        let slow_err = loop {
            match slow.step(&p) {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        let mut fast = Machine::new(p.entry(), 64);
        let fast_err = fast.fast_forward(&p, &blocks, 1_000).unwrap_err();

        assert_eq!(slow_err, fast_err);
        assert_eq!(slow.pc(), fast.pc());
        assert_eq!(slow.retired(), fast.retired());
        assert_eq!(fast.retired(), 2);
    }

    #[test]
    fn run_lengths_cover_enders_and_program_end() {
        let mut b = ProgramBuilder::new();
        let t = b.new_label("t");
        b.li(Reg::T0, 1).addi(Reg::T0, Reg::T0, 1).jump(t);
        b.bind(t).unwrap();
        b.trap(0).nop().halt();
        let p = b.build().unwrap();
        let blocks = BlockCache::new(&p);
        assert_eq!(blocks.len(), 6);
        assert_eq!(blocks.run_len(Addr::new(0)), Some(3)); // li, addi, jump
        assert_eq!(blocks.run_len(Addr::new(3)), Some(3)); // trap, nop, halt
        assert_eq!(blocks.run_len(Addr::new(5)), Some(1)); // halt alone
        assert_eq!(blocks.run_len(Addr::new(6)), None);
    }
}
