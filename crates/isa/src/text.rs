//! A text-format assembler for the `tc-isa` instruction set.
//!
//! [`assemble`] turns human-readable assembly source into a validated
//! [`Program`], reporting the first error with a line/column position.
//! The accepted syntax mirrors the [`Instr`] `Display` forms, so a
//! program printed instruction-by-instruction can be read back (with
//! labels in place of `@addr` targets):
//!
//! ```text
//! # sum the integers 0..10
//! .entry main
//! main:
//!     li   t0, 0          ; i
//!     li   t1, 10         ; n
//!     li   t2, 0          ; acc
//! loop:
//!     bge  t0, t1, done
//!     add  t2, t2, t0
//!     addi t0, t0, 1
//!     j    loop
//! done:
//!     halt
//! ```
//!
//! * one instruction per line; `label:` prefixes may share the line;
//! * comments start with `#` or `;` and run to end of line;
//! * registers use the conventional names (`zero ra sp gp a0-a5 s0-s9
//!   t0-t11`);
//! * immediates are decimal or `0x` hex, optionally negative;
//! * control-transfer targets are labels or absolute instruction
//!   indices;
//! * `.entry <label>` sets the program entry point.
//!
//! The assembler never panics on any input: every malformed construct —
//! unknown mnemonic, bad register, missing operand, unbound label —
//! comes back as an [`AsmDiagnostic`].

use std::collections::HashMap;
use std::fmt;

use crate::asm::{AsmError, Label, ProgramBuilder};
use crate::instr::{AluOp, Cond, Instr};
use crate::program::{Addr, Program};
use crate::reg::Reg;

/// A positioned assembly error: the first problem found in the source.
///
/// `line` and `col` are 1-based; a diagnostic at `0:0` refers to the
/// program as a whole (e.g. an empty source file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmDiagnostic {
    /// 1-based source line of the error (0 = whole program).
    pub line: u32,
    /// 1-based column of the offending token (0 = whole program).
    pub col: u32,
    /// One-line description of the problem.
    pub message: String,
}

impl AsmDiagnostic {
    fn new(line: u32, col: u32, message: impl Into<String>) -> AsmDiagnostic {
        AsmDiagnostic {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for AsmDiagnostic {}

/// Assembles text-format source into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmDiagnostic`] describing the first syntax, operand,
/// label, or validation error, with its source position.
pub fn assemble(source: &str) -> Result<Program, AsmDiagnostic> {
    let mut asm = Assembler {
        builder: ProgramBuilder::new(),
        labels: HashMap::new(),
        refs: HashMap::new(),
        bound: HashMap::new(),
    };
    for (idx, raw) in source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        asm.line(line_no, raw)?;
    }
    asm.builder.build().map_err(|e| match e {
        AsmError::UnboundLabel { name } => {
            let (line, col) = asm.refs.get(&name).copied().unwrap_or((0, 0));
            AsmDiagnostic::new(line, col, format!("label `{name}` is never defined"))
        }
        // Duplicate binds are caught with a position at bind time.
        AsmError::DuplicateBind { name } => {
            AsmDiagnostic::new(0, 0, format!("label `{name}` bound twice"))
        }
        AsmError::Invalid(e) => AsmDiagnostic::new(0, 0, format!("invalid program: {e}")),
    })
}

struct Assembler {
    builder: ProgramBuilder,
    /// Name → builder label, created on first reference or definition.
    labels: HashMap<String, Label>,
    /// Name → position of the first *reference* (for unbound-label
    /// diagnostics).
    refs: HashMap<String, (u32, u32)>,
    /// Name → line where the label was defined (for duplicate-label
    /// diagnostics).
    bound: HashMap<String, u32>,
}

impl Assembler {
    fn line(&mut self, line_no: u32, raw: &str) -> Result<(), AsmDiagnostic> {
        // Comments run to end of line; the syntax has no string
        // literals, so a bare byte scan is safe.
        let code = match raw.find(['#', ';']) {
            Some(at) => &raw[..at],
            None => raw,
        };
        let mut cur = Cursor {
            line: line_no,
            text: code,
            pos: 0,
        };
        cur.skip_ws();
        // `label:` prefixes; several may share a line.
        while let Some(end) = cur.label_def_end() {
            let col = cur.col();
            let name = cur.text[cur.pos..end].to_string();
            cur.pos = end + 1; // past the ':'
            cur.skip_ws();
            self.define_label(&name, line_no, col)?;
        }
        if cur.at_end() {
            return Ok(());
        }
        let col = cur.col();
        let mnemonic = cur.ident().ok_or_else(|| {
            AsmDiagnostic::new(
                line_no,
                col,
                format!("expected mnemonic, found {:?}", cur.rest()),
            )
        })?;
        self.instruction(&mut cur, &mnemonic, col)?;
        cur.skip_ws();
        if !cur.at_end() {
            return Err(AsmDiagnostic::new(
                line_no,
                cur.col(),
                format!("trailing operands: {:?}", cur.rest()),
            ));
        }
        Ok(())
    }

    fn define_label(&mut self, name: &str, line: u32, col: u32) -> Result<(), AsmDiagnostic> {
        if let Some(first) = self.bound.get(name) {
            return Err(AsmDiagnostic::new(
                line,
                col,
                format!("label `{name}` already defined on line {first}"),
            ));
        }
        let label = self.label(name);
        self.bound.insert(name.to_string(), line);
        self.builder.bind(label).map_err(|_| {
            AsmDiagnostic::new(line, col, format!("label `{name}` already defined"))
        })?;
        Ok(())
    }

    /// Gets or creates the builder label for `name`.
    fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = self.builder.new_label(name);
        self.labels.insert(name.to_string(), l);
        l
    }

    /// Resolves a control-transfer target operand: a label name or an
    /// absolute instruction index. Label targets return `Err(label)` for
    /// the caller to route through the builder's fixup machinery.
    fn target(&mut self, cur: &mut Cursor<'_>) -> Result<Result<Addr, Label>, AsmDiagnostic> {
        cur.skip_ws();
        let (line, col) = (cur.line, cur.col());
        if matches!(cur.peek(), Some(c) if c.is_ascii_digit()) {
            let value = cur.imm()?;
            let addr = u32::try_from(value)
                .map_err(|_| AsmDiagnostic::new(line, col, "negative target address"))?;
            return Ok(Ok(Addr::new(addr)));
        }
        let name = cur
            .ident()
            .ok_or_else(|| AsmDiagnostic::new(line, col, "expected a label or address"))?;
        self.refs.entry(name.clone()).or_insert((line, col));
        Ok(Err(self.label(&name)))
    }

    #[allow(clippy::too_many_lines)]
    fn instruction(
        &mut self,
        cur: &mut Cursor<'_>,
        mnemonic: &str,
        col: u32,
    ) -> Result<(), AsmDiagnostic> {
        // Register-register ALU ops and their `-i` immediate forms.
        if let Some(op) = alu_op(mnemonic) {
            let rd = cur.reg()?;
            cur.comma()?;
            let rs1 = cur.reg()?;
            cur.comma()?;
            let rs2 = cur.reg()?;
            self.builder.alu(op, rd, rs1, rs2);
            return Ok(());
        }
        if let Some(op) = mnemonic.strip_suffix('i').and_then(alu_op) {
            let rd = cur.reg()?;
            cur.comma()?;
            let rs1 = cur.reg()?;
            cur.comma()?;
            let imm = cur.imm()?;
            self.builder.alui(op, rd, rs1, imm);
            return Ok(());
        }
        if let Some(cond) = branch_cond(mnemonic) {
            let rs1 = cur.reg()?;
            cur.comma()?;
            let rs2 = cur.reg()?;
            cur.comma()?;
            match self.target(cur)? {
                Ok(addr) => {
                    self.builder.push(Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        target: addr,
                    });
                }
                Err(label) => {
                    self.builder.branch(cond, rs1, rs2, label);
                }
            }
            return Ok(());
        }
        match mnemonic {
            "li" => {
                let rd = cur.reg()?;
                cur.comma()?;
                let imm = cur.imm()?;
                self.builder.li(rd, imm);
            }
            "la" => {
                let rd = cur.reg()?;
                cur.comma()?;
                match self.target(cur)? {
                    Ok(addr) => {
                        self.builder.li(rd, addr.raw() as i32);
                    }
                    Err(label) => {
                        self.builder.la(rd, label);
                    }
                }
            }
            "mv" => {
                let rd = cur.reg()?;
                cur.comma()?;
                let rs = cur.reg()?;
                self.builder.mv(rd, rs);
            }
            "ld" => {
                let rd = cur.reg()?;
                cur.comma()?;
                let (offset, base) = cur.mem_operand()?;
                self.builder.load(rd, base, offset);
            }
            "st" => {
                let src = cur.reg()?;
                cur.comma()?;
                let (offset, base) = cur.mem_operand()?;
                self.builder.store(src, base, offset);
            }
            "beqz" | "bnez" => {
                let cond = if mnemonic == "beqz" {
                    Cond::Eq
                } else {
                    Cond::Ne
                };
                let rs = cur.reg()?;
                cur.comma()?;
                match self.target(cur)? {
                    Ok(addr) => {
                        self.builder.push(Instr::Branch {
                            cond,
                            rs1: rs,
                            rs2: Reg::ZERO,
                            target: addr,
                        });
                    }
                    Err(label) => {
                        self.builder.branch(cond, rs, Reg::ZERO, label);
                    }
                }
            }
            "j" => match self.target(cur)? {
                Ok(addr) => {
                    self.builder.push(Instr::Jump { target: addr });
                }
                Err(label) => {
                    self.builder.jump(label);
                }
            },
            "call" => match self.target(cur)? {
                Ok(addr) => {
                    self.builder.push(Instr::Call { target: addr });
                }
                Err(label) => {
                    self.builder.call(label);
                }
            },
            "jr" => {
                let base = cur.reg()?;
                self.builder.jr(base);
            }
            "callr" => {
                let base = cur.reg()?;
                self.builder.callr(base);
            }
            "ret" => {
                self.builder.ret();
            }
            "trap" => {
                let (line, tcol) = (cur.line, cur.col());
                let code = cur.imm()?;
                let code = u16::try_from(code).map_err(|_| {
                    AsmDiagnostic::new(line, tcol, format!("trap code {code} out of range"))
                })?;
                self.builder.trap(code);
            }
            "nop" => {
                self.builder.nop();
            }
            "halt" => {
                self.builder.halt();
            }
            ".entry" => {
                cur.skip_ws();
                let (line, tcol) = (cur.line, cur.col());
                let name = cur
                    .ident()
                    .ok_or_else(|| AsmDiagnostic::new(line, tcol, "expected a label"))?;
                self.refs.entry(name.clone()).or_insert((line, tcol));
                let label = self.label(&name);
                self.builder.entry(label);
            }
            other => {
                return Err(AsmDiagnostic::new(
                    cur.line,
                    col,
                    format!("unknown mnemonic `{other}`"),
                ));
            }
        }
        Ok(())
    }
}

fn alu_op(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    })
}

fn branch_cond(name: &str) -> Option<Cond> {
    Some(match name {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        "bltu" => Cond::Ltu,
        "bgeu" => Cond::Geu,
        _ => return None,
    })
}

fn reg_named(name: &str) -> Option<Reg> {
    let family = |prefix: &str, base: u8, count: u8| -> Option<Reg> {
        let n: u8 = name.strip_prefix(prefix)?.parse().ok()?;
        // Reject leading zeros / wide forms like `a01`.
        if n < count && name.len() == prefix.len() + n.to_string().len() {
            Some(Reg::new(base + n))
        } else {
            None
        }
    };
    match name {
        "zero" => Some(Reg::ZERO),
        "ra" => Some(Reg::RA),
        "sp" => Some(Reg::SP),
        "gp" => Some(Reg::GP),
        _ => family("a", 4, 6)
            .or_else(|| family("s", 10, 10))
            .or_else(|| family("t", 20, 12)),
    }
}

/// A character cursor over one source line, tracking the column for
/// diagnostics.
struct Cursor<'a> {
    line: u32,
    text: &'a str,
    pos: usize,
}

impl Cursor<'_> {
    fn col(&self) -> u32 {
        (self.text[..self.pos].chars().count() + 1) as u32
    }

    fn rest(&self) -> &str {
        self.text[self.pos..].trim_end()
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn at_end(&self) -> bool {
        self.text[self.pos..].trim().is_empty()
    }

    /// If the cursor sits on `ident:`, returns the byte offset of the
    /// `:`; the cursor itself is not advanced.
    fn label_def_end(&self) -> Option<usize> {
        let rest = &self.text[self.pos..];
        let mut len = 0;
        for c in rest.chars() {
            if c.is_ascii_alphanumeric() || c == '_' || (len == 0 && c == '.') {
                len += c.len_utf8();
            } else {
                break;
            }
        }
        if len > 0 && rest[len..].starts_with(':') {
            Some(self.pos + len)
        } else {
            None
        }
    }

    /// Consumes an identifier (`[A-Za-z_.][A-Za-z0-9_.]*`).
    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        let mut len = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_ascii_alphabetic() || c == '_' || c == '.'
            } else {
                c.is_ascii_alphanumeric() || c == '_' || c == '.'
            };
            if !ok {
                break;
            }
            len = i + c.len_utf8();
        }
        if len == 0 {
            return None;
        }
        let word = rest[..len].to_string();
        self.pos += len;
        Some(word)
    }

    fn comma(&mut self) -> Result<(), AsmDiagnostic> {
        self.skip_ws();
        if self.peek() == Some(',') {
            self.pos += 1;
            Ok(())
        } else {
            Err(AsmDiagnostic::new(self.line, self.col(), "expected `,`"))
        }
    }

    fn reg(&mut self) -> Result<Reg, AsmDiagnostic> {
        self.skip_ws();
        let col = self.col();
        let name = self
            .ident()
            .ok_or_else(|| AsmDiagnostic::new(self.line, col, "expected a register"))?;
        reg_named(&name)
            .ok_or_else(|| AsmDiagnostic::new(self.line, col, format!("unknown register `{name}`")))
    }

    fn imm(&mut self) -> Result<i32, AsmDiagnostic> {
        self.skip_ws();
        let col = self.col();
        let rest = &self.text[self.pos..];
        let mut len = 0;
        for (i, c) in rest.char_indices() {
            let ok = c.is_ascii_alphanumeric() || (i == 0 && c == '-');
            if !ok {
                break;
            }
            len = i + c.len_utf8();
        }
        let word = &rest[..len];
        if word.is_empty() {
            return Err(AsmDiagnostic::new(self.line, col, "expected an immediate"));
        }
        let (digits, neg) = match word.strip_prefix('-') {
            Some(d) => (d, true),
            None => (word, false),
        };
        let parsed = match digits
            .strip_prefix("0x")
            .or_else(|| digits.strip_prefix("0X"))
        {
            Some(hex) => i64::from_str_radix(hex, 16),
            None => digits.parse::<i64>(),
        };
        let value = parsed
            .ok()
            .map(|v| if neg { -v } else { v })
            .and_then(|v| i32::try_from(v).ok())
            .ok_or_else(|| AsmDiagnostic::new(self.line, col, format!("bad immediate `{word}`")))?;
        self.pos += len;
        Ok(value)
    }

    /// Parses `offset(base)` — the memory-operand form `ld`/`st` print.
    fn mem_operand(&mut self) -> Result<(i32, Reg), AsmDiagnostic> {
        let offset = self.imm()?;
        self.skip_ws();
        if self.peek() != Some('(') {
            return Err(AsmDiagnostic::new(self.line, self.col(), "expected `(`"));
        }
        self.pos += 1;
        let base = self.reg()?;
        self.skip_ws();
        if self.peek() != Some(')') {
            return Err(AsmDiagnostic::new(self.line, self.col(), "expected `)`"));
        }
        self.pos += 1;
        Ok((offset, base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;

    const SUM_LOOP: &str = "\
# sum 0..10
.entry main
main:
    li   t0, 0
    li   t1, 10
    li   t2, 0
loop:
    bge  t0, t1, done   ; exit check
    add  t2, t2, t0
    addi t0, t0, 1
    j    loop
done:
    halt
";

    #[test]
    fn assembles_and_runs_the_sum_loop() {
        let program = assemble(SUM_LOOP).unwrap();
        let mut interp = Interpreter::new(&program, 1 << 16);
        let _trace: Vec<_> = interp.by_ref().collect();
        assert_eq!(interp.machine().reg(Reg::T2), 45);
    }

    #[test]
    fn text_matches_builder_output() {
        let program = assemble(SUM_LOOP).unwrap();
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        let loop_top = b.new_label("loop");
        let done = b.new_label("done");
        b.bind(main).unwrap();
        b.entry(main);
        b.li(Reg::T0, 0).li(Reg::T1, 10).li(Reg::T2, 0);
        b.bind(loop_top).unwrap();
        b.branch(Cond::Ge, Reg::T0, Reg::T1, done);
        b.add(Reg::T2, Reg::T2, Reg::T0);
        b.addi(Reg::T0, Reg::T0, 1);
        b.jump(loop_top);
        b.bind(done).unwrap();
        b.halt();
        let reference = b.build().unwrap();
        assert_eq!(program.len(), reference.len());
        for i in 0..program.len() as u32 {
            assert_eq!(
                program.fetch(Addr::new(i)),
                reference.fetch(Addr::new(i)),
                "instruction {i}"
            );
        }
        assert_eq!(program.entry(), reference.entry());
    }

    #[test]
    fn full_mnemonic_surface_assembles() {
        let src = "\
start:
    add  t0, t1, t2
    subi t0, t0, -3
    sltu t3, t0, t1
    li   a0, 0x10
    la   a1, start
    mv   a2, a0
    ld   s0, 4(sp)
    st   s0, -1(sp)
    beqz s0, start
    bltu t0, t1, 0
    call start
    callr a1
    jr   a1
    trap 7
    nop
    ret
    halt
";
        let p = assemble(src).unwrap();
        assert_eq!(p.len(), 17);
        assert_eq!(
            p.fetch(Addr::new(1)),
            Some(Instr::AluImm {
                op: AluOp::Sub,
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: -3
            })
        );
        assert_eq!(
            p.fetch(Addr::new(6)),
            Some(Instr::Load {
                rd: Reg::S0,
                base: Reg::SP,
                offset: 4
            })
        );
        // `la start` records the label as address-taken.
        assert_eq!(p.address_taken(), &[Addr::new(0)]);
    }

    #[test]
    fn diagnostics_carry_positions() {
        let err = assemble("  frobnicate t0, t1\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));
        assert!(err.message.contains("frobnicate"));

        let err = assemble("nop\n  add t0, t1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(
            err.message.contains('`') || err.message.contains(','),
            "{}",
            err.message
        );

        let err = assemble("add t0, t1, bogus\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 13));
        assert!(err.message.contains("bogus"));

        let err = assemble("li t0, zzz\n").unwrap_err();
        assert!(err.message.contains("immediate"), "{}", err.message);
    }

    #[test]
    fn unbound_label_points_at_first_reference() {
        let err = assemble("nop\n    j nowhere\nhalt\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_points_at_redefinition() {
        let err = assemble("x:\n nop\nx:\n halt\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("line 1"), "{}", err.message);
    }

    #[test]
    fn out_of_range_target_is_a_whole_program_error() {
        let err = assemble("j 99\nhalt\n").unwrap_err();
        assert_eq!((err.line, err.col), (0, 0));
        assert!(err.message.contains("out-of-range"), "{}", err.message);
    }

    #[test]
    fn empty_source_is_an_error_not_a_panic() {
        assert!(assemble("").is_err());
        assert!(assemble("# only comments\n\n  ; here\n").is_err());
    }

    #[test]
    fn trailing_operands_are_rejected() {
        let err = assemble("nop nop\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("trailing"), "{}", err.message);
    }

    #[test]
    fn rejects_leading_zero_register_forms() {
        assert!(assemble("add a01, t0, t1\n").is_err());
        assert!(assemble("add a9, t0, t1\n").is_err());
        assert!(assemble("add t12, t0, t1\n").is_err());
    }

    #[test]
    fn display_forms_reassemble() {
        // Every non-control Display form must parse back to itself.
        let instrs = [
            Instr::Alu {
                op: AluOp::Sra,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            },
            Instr::AluImm {
                op: AluOp::Xor,
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: -7,
            },
            Instr::Li {
                rd: Reg::S3,
                imm: 123,
            },
            Instr::Load {
                rd: Reg::T0,
                base: Reg::SP,
                offset: 2,
            },
            Instr::Store {
                src: Reg::T0,
                base: Reg::GP,
                offset: -2,
            },
            Instr::JumpInd { base: Reg::T3 },
            Instr::CallInd { base: Reg::T4 },
            Instr::Trap { code: 9 },
            Instr::Ret,
            Instr::Nop,
            Instr::Halt,
        ];
        for i in instrs {
            let src = format!("{i}\nhalt\n");
            let p = assemble(&src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
            assert_eq!(p.fetch(Addr::new(0)), Some(i), "{src:?}");
        }
    }
}
