//! Instruction definitions and static classification.

use std::fmt;

use crate::program::Addr;
use crate::reg::Reg;

/// Integer ALU operations.
///
/// Division follows the RISC-V convention: division by zero produces all
/// ones (`u64::MAX`) for `Div`/`Divu` and the dividend for `Rem`, rather
/// than trapping, so workloads never fault on data-dependent divisors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (3-cycle latency in the timing model).
    Mul,
    /// Signed division (12-cycle latency in the timing model).
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Set if less-than, signed (1 or 0).
    Slt,
    /// Set if less-than, unsigned.
    Sltu,
    /// 32-bit wrapping addition, result sign-extended to 64 bits.
    ///
    /// The `*w` operations give the RV32I translation (`tc-rv`) exact
    /// 32-bit wrap semantics while keeping every register value in the
    /// sign-extended-32-bit canonical form the translator guarantees.
    Addw,
    /// 32-bit wrapping subtraction, sign-extended.
    Subw,
    /// 32-bit logical shift left (amount masked to 5 bits), sign-extended.
    Sllw,
    /// 32-bit logical shift right, sign-extended.
    Srlw,
    /// 32-bit arithmetic shift right, sign-extended.
    Sraw,
}

/// Sign-extends the low 32 bits of a value to 64 bits.
#[inline]
fn sext32(x: u64) -> u64 {
    x as u32 as i32 as i64 as u64
}

impl AluOp {
    /// Evaluates the operation on two operand values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    (a as i64).wrapping_div(b as i64) as u64
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i64).wrapping_rem(b as i64) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
            AluOp::Addw => sext32(a.wrapping_add(b)),
            AluOp::Subw => sext32(a.wrapping_sub(b)),
            AluOp::Sllw => sext32(u64::from((a as u32).wrapping_shl((b & 31) as u32))),
            AluOp::Srlw => sext32(u64::from((a as u32).wrapping_shr((b & 31) as u32))),
            AluOp::Sraw => ((a as u32 as i32).wrapping_shr((b & 31) as u32)) as i64 as u64,
        }
    }

    /// Execution latency of the operation in cycles, used by the timing
    /// model in `tc-engine`.
    #[must_use]
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 12,
            _ => 1,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Sllw => "sllw",
            AluOp::Srlw => "srlw",
            AluOp::Sraw => "sraw",
        };
        f.write_str(s)
    }
}

/// Conditions for conditional branches, comparing two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// Evaluates the condition on two register values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// The opposite condition (`eval` of the negation is `!eval`).
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        };
        f.write_str(s)
    }
}

/// The control-flow class of an instruction, as seen by the front end.
///
/// This classification drives fetch-block formation and trace-segment
/// finalization in `tc-core`, following §3 of the paper:
///
/// * conditional branches terminate fetch blocks and count toward the
///   3-branch limit of a trace segment;
/// * unconditional direct jumps and calls do *not* terminate blocks within
///   trace segments;
/// * returns, indirect jumps/calls, and serializing traps force the pending
///   trace segment to be finalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlKind {
    /// Not a control instruction.
    None,
    /// Conditional direct branch.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (writes the link register).
    Call,
    /// Return (jumps to the link register).
    Return,
    /// Indirect jump through a register.
    IndirectJump,
    /// Indirect call through a register.
    IndirectCall,
    /// Serializing trap / system instruction.
    Trap,
}

impl ControlKind {
    /// Whether this instruction redirects the PC at all.
    #[must_use]
    pub fn is_control(self) -> bool {
        self != ControlKind::None
    }

    /// Whether the front end must terminate the *trace segment* after this
    /// instruction (returns, indirect branches, serializing instructions).
    #[must_use]
    pub fn ends_segment(self) -> bool {
        matches!(
            self,
            ControlKind::Return
                | ControlKind::IndirectJump
                | ControlKind::IndirectCall
                | ControlKind::Trap
        )
    }

    /// Whether the instruction's target comes from a register rather than
    /// the instruction encoding.
    #[must_use]
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            ControlKind::Return | ControlKind::IndirectJump | ControlKind::IndirectCall
        )
    }
}

/// Access width of a narrow (byte-addressed) memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
}

impl MemWidth {
    /// The access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// One fixed-width (4-byte) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Register-register ALU operation: `rd = op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(rs1, imm)`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate operand (sign-extended).
        imm: i32,
    },
    /// Load immediate: `rd = imm`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// Load word: `rd = mem[rs1 + offset]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset (sign-extended).
        offset: i32,
    },
    /// Store word: `mem[rs1 + offset] = src`.
    Store {
        /// Register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset (sign-extended).
        offset: i32,
    },
    /// Narrow load, *byte*-addressed: `rd = mem_bytes[rs1 + offset ..][..width]`.
    ///
    /// Data memory is viewed as little-endian bytes packed eight to a
    /// `u64` word; the effective byte address must be naturally aligned
    /// for `width`, so an access never spans two backing words. Used by
    /// the RV32I translation (`tc-rv`); the synthetic workloads use the
    /// word-addressed [`Instr::Load`].
    LoadN {
        /// Destination register.
        rd: Reg,
        /// Base address register (byte address).
        base: Reg,
        /// Byte offset (sign-extended).
        offset: i32,
        /// Access width.
        width: MemWidth,
        /// Sign-extend (`true`) or zero-extend the loaded value.
        signed: bool,
    },
    /// Narrow store, byte-addressed: `mem_bytes[rs1 + offset ..][..width] = src`.
    StoreN {
        /// Register holding the value to store (low `width` bytes used).
        src: Reg,
        /// Base address register (byte address).
        base: Reg,
        /// Byte offset (sign-extended).
        offset: i32,
        /// Access width.
        width: MemWidth,
    },
    /// Conditional direct branch: `if cond(rs1, rs2) goto target`.
    Branch {
        /// Branch condition.
        cond: Cond,
        /// First comparison register.
        rs1: Reg,
        /// Second comparison register.
        rs2: Reg,
        /// Branch target.
        target: Addr,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target.
        target: Addr,
    },
    /// Direct call: `ra = pc + 1; goto target`.
    Call {
        /// Call target.
        target: Addr,
    },
    /// Return: `goto ra`.
    Ret,
    /// Indirect jump: `goto regs[base]` (the register holds an instruction
    /// index, i.e. an [`Addr`] value).
    JumpInd {
        /// Register holding the target instruction index.
        base: Reg,
    },
    /// Indirect call: `ra = pc + 1; goto regs[base]`.
    CallInd {
        /// Register holding the target instruction index.
        base: Reg,
    },
    /// Serializing trap (models a syscall); architecturally a no-op.
    Trap {
        /// Trap code for diagnostics.
        code: u16,
    },
    /// No operation.
    Nop,
    /// Stops the interpreter; never fetched by the timing model.
    Halt,
}

impl Instr {
    /// The control-flow class of this instruction.
    #[must_use]
    pub fn control_kind(&self) -> ControlKind {
        match self {
            Instr::Branch { .. } => ControlKind::CondBranch,
            Instr::Jump { .. } => ControlKind::Jump,
            Instr::Call { .. } => ControlKind::Call,
            Instr::Ret => ControlKind::Return,
            Instr::JumpInd { .. } => ControlKind::IndirectJump,
            Instr::CallInd { .. } => ControlKind::IndirectCall,
            Instr::Trap { .. } => ControlKind::Trap,
            _ => ControlKind::None,
        }
    }

    /// Whether this is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// Whether this instruction accesses data memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this instruction is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::LoadN { .. })
    }

    /// Whether this instruction is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. } | Instr::StoreN { .. })
    }

    /// The destination register written by this instruction, if any.
    ///
    /// Calls report the link register [`Reg::RA`].
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        let rd = match self {
            Instr::Alu { rd, .. } | Instr::AluImm { rd, .. } | Instr::Li { rd, .. } => *rd,
            Instr::Load { rd, .. } | Instr::LoadN { rd, .. } => *rd,
            Instr::Call { .. } | Instr::CallInd { .. } => Reg::RA,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// The source registers read by this instruction (up to two), excluding
    /// the hardwired zero register.
    #[must_use]
    pub fn sources(&self) -> [Option<Reg>; 2] {
        let keep = |r: Reg| if r.is_zero() { None } else { Some(r) };
        match self {
            Instr::Alu { rs1, rs2, .. } => [keep(*rs1), keep(*rs2)],
            Instr::AluImm { rs1, .. } => [keep(*rs1), None],
            Instr::Li { .. } => [None, None],
            Instr::Load { base, .. } | Instr::LoadN { base, .. } => [keep(*base), None],
            Instr::Store { src, base, .. } | Instr::StoreN { src, base, .. } => {
                [keep(*src), keep(*base)]
            }
            Instr::Branch { rs1, rs2, .. } => [keep(*rs1), keep(*rs2)],
            Instr::Ret => [keep(Reg::RA), None],
            Instr::JumpInd { base } | Instr::CallInd { base } => [keep(*base), None],
            _ => [None, None],
        }
    }

    /// Execution latency in cycles, excluding cache effects for memory
    /// operations.
    #[must_use]
    pub fn latency(&self) -> u32 {
        match self {
            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => op.latency(),
            _ => 1,
        }
    }

    /// The statically-encoded direct target of this instruction, if any.
    #[must_use]
    pub fn direct_target(&self) -> Option<Addr> {
        match self {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Call { target } => {
                Some(*target)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Instr::AluImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Instr::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Instr::LoadN {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let m = match (width, signed) {
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Word, _) => "lw",
                };
                write!(f, "{m} {rd}, {offset}({base})")
            }
            Instr::StoreN {
                src,
                base,
                offset,
                width,
            } => {
                let m = match width {
                    MemWidth::Byte => "sb",
                    MemWidth::Half => "sh",
                    MemWidth::Word => "sw",
                };
                write!(f, "{m} {src}, {offset}({base})")
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "{cond} {rs1}, {rs2}, {target}")
            }
            Instr::Jump { target } => write!(f, "j {target}"),
            Instr::Call { target } => write!(f, "call {target}"),
            Instr::Ret => write!(f, "ret"),
            Instr::JumpInd { base } => write!(f, "jr {base}"),
            Instr::CallInd { base } => write!(f, "callr {base}"),
            Instr::Trap { code } => write!(f, "trap {code}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_matches_semantics() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), u64::MAX); // wraps
        assert_eq!(AluOp::Mul.eval(6, 7), 42);
        assert_eq!(AluOp::Div.eval(42, 6), 7);
        assert_eq!(AluOp::Div.eval(1, 0), u64::MAX);
        assert_eq!(AluOp::Rem.eval(43, 6), 1);
        assert_eq!(AluOp::Rem.eval(43, 0), 43);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 1), (-4i64) as u64);
    }

    #[test]
    fn word_ops_wrap_at_32_bits_and_sign_extend() {
        // 0x7fff_ffff + 1 overflows the 32-bit range and sign-extends.
        assert_eq!(AluOp::Addw.eval(0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(AluOp::Subw.eval(0, 1), u64::MAX);
        // Bits above 31 in the operands are ignored.
        assert_eq!(AluOp::Addw.eval(0xdead_0000_0000_0003, 4), 7);
        assert_eq!(AluOp::Sllw.eval(1, 31), 0xffff_ffff_8000_0000);
        assert_eq!(AluOp::Sllw.eval(1, 32), 1); // amount masked to 5 bits
        assert_eq!(AluOp::Srlw.eval(0xffff_ffff_8000_0000, 31), 1);
        assert_eq!(AluOp::Sraw.eval(0xffff_ffff_8000_0000, 31), u64::MAX);
        for op in [
            AluOp::Addw,
            AluOp::Subw,
            AluOp::Sllw,
            AluOp::Srlw,
            AluOp::Sraw,
        ] {
            assert_eq!(op.latency(), 1);
        }
    }

    #[test]
    fn narrow_memory_ops_classify_as_memory_accesses() {
        let load = Instr::LoadN {
            rd: Reg::T0,
            base: Reg::SP,
            offset: -2,
            width: MemWidth::Word,
            signed: true,
        };
        let store = Instr::StoreN {
            src: Reg::T1,
            base: Reg::SP,
            offset: 6,
            width: MemWidth::Half,
        };
        assert!(load.is_mem() && load.is_load() && !load.is_store());
        assert!(store.is_mem() && store.is_store() && !store.is_load());
        assert_eq!(load.dest(), Some(Reg::T0));
        assert_eq!(store.dest(), None);
        assert_eq!(load.sources(), [Some(Reg::SP), None]);
        assert_eq!(store.sources(), [Some(Reg::T1), Some(Reg::SP)]);
        assert_eq!(load.control_kind(), ControlKind::None);
        assert_eq!(load.to_string(), "lw t0, -2(sp)");
        assert_eq!(store.to_string(), "sh t1, 6(sp)");
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
    }

    #[test]
    fn signed_division_truncates_toward_zero() {
        assert_eq!(AluOp::Div.eval((-7i64) as u64, 2) as i64, -3);
        assert_eq!(AluOp::Rem.eval((-7i64) as u64, 2) as i64, -1);
    }

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];
        let samples = [(0u64, 0u64), (1, 2), (2, 1), (u64::MAX, 0), (0, u64::MAX)];
        for c in conds {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in samples {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn control_kinds_classify_per_paper() {
        assert!(!Instr::Nop.control_kind().is_control());
        assert!(Instr::Ret.control_kind().ends_segment());
        assert!(Instr::JumpInd { base: Reg::T0 }
            .control_kind()
            .ends_segment());
        assert!(Instr::Trap { code: 0 }.control_kind().ends_segment());
        // Jumps and calls do not end segments (paper §3).
        assert!(!Instr::Jump {
            target: Addr::new(0)
        }
        .control_kind()
        .ends_segment());
        assert!(!Instr::Call {
            target: Addr::new(0)
        }
        .control_kind()
        .ends_segment());
        assert!(!Instr::Branch {
            cond: Cond::Eq,
            rs1: Reg::T0,
            rs2: Reg::T1,
            target: Addr::new(0)
        }
        .control_kind()
        .ends_segment());
    }

    #[test]
    fn dest_and_sources_ignore_zero_register() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::T1,
        };
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources(), [None, Some(Reg::T1)]);
    }

    #[test]
    fn calls_write_the_link_register() {
        assert_eq!(
            Instr::Call {
                target: Addr::new(5)
            }
            .dest(),
            Some(Reg::RA)
        );
        assert_eq!(Instr::CallInd { base: Reg::T0 }.dest(), Some(Reg::RA));
        assert_eq!(Instr::Ret.sources(), [Some(Reg::RA), None]);
    }

    #[test]
    fn latency_uses_alu_op_latency() {
        let mul = Instr::Alu {
            op: AluOp::Mul,
            rd: Reg::T0,
            rs1: Reg::T1,
            rs2: Reg::T2,
        };
        assert_eq!(mul.latency(), 3);
        assert_eq!(Instr::Nop.latency(), 1);
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let instrs = [
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            },
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::T1,
                imm: -3,
            },
            Instr::Li {
                rd: Reg::T0,
                imm: 9,
            },
            Instr::Load {
                rd: Reg::T0,
                base: Reg::SP,
                offset: 1,
            },
            Instr::Store {
                src: Reg::T0,
                base: Reg::SP,
                offset: -1,
            },
            Instr::LoadN {
                rd: Reg::T0,
                base: Reg::SP,
                offset: 2,
                width: MemWidth::Half,
                signed: false,
            },
            Instr::StoreN {
                src: Reg::T0,
                base: Reg::SP,
                offset: 3,
                width: MemWidth::Byte,
            },
            Instr::Branch {
                cond: Cond::Ne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                target: Addr::new(3),
            },
            Instr::Jump {
                target: Addr::new(4),
            },
            Instr::Call {
                target: Addr::new(8),
            },
            Instr::Ret,
            Instr::JumpInd { base: Reg::T3 },
            Instr::CallInd { base: Reg::T3 },
            Instr::Trap { code: 7 },
            Instr::Nop,
            Instr::Halt,
        ];
        for i in instrs {
            assert!(!i.to_string().is_empty());
        }
    }
}
