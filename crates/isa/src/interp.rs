//! Functional interpreter producing the dynamic instruction stream.

use std::fmt;

use crate::instr::{Instr, MemWidth};
use crate::program::{Addr, Program};
use crate::reg::Reg;
use crate::stream::ExecRecord;

/// The in-word bit mask (before shifting) of a narrow access lane.
#[inline]
fn lane_mask(width: MemWidth) -> u64 {
    match width {
        MemWidth::Byte => 0xff,
        MemWidth::Half => 0xffff,
        MemWidth::Word => 0xffff_ffff,
    }
}

/// Errors raised during functional execution. These indicate a *workload*
/// bug (the synthetic benchmarks are expected to be well-formed), so the
/// timing layers treat them as fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the program (e.g. an indirect jump through a corrupted
    /// register).
    PcOutOfRange {
        /// The bad program counter.
        pc: Addr,
    },
    /// A load or store touched an address outside data memory.
    MemOutOfBounds {
        /// Address of the faulting instruction.
        pc: Addr,
        /// The faulting word address.
        addr: u64,
        /// Size of data memory in words.
        mem_words: u64,
    },
    /// A narrow (byte-addressed) access was not naturally aligned.
    MemUnaligned {
        /// Address of the faulting instruction.
        pc: Addr,
        /// The faulting byte address.
        addr: u64,
        /// Required alignment in bytes (the access width).
        bytes: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            ExecError::MemOutOfBounds {
                pc,
                addr,
                mem_words,
            } => write!(
                f,
                "memory access at {pc} touches word {addr:#x} outside {mem_words:#x}-word memory"
            ),
            ExecError::MemUnaligned { pc, addr, bytes } => write!(
                f,
                "misaligned {bytes}-byte access at {pc} to byte address {addr:#x}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// The architectural state of the machine: registers, data memory, PC.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u64; Reg::COUNT],
    mem: Vec<u64>,
    pc: Addr,
    retired: u64,
    halted: bool,
}

/// Result of a single interpreter step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction executed.
    Executed(ExecRecord),
    /// The machine reached a `halt` and stopped.
    Halted,
}

impl Machine {
    /// Creates a machine with `mem_words` words of zeroed data memory.
    ///
    /// The stack pointer is initialized to the top of memory and grows
    /// down; the global pointer starts at 0.
    #[must_use]
    pub fn new(entry: Addr, mem_words: usize) -> Machine {
        let mut m = Machine {
            regs: [0; Reg::COUNT],
            mem: vec![0; mem_words],
            pc: entry,
            retired: 0,
            halted: false,
        };
        m.set_reg(Reg::SP, mem_words as u64 - 1);
        m
    }

    /// Reads register `r`.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes register `r`. Writes to the zero register are discarded.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Reads the data-memory word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range; use only for test/setup access.
    #[must_use]
    pub fn mem(&self, addr: u64) -> u64 {
        self.mem[addr as usize]
    }

    /// Writes the data-memory word at `addr` (setup/test helper).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn set_mem(&mut self, addr: u64, value: u64) {
        self.mem[addr as usize] = value;
    }

    /// Copies `words` into memory starting at `base` (setup helper).
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit.
    pub fn load_image(&mut self, base: u64, words: &[u64]) {
        let base = base as usize;
        self.mem[base..base + words.len()].copy_from_slice(words);
    }

    /// Data memory size in words.
    #[must_use]
    pub fn mem_words(&self) -> usize {
        self.mem.len()
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Number of instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the machine has executed a `halt`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Reconstructs a machine from fully explicit state, as captured by
    /// [`Machine::regs`] / [`Machine::memory`] and the scalar accessors.
    /// This is the checkpoint-restore constructor: no implicit
    /// initialisation (stack pointer, zeroing) is applied, so a machine
    /// rebuilt from another machine's state is bit-identical to it.
    #[must_use]
    pub fn from_parts(
        regs: [u64; Reg::COUNT],
        mem: Vec<u64>,
        pc: Addr,
        retired: u64,
        halted: bool,
    ) -> Machine {
        Machine {
            regs,
            mem,
            pc,
            retired,
            halted,
        }
    }

    /// The full register file, indexed by [`Reg::index`].
    #[must_use]
    pub fn regs(&self) -> &[u64; Reg::COUNT] {
        &self.regs
    }

    /// The full data memory image.
    #[must_use]
    pub fn memory(&self) -> &[u64] {
        &self.mem
    }

    /// Marks the machine halted (fast-path executor helper).
    pub(crate) fn set_halted(&mut self) {
        self.halted = true;
    }

    /// Batched PC/retired commit for the fast-path executor: jumps the PC
    /// to `pc` and credits `count` retired instructions.
    pub(crate) fn commit_straight(&mut self, pc: Addr, count: u64) {
        self.pc = pc;
        self.retired += count;
    }

    pub(crate) fn data_addr(&self, pc: Addr, base: Reg, offset: i32) -> Result<u64, ExecError> {
        let addr = self.reg(base).wrapping_add(offset as i64 as u64);
        if (addr as usize) < self.mem.len() {
            Ok(addr)
        } else {
            Err(ExecError::MemOutOfBounds {
                pc,
                addr,
                mem_words: self.mem.len() as u64,
            })
        }
    }

    /// Resolves the *byte* address of a narrow access and checks natural
    /// alignment and bounds. Data memory is viewed as little-endian
    /// bytes packed eight to a word, so a naturally-aligned access never
    /// spans two backing words.
    pub(crate) fn narrow_addr(
        &self,
        pc: Addr,
        base: Reg,
        offset: i32,
        width: MemWidth,
    ) -> Result<u64, ExecError> {
        let addr = self.reg(base).wrapping_add(offset as i64 as u64);
        let bytes = width.bytes();
        if addr % bytes != 0 {
            return Err(ExecError::MemUnaligned { pc, addr, bytes });
        }
        let mem_bytes = (self.mem.len() as u64).saturating_mul(8);
        if addr.checked_add(bytes).map_or(true, |end| end > mem_bytes) {
            return Err(ExecError::MemOutOfBounds {
                pc,
                addr: addr >> 3,
                mem_words: self.mem.len() as u64,
            });
        }
        Ok(addr)
    }

    /// Reads a naturally-aligned narrow value at byte address `addr`.
    pub(crate) fn narrow_load(&self, addr: u64, width: MemWidth, signed: bool) -> u64 {
        let word = self.mem[(addr >> 3) as usize];
        let lane = (word >> ((addr & 7) * 8)) & lane_mask(width);
        match (width, signed) {
            (MemWidth::Byte, true) => lane as u8 as i8 as i64 as u64,
            (MemWidth::Half, true) => lane as u16 as i16 as i64 as u64,
            // Full words always land in the canonical sign-extended-32
            // register form regardless of `signed`.
            (MemWidth::Word, _) => lane as u32 as i32 as i64 as u64,
            (MemWidth::Byte | MemWidth::Half, false) => lane,
        }
    }

    /// Writes the low `width` bytes of `value` at byte address `addr`.
    pub(crate) fn narrow_store(&mut self, addr: u64, width: MemWidth, value: u64) {
        let shift = (addr & 7) * 8;
        let mask = lane_mask(width) << shift;
        let slot = &mut self.mem[(addr >> 3) as usize];
        *slot = (*slot & !mask) | ((value << shift) & mask);
    }

    /// Executes one instruction of `program`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the PC leaves the program or a memory
    /// access is out of bounds.
    pub fn step(&mut self, program: &Program) -> Result<StepOutcome, ExecError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.pc;
        let instr = program.fetch(pc).ok_or(ExecError::PcOutOfRange { pc })?;

        let mut next_pc = pc.next();
        let mut taken = false;
        let mut mem_addr = None;

        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm as i64 as u64);
                self.set_reg(rd, v);
            }
            Instr::Li { rd, imm } => self.set_reg(rd, imm as i64 as u64),
            Instr::Load { rd, base, offset } => {
                let addr = self.data_addr(pc, base, offset)?;
                mem_addr = Some(addr);
                let v = self.mem[addr as usize];
                self.set_reg(rd, v);
            }
            Instr::Store { src, base, offset } => {
                let addr = self.data_addr(pc, base, offset)?;
                mem_addr = Some(addr);
                self.mem[addr as usize] = self.reg(src);
            }
            Instr::LoadN {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let addr = self.narrow_addr(pc, base, offset, width)?;
                mem_addr = Some(addr >> 3);
                let v = self.narrow_load(addr, width, signed);
                self.set_reg(rd, v);
            }
            Instr::StoreN {
                src,
                base,
                offset,
                width,
            } => {
                let addr = self.narrow_addr(pc, base, offset, width)?;
                mem_addr = Some(addr >> 3);
                let v = self.reg(src);
                self.narrow_store(addr, width, v);
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                taken = cond.eval(self.reg(rs1), self.reg(rs2));
                if taken {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::Call { target } => {
                self.set_reg(Reg::RA, u64::from(pc.next()));
                next_pc = target;
            }
            Instr::Ret => next_pc = Addr::new(self.reg(Reg::RA) as u32),
            Instr::JumpInd { base } => next_pc = Addr::new(self.reg(base) as u32),
            Instr::CallInd { base } => {
                let target = Addr::new(self.reg(base) as u32);
                self.set_reg(Reg::RA, u64::from(pc.next()));
                next_pc = target;
            }
            Instr::Trap { .. } | Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                return Ok(StepOutcome::Halted);
            }
        }

        if next_pc.index() >= program.len() {
            return Err(ExecError::PcOutOfRange { pc: next_pc });
        }

        self.pc = next_pc;
        self.retired += 1;
        Ok(StepOutcome::Executed(ExecRecord {
            pc,
            instr,
            next_pc,
            taken,
            mem_addr,
        }))
    }
}

/// Iterator adapter over [`Machine::step`]: yields the dynamic instruction
/// stream of a program until it halts, errs, or is dropped.
///
/// Errors stop iteration; check [`Interpreter::error`] afterwards. (The
/// synthetic workloads never err, which integration tests verify.)
#[derive(Debug, Clone)]
pub struct Interpreter<'p> {
    program: &'p Program,
    machine: Machine,
    error: Option<ExecError>,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter over `program` with `mem_words` words of
    /// data memory.
    #[must_use]
    pub fn new(program: &'p Program, mem_words: usize) -> Interpreter<'p> {
        Interpreter {
            program,
            machine: Machine::new(program.entry(), mem_words),
            error: None,
        }
    }

    /// Creates an interpreter from a pre-initialized machine (e.g. with a
    /// loaded data image).
    #[must_use]
    pub fn with_machine(program: &'p Program, machine: Machine) -> Interpreter<'p> {
        Interpreter {
            program,
            machine,
            error: None,
        }
    }

    /// The underlying machine state.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine (setup helper).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The error that stopped iteration, if any.
    #[must_use]
    pub fn error(&self) -> Option<&ExecError> {
        self.error.as_ref()
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Fast-forwards up to `max_insts` instructions through the
    /// predecoded block cache without yielding records, returning how
    /// many retired. Architecturally bit-identical to draining the same
    /// count through [`Iterator::next`]; on a fault the error is latched
    /// (see [`Interpreter::error`]) and iteration stops, exactly as for
    /// stepped execution.
    pub fn fast_forward(&mut self, blocks: &crate::fastpath::BlockCache, max_insts: u64) -> u64 {
        if self.error.is_some() {
            return 0;
        }
        let before = self.machine.retired();
        match self.machine.fast_forward(self.program, blocks, max_insts) {
            Ok(n) => n,
            Err(e) => {
                self.error = Some(e);
                self.machine.retired() - before
            }
        }
    }
}

impl Iterator for Interpreter<'_> {
    type Item = ExecRecord;

    fn next(&mut self) -> Option<ExecRecord> {
        if self.error.is_some() {
            return None;
        }
        match self.machine.step(self.program) {
            Ok(StepOutcome::Executed(rec)) => Some(rec),
            Ok(StepOutcome::Halted) => None,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::instr::Cond;

    #[test]
    fn straight_line_execution() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 5).addi(Reg::T0, Reg::T0, 3).halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        let recs: Vec<_> = i.by_ref().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(i.machine().reg(Reg::T0), 8);
        assert!(i.machine().is_halted());
        assert!(i.error().is_none());
    }

    #[test]
    fn loop_sums_integers() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label("top");
        let done = b.new_label("done");
        b.li(Reg::T0, 0).li(Reg::T1, 100).li(Reg::T2, 0);
        b.bind(top).unwrap();
        b.branch(Cond::Ge, Reg::T0, Reg::T1, done);
        b.add(Reg::T2, Reg::T2, Reg::T0);
        b.addi(Reg::T0, Reg::T0, 1);
        b.jump(top);
        b.bind(done).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        let n = i.by_ref().count();
        assert_eq!(i.machine().reg(Reg::T2), 4950);
        assert_eq!(n as u64, i.machine().retired());
    }

    #[test]
    fn call_and_return_through_link_register() {
        let mut b = ProgramBuilder::new();
        let func = b.new_label("func");
        let main = b.new_label("main");
        b.entry(main);
        b.bind(func).unwrap();
        b.li(Reg::A0, 42).ret();
        b.bind(main).unwrap();
        b.call(func).halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        let recs: Vec<_> = i.by_ref().collect();
        assert_eq!(i.machine().reg(Reg::A0), 42);
        // call, li, ret
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].instr.control_kind(), crate::ControlKind::Call);
        assert_eq!(recs[2].instr.control_kind(), crate::ControlKind::Return);
    }

    #[test]
    fn memory_roundtrip_and_stack_convention() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 99)
            .push_regs(&[Reg::T0])
            .li(Reg::T0, 0)
            .pop_regs(&[Reg::T0])
            .halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 128);
        let sp0 = i.machine().reg(Reg::SP);
        i.by_ref().for_each(drop);
        assert!(i.error().is_none());
        assert_eq!(i.machine().reg(Reg::T0), 99);
        assert_eq!(i.machine().reg(Reg::SP), sp0);
    }

    #[test]
    fn indirect_jump_through_register() {
        let mut b = ProgramBuilder::new();
        let t = b.new_label("t");
        b.la(Reg::T3, t).jr(Reg::T3).halt(); // halt is skipped
        b.bind(t).unwrap();
        b.li(Reg::T4, 7).halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        i.by_ref().for_each(drop);
        assert_eq!(i.machine().reg(Reg::T4), 7);
    }

    #[test]
    fn out_of_bounds_access_errors() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 1 << 20).load(Reg::T1, Reg::T0, 0).halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        i.by_ref().for_each(drop);
        assert!(matches!(i.error(), Some(ExecError::MemOutOfBounds { .. })));
    }

    #[test]
    fn branch_records_taken_flag_and_target() {
        let mut b = ProgramBuilder::new();
        let t = b.new_label("t");
        b.li(Reg::T0, 1).bnez(Reg::T0, t).nop();
        b.bind(t).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let recs: Vec<_> = Interpreter::new(&p, 64).collect();
        let br = recs.iter().find(|r| r.is_cond_branch()).unwrap();
        assert!(br.taken);
        assert_eq!(br.next_pc, Addr::new(3));
    }

    #[test]
    fn zero_register_stays_zero() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::ZERO, 55).addi(Reg::ZERO, Reg::ZERO, 3).halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        i.by_ref().for_each(drop);
        assert_eq!(i.machine().reg(Reg::ZERO), 0);
    }

    #[test]
    fn trap_is_architectural_noop() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 3).trap(1).addi(Reg::T0, Reg::T0, 1).halt();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, 64);
        let recs: Vec<_> = i.by_ref().collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(i.machine().reg(Reg::T0), 4);
    }
}
