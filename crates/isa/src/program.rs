//! Static programs: instruction storage and addresses.

use std::fmt;

use crate::instr::Instr;

/// An instruction address, expressed as an instruction *index*.
///
/// Instructions are fixed 4-byte words; the byte address used by the cache
/// models is `4 * index` (see [`Addr::byte_addr`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl Addr {
    /// Bytes per instruction.
    pub const INSTR_BYTES: u64 = 4;

    /// Creates an address from an instruction index.
    #[must_use]
    pub fn new(index: u32) -> Addr {
        Addr(index)
    }

    /// The instruction index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u32`.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The byte address of this instruction (`4 * index`), as used by the
    /// instruction cache models.
    #[must_use]
    pub fn byte_addr(self) -> u64 {
        u64::from(self.0) * Addr::INSTR_BYTES
    }

    /// The address `count` instructions after this one.
    #[must_use]
    pub fn offset(self, count: u32) -> Addr {
        Addr(self.0.wrapping_add(count))
    }

    /// The address of the next instruction.
    #[must_use]
    pub fn next(self) -> Addr {
        self.offset(1)
    }

    /// Signed distance in instructions from `other` to `self`.
    #[must_use]
    pub fn distance_from(self, other: Addr) -> i64 {
        i64::from(self.0) - i64::from(other.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.byte_addr())
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        u64::from(a.0)
    }
}

/// Errors detected while validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A direct control transfer targets an address outside the program.
    TargetOutOfRange {
        /// Address of the offending instruction.
        at: Addr,
        /// The out-of-range target.
        target: Addr,
    },
    /// The entry point is outside the program.
    EntryOutOfRange {
        /// The bad entry address.
        entry: Addr,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program contains no instructions"),
            ProgramError::TargetOutOfRange { at, target } => {
                write!(
                    f,
                    "instruction at {at} targets out-of-range address {target}"
                )
            }
            ProgramError::EntryOutOfRange { entry } => {
                write!(f, "entry point {entry} is out of range")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// An immutable, validated static program.
///
/// Construct programs with [`crate::ProgramBuilder`]; `Program::new`
/// validates that every direct branch/jump/call target and the entry point
/// fall inside the instruction array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    entry: Addr,
    /// Code addresses whose value escapes into a register (`la`): the
    /// possible targets of indirect jumps and calls.
    address_taken: Vec<Addr>,
}

impl Program {
    /// Creates a program from raw instructions, validating all direct
    /// targets and the entry point. The program carries no address-taken
    /// metadata; use [`Program::with_address_taken`] to record the
    /// possible targets of indirect control transfers.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the program is empty, the entry point is
    /// out of range, or any direct control-transfer target is out of range.
    pub fn new(instrs: Vec<Instr>, entry: Addr) -> Result<Program, ProgramError> {
        Program::with_address_taken(instrs, entry, vec![])
    }

    /// Creates a program that additionally records which code addresses
    /// have been taken as values (loaded into registers by `la`). Static
    /// analysis uses these as the possible targets of indirect jumps and
    /// calls. The list is sorted, deduplicated, and validated in range.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] under the same conditions as
    /// [`Program::new`], plus [`ProgramError::TargetOutOfRange`] (with
    /// `at` equal to the offending address) for any out-of-range
    /// address-taken entry.
    pub fn with_address_taken(
        instrs: Vec<Instr>,
        entry: Addr,
        mut address_taken: Vec<Addr>,
    ) -> Result<Program, ProgramError> {
        if instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        if entry.index() >= instrs.len() {
            return Err(ProgramError::EntryOutOfRange { entry });
        }
        for (i, instr) in instrs.iter().enumerate() {
            if let Some(target) = instr.direct_target() {
                if target.index() >= instrs.len() {
                    return Err(ProgramError::TargetOutOfRange {
                        at: Addr::new(i as u32),
                        target,
                    });
                }
            }
        }
        address_taken.sort_unstable();
        address_taken.dedup();
        for &addr in &address_taken {
            if addr.index() >= instrs.len() {
                return Err(ProgramError::TargetOutOfRange {
                    at: addr,
                    target: addr,
                });
            }
        }
        Ok(Program {
            instrs,
            entry,
            address_taken,
        })
    }

    /// The program's entry point.
    #[must_use]
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions (never true for a validated
    /// program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `addr`, or `None` if out of range.
    #[must_use]
    pub fn fetch(&self, addr: Addr) -> Option<Instr> {
        self.instrs.get(addr.index()).copied()
    }

    /// All instructions, in address order.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Code addresses taken as values (sorted, deduplicated): the set of
    /// possible targets of indirect jumps and calls. Empty when the
    /// program was built without address-taken metadata.
    #[must_use]
    pub fn address_taken(&self) -> &[Addr] {
        &self.address_taken
    }

    /// Counts static instructions matching a predicate; handy for workload
    /// characterization tests.
    #[must_use]
    pub fn count_matching(&self, pred: impl Fn(&Instr) -> bool) -> usize {
        self.instrs.iter().filter(|i| pred(i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;
    use crate::reg::Reg;

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(10);
        assert_eq!(a.byte_addr(), 40);
        assert_eq!(a.next().index(), 11);
        assert_eq!(a.offset(5).index(), 15);
        assert_eq!(a.distance_from(Addr::new(12)), -2);
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::new(vec![], Addr::new(0)), Err(ProgramError::Empty));
    }

    #[test]
    fn out_of_range_entry_rejected() {
        let err = Program::new(vec![Instr::Halt], Addr::new(3)).unwrap_err();
        assert!(matches!(err, ProgramError::EntryOutOfRange { .. }));
    }

    #[test]
    fn out_of_range_target_rejected() {
        let instrs = vec![
            Instr::Branch {
                cond: Cond::Eq,
                rs1: Reg::T0,
                rs2: Reg::T0,
                target: Addr::new(9),
            },
            Instr::Halt,
        ];
        let err = Program::new(instrs, Addr::new(0)).unwrap_err();
        assert!(matches!(err, ProgramError::TargetOutOfRange { .. }));
    }

    #[test]
    fn fetch_returns_instruction_or_none() {
        let p = Program::new(vec![Instr::Nop, Instr::Halt], Addr::new(0)).unwrap();
        assert_eq!(p.fetch(Addr::new(0)), Some(Instr::Nop));
        assert_eq!(p.fetch(Addr::new(1)), Some(Instr::Halt));
        assert_eq!(p.fetch(Addr::new(2)), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ProgramError::TargetOutOfRange {
            at: Addr::new(1),
            target: Addr::new(7),
        };
        let s = e.to_string();
        assert!(s.contains("out-of-range"));
    }
}
