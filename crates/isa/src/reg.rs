//! Architectural register names.

use std::fmt;

/// One of the 32 architectural general-purpose registers.
///
/// Register 0 ([`Reg::ZERO`]) is hardwired to zero, as in MIPS/RISC-V.
/// The remaining names are software conventions used by the workload
/// builders in `tc-workloads`:
///
/// * [`Reg::RA`] — return address (link register written by calls)
/// * [`Reg::SP`] — stack pointer
/// * [`Reg::GP`] — global data pointer
/// * `A0..A5`    — arguments / return values
/// * `S0..S9`    — callee-saved
/// * `T0..T11`   — temporaries
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-address (link) register.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global data pointer.
    pub const GP: Reg = Reg(3);

    /// Argument register 0.
    pub const A0: Reg = Reg(4);
    /// Argument register 1.
    pub const A1: Reg = Reg(5);
    /// Argument register 2.
    pub const A2: Reg = Reg(6);
    /// Argument register 3.
    pub const A3: Reg = Reg(7);
    /// Argument register 4.
    pub const A4: Reg = Reg(8);
    /// Argument register 5.
    pub const A5: Reg = Reg(9);

    /// Callee-saved register 0.
    pub const S0: Reg = Reg(10);
    /// Callee-saved register 1.
    pub const S1: Reg = Reg(11);
    /// Callee-saved register 2.
    pub const S2: Reg = Reg(12);
    /// Callee-saved register 3.
    pub const S3: Reg = Reg(13);
    /// Callee-saved register 4.
    pub const S4: Reg = Reg(14);
    /// Callee-saved register 5.
    pub const S5: Reg = Reg(15);
    /// Callee-saved register 6.
    pub const S6: Reg = Reg(16);
    /// Callee-saved register 7.
    pub const S7: Reg = Reg(17);
    /// Callee-saved register 8.
    pub const S8: Reg = Reg(18);
    /// Callee-saved register 9.
    pub const S9: Reg = Reg(19);

    /// Temporary register 0.
    pub const T0: Reg = Reg(20);
    /// Temporary register 1.
    pub const T1: Reg = Reg(21);
    /// Temporary register 2.
    pub const T2: Reg = Reg(22);
    /// Temporary register 3.
    pub const T3: Reg = Reg(23);
    /// Temporary register 4.
    pub const T4: Reg = Reg(24);
    /// Temporary register 5.
    pub const T5: Reg = Reg(25);
    /// Temporary register 6.
    pub const T6: Reg = Reg(26);
    /// Temporary register 7.
    pub const T7: Reg = Reg(27);
    /// Temporary register 8.
    pub const T8: Reg = Reg(28);
    /// Temporary register 9.
    pub const T9: Reg = Reg(29);
    /// Temporary register 10.
    pub const T10: Reg = Reg(30);
    /// Temporary register 11.
    pub const T11: Reg = Reg(31);

    /// Total number of architectural registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// The register's index in `0..32`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the hardwired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "zero"),
            1 => write!(f, "ra"),
            2 => write!(f, "sp"),
            3 => write!(f, "gp"),
            4..=9 => write!(f, "a{}", self.0 - 4),
            10..=19 => write!(f, "s{}", self.0 - 10),
            _ => write!(f, "t{}", self.0 - 20),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_registers_have_expected_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 1);
        assert_eq!(Reg::SP.index(), 2);
        assert_eq!(Reg::A0.index(), 4);
        assert_eq!(Reg::S0.index(), 10);
        assert_eq!(Reg::T0.index(), 20);
        assert_eq!(Reg::T11.index(), 31);
    }

    #[test]
    fn display_names_are_conventional() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::A3.to_string(), "a3");
        assert_eq!(Reg::S9.to_string(), "s9");
        assert_eq!(Reg::T11.to_string(), "t11");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn only_register_zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        for i in 1..32 {
            assert!(!Reg::new(i).is_zero());
        }
    }
}
