//! An assembler-style program builder with labels and fixups.

use std::fmt;

use crate::instr::{AluOp, Cond, Instr};
use crate::program::{Addr, Program, ProgramError};
use crate::reg::Reg;

/// A forward-referenceable code label created by
/// [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was bound twice.
    DuplicateBind {
        /// The label's name.
        name: String,
    },
    /// A label was referenced but never bound.
    UnboundLabel {
        /// The label's name.
        name: String,
    },
    /// The assembled program failed validation.
    Invalid(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateBind { name } => write!(f, "label `{name}` bound twice"),
            AsmError::UnboundLabel { name } => {
                write!(f, "label `{name}` referenced but never bound")
            }
            AsmError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> AsmError {
        AsmError::Invalid(e)
    }
}

#[derive(Debug, Clone)]
struct LabelInfo {
    name: String,
    addr: Option<Addr>,
}

/// Incrementally builds a [`Program`].
///
/// Branch, jump, and call targets are [`Label`]s; they may be referenced
/// before being bound and are resolved when [`ProgramBuilder::build`] is
/// called. All emit methods return `&mut Self` for chaining.
///
/// # Example
///
/// ```
/// use tc_isa::{ProgramBuilder, Reg, Cond};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// let end = b.new_label("end");
/// b.li(Reg::T0, 1).branch(Cond::Ne, Reg::T0, Reg::ZERO, end).nop();
/// b.bind(end)?;
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: Vec<LabelInfo>,
    /// Fixups: (instruction index, label) pairs to patch at build time.
    fixups: Vec<(usize, Label)>,
    entry: Addr,
}

impl ProgramBuilder {
    /// Creates an empty builder. The entry point defaults to address 0.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Creates a fresh label with a diagnostic `name`.
    pub fn new_label(&mut self, name: impl Into<String>) -> Label {
        self.labels.push(LabelInfo {
            name: name.into(),
            addr: None,
        });
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateBind`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<&mut Self, AsmError> {
        let info = &mut self.labels[label.0];
        if info.addr.is_some() {
            return Err(AsmError::DuplicateBind {
                name: info.name.clone(),
            });
        }
        info.addr = Some(Addr::new(self.instrs.len() as u32));
        Ok(self)
    }

    /// Convenience: creates a label and immediately binds it here.
    pub fn here(&mut self, name: impl Into<String>) -> Label {
        let l = self.new_label(name);
        self.bind(l).expect("fresh label cannot be already bound");
        l
    }

    /// Sets the program entry point to `label` (otherwise address 0).
    pub fn entry(&mut self, label: Label) -> &mut Self {
        // Recorded as a fixup against a synthetic index; resolved in build().
        self.fixups.push((usize::MAX, label));
        self
    }

    /// The address the next emitted instruction will occupy.
    #[must_use]
    pub fn cursor(&self) -> Addr {
        Addr::new(self.instrs.len() as u32)
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    // --- ALU ---------------------------------------------------------

    /// Emits a register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instr::Alu { op, rd, rs1, rs2 })
    }

    /// Emits a register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Instr::AluImm { op, rd, rs1, imm })
    }

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }

    /// `rd = rs1 / rs2` (signed)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Div, rd, rs1, rs2)
    }

    /// `rd = rs1 % rs2` (signed)
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Rem, rd, rs1, rs2)
    }

    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::And, rd, rs1, rs2)
    }

    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Or, rd, rs1, rs2)
    }

    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Xor, rd, rs1, rs2)
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Add, rd, rs1, imm)
    }

    /// `rd = rs1 * imm`
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Mul, rd, rs1, imm)
    }

    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::And, rd, rs1, imm)
    }

    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Or, rd, rs1, imm)
    }

    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Xor, rd, rs1, imm)
    }

    /// `rd = rs1 << imm`
    pub fn shli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Shl, rd, rs1, imm)
    }

    /// `rd = rs1 >> imm` (logical)
    pub fn shri(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Shr, rd, rs1, imm)
    }

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.push(Instr::Li { rd, imm })
    }

    /// `rd = rs` (encoded as `rd = rs + 0`)
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    // --- Memory ------------------------------------------------------

    /// `rd = mem[base + offset]`
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.push(Instr::Load { rd, base, offset })
    }

    /// `mem[base + offset] = src`
    pub fn store(&mut self, src: Reg, base: Reg, offset: i32) -> &mut Self {
        self.push(Instr::Store { src, base, offset })
    }

    // --- Control -----------------------------------------------------

    /// Conditional branch to `target`.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), target));
        self.push(Instr::Branch {
            cond,
            rs1,
            rs2,
            target: Addr::new(u32::MAX),
        })
    }

    /// `beq rs1, rs2, target`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(Cond::Eq, rs1, rs2, target)
    }

    /// `bne rs1, rs2, target`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(Cond::Ne, rs1, rs2, target)
    }

    /// `blt rs1, rs2, target`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(Cond::Lt, rs1, rs2, target)
    }

    /// `bge rs1, rs2, target`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(Cond::Ge, rs1, rs2, target)
    }

    /// Branch if `rs` is zero.
    pub fn beqz(&mut self, rs: Reg, target: Label) -> &mut Self {
        self.beq(rs, Reg::ZERO, target)
    }

    /// Branch if `rs` is nonzero.
    pub fn bnez(&mut self, rs: Reg, target: Label) -> &mut Self {
        self.bne(rs, Reg::ZERO, target)
    }

    /// Unconditional jump to `target`.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), target));
        self.push(Instr::Jump {
            target: Addr::new(u32::MAX),
        })
    }

    /// Direct call to `target` (`ra = return address`).
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), target));
        self.push(Instr::Call {
            target: Addr::new(u32::MAX),
        })
    }

    /// Return through the link register.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instr::Ret)
    }

    /// Indirect jump through `base`.
    pub fn jr(&mut self, base: Reg) -> &mut Self {
        self.push(Instr::JumpInd { base })
    }

    /// Indirect call through `base`.
    pub fn callr(&mut self, base: Reg) -> &mut Self {
        self.push(Instr::CallInd { base })
    }

    /// Serializing trap.
    pub fn trap(&mut self, code: u16) -> &mut Self {
        self.push(Instr::Trap { code })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Halt (stops the interpreter).
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Loads the *address* of a label into `rd` (for indirect jumps and
    /// jump tables). Resolved at build time into a `li`.
    pub fn la(&mut self, rd: Reg, target: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), target));
        self.push(Instr::Li { rd, imm: i32::MAX })
    }

    // --- Stack helpers (software convention, SP-relative) -------------

    /// Pushes `regs` onto the stack (decrements SP by `regs.len()` then
    /// stores each register).
    pub fn push_regs(&mut self, regs: &[Reg]) -> &mut Self {
        self.addi(Reg::SP, Reg::SP, -(regs.len() as i32));
        for (i, &r) in regs.iter().enumerate() {
            self.store(r, Reg::SP, i as i32);
        }
        self
    }

    /// Pops `regs` off the stack (loads each register then increments SP).
    /// Must mirror the corresponding [`ProgramBuilder::push_regs`].
    pub fn pop_regs(&mut self, regs: &[Reg]) -> &mut Self {
        for (i, &r) in regs.iter().enumerate() {
            self.load(r, Reg::SP, i as i32);
        }
        self.addi(Reg::SP, Reg::SP, regs.len() as i32)
    }

    /// Resolves all fixups and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound, or [`AsmError::Invalid`] if validation fails.
    pub fn build(&self) -> Result<Program, AsmError> {
        let mut instrs = self.instrs.clone();
        let mut entry = self.entry;
        let mut address_taken = Vec::new();
        for &(at, label) in &self.fixups {
            let info = &self.labels[label.0];
            let addr = info.addr.ok_or_else(|| AsmError::UnboundLabel {
                name: info.name.clone(),
            })?;
            if at == usize::MAX {
                entry = addr;
                continue;
            }
            match &mut instrs[at] {
                Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Call { target } => {
                    *target = addr;
                }
                Instr::Li { imm, .. } => {
                    // An `la`: the label's address escapes into a register,
                    // making it a candidate indirect-transfer target.
                    *imm = addr.raw() as i32;
                    address_taken.push(addr);
                }
                other => unreachable!("fixup against non-relocatable instruction {other}"),
            }
        }
        Ok(Program::with_address_taken(instrs, entry, address_taken)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = ProgramBuilder::new();
        let fwd = b.new_label("fwd");
        b.jump(fwd).nop();
        b.bind(fwd).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(
            p.fetch(Addr::new(0)),
            Some(Instr::Jump {
                target: Addr::new(2)
            })
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label("dangling");
        b.jump(l);
        assert!(matches!(b.build(), Err(AsmError::UnboundLabel { .. })));
    }

    #[test]
    fn duplicate_bind_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label("x");
        b.bind(l).unwrap();
        assert!(matches!(b.bind(l), Err(AsmError::DuplicateBind { .. })));
    }

    #[test]
    fn la_resolves_to_label_address() {
        let mut b = ProgramBuilder::new();
        let t = b.new_label("t");
        b.la(Reg::T0, t).jr(Reg::T0).nop();
        b.bind(t).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(
            p.fetch(Addr::new(0)),
            Some(Instr::Li {
                rd: Reg::T0,
                imm: 3
            })
        );
    }

    #[test]
    fn la_records_address_taken() {
        let mut b = ProgramBuilder::new();
        let t = b.new_label("t");
        b.la(Reg::T0, t).la(Reg::T1, t).jr(Reg::T0);
        b.bind(t).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.address_taken(), &[Addr::new(3)]);
    }

    #[test]
    fn plain_li_is_not_address_taken() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 2).halt();
        let p = b.build().unwrap();
        assert!(p.address_taken().is_empty());
    }

    #[test]
    fn entry_label_sets_entry_point() {
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        b.halt(); // addr 0: not the entry
        b.bind(main).unwrap();
        b.entry(main);
        b.nop().halt();
        let p = b.build().unwrap();
        assert_eq!(p.entry(), Addr::new(1));
    }

    #[test]
    fn push_pop_regs_are_symmetric_in_length() {
        let mut b = ProgramBuilder::new();
        b.push_regs(&[Reg::RA, Reg::S0]);
        let after_push = b.len();
        assert_eq!(after_push, 3); // addi + 2 stores
        b.pop_regs(&[Reg::RA, Reg::S0]);
        assert_eq!(b.len(), 6); // + 2 loads + addi
        b.halt();
        b.build().unwrap();
    }

    #[test]
    fn cursor_tracks_next_address() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.cursor(), Addr::new(0));
        b.nop().nop();
        assert_eq!(b.cursor(), Addr::new(2));
        assert!(!b.is_empty());
    }
}
