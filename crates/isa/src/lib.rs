//! A small RISC-style instruction set used as the simulation substrate for
//! the trace-weave project.
//!
//! The ISCA '98 paper this repository reproduces ("Improving Trace Cache
//! Effectiveness with Branch Promotion and Trace Packing", Patel, Evers &
//! Patt) drove its experiments with SimpleScalar binaries of SPECint95. This
//! crate provides the from-scratch equivalent substrate: a fixed-width
//! RISC-like ISA, a [`Program`] container, an assembler-style
//! [`ProgramBuilder`] with labels, a text-format assembler ([`assemble`])
//! with positioned diagnostics, and a functional [`Interpreter`] that
//! executes programs to produce the *dynamic instruction stream* consumed by
//! the timing simulator.
//!
//! Instructions are 4 bytes wide and addressed by instruction index; the
//! byte address of instruction `i` is `4 * i` (see [`Addr`]).
//!
//! # Example
//!
//! ```
//! use tc_isa::{ProgramBuilder, Interpreter, Reg, Cond};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let loop_top = b.new_label("loop");
//! let done = b.new_label("done");
//! let (i, n, acc) = (Reg::T0, Reg::T1, Reg::T2);
//! b.li(i, 0).li(n, 10).li(acc, 0);
//! b.bind(loop_top)?;
//! b.branch(Cond::Ge, i, n, done);
//! b.add(acc, acc, i);
//! b.addi(i, i, 1);
//! b.jump(loop_top);
//! b.bind(done)?;
//! b.halt();
//! let program = b.build()?;
//!
//! let mut interp = Interpreter::new(&program, 1 << 16);
//! let _trace: Vec<_> = interp.by_ref().collect();
//! assert_eq!(interp.machine().reg(acc), 45);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod asm;
mod fastpath;
mod instr;
mod interp;
mod program;
mod reg;
mod stream;
mod text;

pub use asm::{AsmError, Label, ProgramBuilder};
pub use fastpath::BlockCache;
pub use instr::{AluOp, Cond, ControlKind, Instr, MemWidth};
pub use interp::{ExecError, Interpreter, Machine, StepOutcome};
pub use program::{Addr, Program, ProgramError};
pub use reg::Reg;
pub use stream::{ExecRecord, StreamStats};
pub use text::{assemble, AsmDiagnostic};
