//! Seeded never-panic fuzzing of the text assembler.
//!
//! `assemble` must return `Err` (never panic) on arbitrary input. This
//! feeds 1 000 deterministic byte-level mutations of a valid program
//! through it; a panic anywhere fails the test — no `catch_unwind`, the
//! property is that the panic path is unreachable.

use tc_isa::assemble;

/// xoshiro256** seeded via SplitMix64 (Blackman & Vigna). Local copy:
/// the workspace builds offline with no external crates.
struct Xoshiro([u64; 4]);

impl Xoshiro {
    fn seeded(seed: u64) -> Xoshiro {
        let mut s = seed;
        let mut split = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro([split(), split(), split(), split()])
    }

    fn next(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.0;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.0 = [n0, n1, n2, n3];
        result
    }
}

const VALID: &str = "\
# fuzz seed corpus: a program exercising every operand shape
.entry main
main:
    li   t0, 0
    li   t1, 10
    la   a0, table
loop:
    bge  t0, t1, done
    add  t2, t2, t0
    ld   s0, 4(sp)
    st   s0, -1(sp)
    addi t0, t0, 1
    call helper
    j    loop
helper:
    trap 3
    ret
table:
    nop
done:
    halt
";

fn mutate(rng: &mut Xoshiro, input: &[u8]) -> Vec<u8> {
    let mut bytes = input.to_vec();
    let edits = 1 + (rng.next() as usize % 8);
    for _ in 0..edits {
        if bytes.is_empty() {
            bytes.push(rng.next() as u8);
            continue;
        }
        let at = rng.next() as usize % bytes.len();
        match rng.next() % 4 {
            0 => bytes[at] = rng.next() as u8,
            1 => bytes.insert(at, rng.next() as u8),
            2 => {
                bytes.remove(at);
            }
            _ => bytes.truncate(at),
        }
    }
    bytes
}

#[test]
fn assembler_never_panics_on_mutated_source() {
    let mut rng = Xoshiro::seeded(0x7c3e_57ab_1u64);
    assert!(assemble(VALID).is_ok(), "fuzz corpus must start valid");
    let (mut ok, mut err) = (0u32, 0u32);
    for _ in 0..1_000 {
        let mutated = mutate(&mut rng, VALID.as_bytes());
        let source = String::from_utf8_lossy(&mutated);
        match assemble(&source) {
            Ok(_) => ok += 1,
            Err(e) => {
                err += 1;
                // Diagnostics must stay one-line even for mangled input.
                assert_eq!(e.message.lines().count(), 1);
            }
        }
    }
    assert_eq!(ok + err, 1_000);
    // Single-byte-level edits of a valid program should not all be
    // rejected (comment/whitespace edits survive) nor all accepted.
    assert!(err > 0, "mutations never produced a parse error");
    assert!(ok > 0, "every mutation was rejected ({err} errors)");
}
