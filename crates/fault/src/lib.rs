//! Deterministic, seeded fault injection for the trace-weave front end.
//!
//! A [`FaultPlan`] describes *when* faults strike (a per-cycle rate, an
//! explicit cycle list, or never) and *what* they may hit (a set of
//! [`FaultLocus`] targets). A [`FaultInjector`] turns the plan into a
//! deterministic per-cycle schedule: the same seed and plan always
//! produce the same sequence of `(cycle, locus, entropy)` draws, so a
//! fault run is exactly reproducible — serial or parallel.
//!
//! This crate decides *scheduling* only. Applying a fault to live
//! front-end state (corrupting a segment, flipping a counter) is done by
//! mutation hooks on `tc-core` / `tc-predict` structures, driven by the
//! simulator; [`FaultStats`] aggregates what happened. The crate is
//! deliberately tiny and dependency-light (only `tc-trace`, for the
//! shared [`FaultLocus`] vocabulary) so any layer can talk about plans.

pub use tc_trace::FaultLocus;

pub mod chaos;

/// Aggregate outcome counters for one fault run.
///
/// `injected` counts faults actually applied to live state (a draw that
/// found nothing to perturb — an empty RAS, say — is not counted).
/// `detected` counts sanitizer catches at fill or hit time plus
/// architectural-divergence catches at dispatch; `recovered` counts
/// faults neutralized (quarantine + i-cache refetch, dropped fill, or
/// self-healing predictor state); `escaped` counts corruptions that got
/// past the sanitizer and had to be caught by the dispatch-time oracle
/// check. `recovery_cycles` is the fetch-cycle cost attributed to
/// recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults applied to live front-end state.
    pub injected: u64,
    /// Corruptions caught (sanitizer or dispatch-time divergence).
    pub detected: u64,
    /// Faults neutralized without architectural effect.
    pub recovered: u64,
    /// Corruptions that escaped the sanitizer and reached dispatch.
    pub escaped: u64,
    /// Fetch cycles spent on the recovery path.
    pub recovery_cycles: u64,
}

/// When and what a fault run injects. Construct with [`FaultPlan::none`]
/// and the builder methods.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed for the injection schedule and site selection.
    pub seed: u64,
    /// Per-cycle injection probability in `[0, 1]`.
    pub rate: f64,
    /// Explicit injection cycles (in addition to any rate), sorted.
    pub cycles: Vec<u64>,
    /// Enabled targets, as a bitmask over [`FaultLocus::ALL`] indices.
    targets: u8,
}

impl FaultPlan {
    /// The empty plan: injects nothing. Runs under `FaultPlan::none()`
    /// behave bit-identically to runs with no plan at all.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rate: 0.0,
            cycles: Vec::new(),
            targets: FaultPlan::ALL_TARGETS,
        }
    }

    const ALL_TARGETS: u8 = (1 << FaultLocus::ALL.len()) - 1;

    /// A rate-driven plan: each cycle injects with probability `rate`
    /// (clamped to `[0, 1]`), targeting every locus.
    #[must_use]
    pub fn with_rate(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            ..FaultPlan::none()
        }
    }

    /// A plan that injects exactly at the given cycles.
    #[must_use]
    pub fn at_cycles(seed: u64, mut cycles: Vec<u64>) -> FaultPlan {
        cycles.sort_unstable();
        cycles.dedup();
        FaultPlan {
            seed,
            cycles,
            ..FaultPlan::none()
        }
    }

    /// Restricts the plan to the given targets (empty slice = all).
    #[must_use]
    pub fn targeting(mut self, targets: &[FaultLocus]) -> FaultPlan {
        if targets.is_empty() {
            self.targets = FaultPlan::ALL_TARGETS;
        } else {
            self.targets = 0;
            for t in targets {
                self.targets |= 1 << locus_index(*t);
            }
        }
        self
    }

    /// Whether the plan can ever inject anything.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.rate <= 0.0 && self.cycles.is_empty()
    }

    /// Whether `locus` is an enabled target.
    #[must_use]
    pub fn targets(&self, locus: FaultLocus) -> bool {
        self.targets & (1 << locus_index(locus)) != 0
    }

    /// The enabled targets, in [`FaultLocus::ALL`] order.
    #[must_use]
    pub fn enabled_targets(&self) -> Vec<FaultLocus> {
        FaultLocus::ALL
            .into_iter()
            .filter(|l| self.targets(*l))
            .collect()
    }

    /// A short stable label distinguishing this plan in configuration
    /// labels (and therefore in matrix-runner cache keys).
    #[must_use]
    pub fn label(&self) -> String {
        let targets = if self.targets == FaultPlan::ALL_TARGETS {
            "all".to_string()
        } else {
            self.enabled_targets()
                .iter()
                .map(|l| l.name())
                .collect::<Vec<_>>()
                .join("+")
        };
        if self.cycles.is_empty() {
            format!("faults[s{},r{:e},{targets}]", self.seed, self.rate)
        } else {
            format!("faults[s{},c{},{targets}]", self.seed, self.cycles.len())
        }
    }
}

fn locus_index(locus: FaultLocus) -> u8 {
    FaultLocus::ALL
        .iter()
        .position(|l| *l == locus)
        .map_or(0, |i| i as u8)
}

/// One scheduled injection: the locus to perturb plus 64 bits of
/// entropy for site selection inside the targeted structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDraw {
    /// The structure to perturb.
    pub locus: FaultLocus,
    /// Entropy for picking the exact site (set, way, entry, bit).
    pub entropy: u64,
}

/// Turns a [`FaultPlan`] into a deterministic per-cycle schedule.
///
/// Polled once per simulated cycle; every poll consumes the same number
/// of RNG draws for a given plan shape, so the schedule is a pure
/// function of `(seed, rate, cycles, targets)` and the polled cycle
/// sequence.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    /// `rate` scaled to a u64 threshold: fault when `draw < threshold`.
    threshold: u64,
    next_cycle_idx: usize,
}

impl FaultInjector {
    /// Creates an injector for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultInjector {
        // 2^64 * rate, saturating; rate 1.0 maps to u64::MAX.
        let threshold = if plan.rate >= 1.0 {
            u64::MAX
        } else {
            (plan.rate * (u64::MAX as f64)) as u64
        };
        FaultInjector {
            rng: SplitMix64::new(plan.seed ^ 0x9e37_79b9_7f4a_7c15),
            threshold,
            next_cycle_idx: 0,
            plan,
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Polls the schedule for `cycle`; returns the injection to apply,
    /// if any. At most one fault per poll. A scheduled cycle the caller
    /// jumps over (stalls advance the clock by more than one) fires on
    /// the first poll at or after it, so explicit-cycle plans never
    /// lose faults to timing.
    pub fn poll(&mut self, cycle: u64) -> Option<FaultDraw> {
        let mut fire = false;
        while self
            .plan
            .cycles
            .get(self.next_cycle_idx)
            .is_some_and(|c| *c <= cycle)
        {
            fire = true;
            self.next_cycle_idx += 1;
        }
        if self.threshold > 0 && self.rng.next() < self.threshold {
            fire = true;
        }
        if !fire {
            return None;
        }
        let enabled = self.plan.enabled_targets();
        if enabled.is_empty() {
            return None;
        }
        let pick = self.rng.next();
        let locus = enabled[(pick % enabled.len() as u64) as usize];
        Some(FaultDraw {
            locus,
            entropy: self.rng.next(),
        })
    }
}

/// The vendored deterministic generator (Sebastiano Vigna's SplitMix64,
/// public domain): one u64 of state, passes BigCrush, and is the same
/// seeding primitive `tc-workloads` uses — kept local so this crate
/// stays a leaf. Public because the [`chaos`] layer and the serve
/// clients reuse it for connection-fault draws and backoff jitter.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for cycle in 0..10_000 {
            assert_eq!(inj.poll(cycle), None);
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = FaultPlan::with_rate(42, 1e-2);
        let draws = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan);
            (0..50_000).filter_map(|c| inj.poll(c)).collect::<Vec<_>>()
        };
        let a = draws(plan.clone());
        let b = draws(plan);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "1e-2 over 50k cycles must fire");
    }

    #[test]
    fn rate_roughly_matches_over_many_cycles() {
        let mut inj = FaultInjector::new(FaultPlan::with_rate(7, 1e-2));
        let fired = (0..100_000).filter(|c| inj.poll(*c).is_some()).count();
        assert!(
            (500..2000).contains(&fired),
            "expected ~1000 faults at 1e-2 over 100k cycles, got {fired}"
        );
    }

    #[test]
    fn explicit_cycles_fire_exactly() {
        let plan = FaultPlan::at_cycles(1, vec![5, 17, 17, 3]);
        let mut inj = FaultInjector::new(plan);
        let fired: Vec<u64> = (0..100).filter(|c| inj.poll(*c).is_some()).collect();
        assert_eq!(fired, [3, 5, 17]);
    }

    #[test]
    fn targeting_restricts_the_locus() {
        let plan = FaultPlan::with_rate(9, 1.0).targeting(&[FaultLocus::Bias]);
        let mut inj = FaultInjector::new(plan);
        for cycle in 0..100 {
            let draw = inj.poll(cycle).expect("rate 1.0 always fires");
            assert_eq!(draw.locus, FaultLocus::Bias);
        }
    }

    #[test]
    fn labels_distinguish_plans_and_parse_targets() {
        assert_ne!(
            FaultPlan::with_rate(1, 1e-3).label(),
            FaultPlan::with_rate(2, 1e-3).label()
        );
        assert_ne!(
            FaultPlan::with_rate(1, 1e-3).label(),
            FaultPlan::at_cycles(1, vec![10]).label()
        );
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::with_rate(0, 0.5).is_none());
        assert_eq!(FaultLocus::parse("ras"), Ok(FaultLocus::Ras));
        assert!(FaultLocus::parse("bogus").is_err());
        for locus in FaultLocus::ALL {
            assert_eq!(FaultLocus::parse(locus.name()), Ok(locus));
        }
    }
}
