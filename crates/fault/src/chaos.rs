//! Seeded environment-fault injection: network chaos and artifact-I/O
//! faults.
//!
//! The microarchitectural loci in the crate root perturb *front-end
//! state*; this module perturbs the *environment* the harness runs in,
//! with the same discipline: a seeded plan, deterministic draws, and a
//! stats surface for what actually happened.
//!
//! Two fault dimensions live here:
//!
//! - [`ChaosProxy`] — an in-process TCP proxy that sits in front of a
//!   `tw serve` daemon and injects connection-level faults (reset,
//!   slow-loris throttling, partial write then close, payload
//!   corruption, delayed accept). Fault decisions are a pure function
//!   of `(seed, connection index)`, so a serial client observes the
//!   same fault sequence on every run.
//! - [`IoFaultPlan`] — injectable failures for durable-artifact writes
//!   (torn temp file, crash before rename), used by
//!   `harness::artifact` contract tests and the serve disk tier's
//!   degraded-mode tests. Real crashes cannot be scheduled; these hooks
//!   make the crash window testable.
//!
//! Everything is hand-rolled over `std::net` — the workspace builds
//! offline with no external crates.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::SplitMix64;

/// One kind of connection-level fault the proxy can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Drop the client connection immediately, before contacting the
    /// upstream — the client sees a reset/EOF with no response bytes.
    Reset,
    /// Forward the response in tiny chunks with a delay per chunk
    /// (bounded total stall), exercising client read patience.
    Throttle,
    /// Forward only a prefix of the response, then close both sides —
    /// the client sees a truncated status line or short body.
    PartialWrite,
    /// Overwrite one early response byte with `0xFF` (never valid in
    /// the ASCII HTTP responses the daemon emits), so corruption is
    /// always client-detectable as invalid UTF-8.
    Corrupt,
    /// Hold the connection unserviced for a bounded delay before
    /// proxying normally.
    DelayAccept,
}

impl ChaosKind {
    /// Every kind, in stats/display order.
    pub const ALL: [ChaosKind; 5] = [
        ChaosKind::Reset,
        ChaosKind::Throttle,
        ChaosKind::PartialWrite,
        ChaosKind::Corrupt,
        ChaosKind::DelayAccept,
    ];

    /// Stable lowercase name (stats keys, CLI).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::Reset => "reset",
            ChaosKind::Throttle => "throttle",
            ChaosKind::PartialWrite => "partial-write",
            ChaosKind::Corrupt => "corrupt",
            ChaosKind::DelayAccept => "delay-accept",
        }
    }

    /// Parses a [`name`](ChaosKind::name) back to the kind.
    pub fn parse(s: &str) -> Result<ChaosKind, String> {
        ChaosKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown chaos kind '{s}'"))
    }
}

fn kind_index(kind: ChaosKind) -> usize {
    ChaosKind::ALL.iter().position(|k| *k == kind).unwrap_or(0)
}

/// When and what the chaos proxy injects. Like [`crate::FaultPlan`],
/// a plan is pure data; draws are a deterministic function of the plan
/// and the connection index.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// RNG seed for fault decisions.
    pub seed: u64,
    /// Per-connection fault probability in `[0, 1]`.
    pub rate: f64,
    /// Enabled kinds, as a bitmask over [`ChaosKind::ALL`] indices.
    kinds: u8,
}

impl ChaosPlan {
    const ALL_KINDS: u8 = (1 << ChaosKind::ALL.len()) - 1;

    /// The empty plan: a transparent proxy that never injects.
    #[must_use]
    pub fn none() -> ChaosPlan {
        ChaosPlan {
            seed: 0,
            rate: 0.0,
            kinds: ChaosPlan::ALL_KINDS,
        }
    }

    /// A rate-driven plan: each connection faults with probability
    /// `rate` (clamped to `[0, 1]`), drawing from every kind.
    #[must_use]
    pub fn with_rate(seed: u64, rate: f64) -> ChaosPlan {
        ChaosPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            ..ChaosPlan::none()
        }
    }

    /// Restricts the plan to the given kinds (empty slice = all).
    #[must_use]
    pub fn only(mut self, kinds: &[ChaosKind]) -> ChaosPlan {
        if kinds.is_empty() {
            self.kinds = ChaosPlan::ALL_KINDS;
        } else {
            self.kinds = 0;
            for k in kinds {
                self.kinds |= 1 << kind_index(*k);
            }
        }
        self
    }

    /// Whether `kind` is enabled.
    #[must_use]
    pub fn enables(&self, kind: ChaosKind) -> bool {
        self.kinds & (1 << kind_index(kind)) != 0
    }

    /// The fault decision for connection number `conn_index`: `None`
    /// for a clean pass-through, or the kind to inject plus 64 bits of
    /// entropy for parameterizing it (delay length, corrupt offset,
    /// prefix size). Pure: same plan + index → same draw, regardless
    /// of timing or thread interleaving.
    #[must_use]
    pub fn draw(&self, conn_index: u64) -> Option<(ChaosKind, u64)> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut rng = SplitMix64::new(self.seed ^ conn_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let threshold = if self.rate >= 1.0 {
            u64::MAX
        } else {
            (self.rate * (u64::MAX as f64)) as u64
        };
        if threshold != u64::MAX && rng.next() >= threshold {
            return None;
        }
        let enabled: Vec<ChaosKind> = ChaosKind::ALL
            .into_iter()
            .filter(|k| self.enables(*k))
            .collect();
        if enabled.is_empty() {
            return None;
        }
        let kind = enabled[(rng.next() % enabled.len() as u64) as usize];
        Some((kind, rng.next()))
    }
}

/// Counters for what a proxy actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections that received a fault.
    pub faulted: u64,
    /// Per-kind injection counts, in [`ChaosKind::ALL`] order.
    pub by_kind: [u64; 5],
}

#[derive(Default)]
struct ChaosCounters {
    connections: AtomicU64,
    faulted: AtomicU64,
    by_kind: [AtomicU64; 5],
}

impl ChaosCounters {
    fn snapshot(&self) -> ChaosStats {
        let mut by_kind = [0u64; 5];
        for (dst, src) in by_kind.iter_mut().zip(&self.by_kind) {
            *dst = src.load(Ordering::Relaxed);
        }
        ChaosStats {
            connections: self.connections.load(Ordering::Relaxed),
            faulted: self.faulted.load(Ordering::Relaxed),
            by_kind,
        }
    }
}

/// How long a proxy pump waits on a silent peer before giving up. A
/// bound, not a tuning knob: it guarantees pump threads cannot hang
/// forever even if both endpoints wedge.
const PUMP_TIMEOUT: Duration = Duration::from_secs(10);

/// Response-direction bytes scanned for the [`ChaosKind::Corrupt`]
/// overwrite; keeping it early in the stream means the corruption lands
/// in the status line or headers of small responses too.
const CORRUPT_WINDOW: usize = 512;

/// An in-process TCP chaos proxy: accepts on an ephemeral localhost
/// port, forwards to `upstream`, and injects the plan's faults. Each
/// accepted connection is handled on its own thread; fault decisions
/// come from [`ChaosPlan::draw`] on the accept-order index.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream`.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ChaosCounters::default());
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept_thread =
            thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || {
                    let mut conn_index = 0u64;
                    for client in listener.incoming() {
                        if accept_stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = client else { continue };
                        accept_counters.connections.fetch_add(1, Ordering::Relaxed);
                        let draw = plan.draw(conn_index);
                        conn_index += 1;
                        if let Some((kind, _)) = draw {
                            accept_counters.faulted.fetch_add(1, Ordering::Relaxed);
                            accept_counters.by_kind[kind_index(kind)]
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = thread::Builder::new()
                            .name("chaos-conn".into())
                            .spawn(move || {
                                // A connection thread owns only its two
                                // sockets; any error just ends the
                                // connection, which is the point.
                                let _ = proxy_connection(client, upstream, draw);
                            });
                    }
                })?;
        Ok(ChaosProxy {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of injection counters.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        self.counters.snapshot()
    }

    /// Stops accepting and joins the accept thread. In-flight
    /// connection pumps finish on their own (bounded by
    /// [`PUMP_TIMEOUT`]).
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

fn proxy_connection(
    client: TcpStream,
    upstream: SocketAddr,
    draw: Option<(ChaosKind, u64)>,
) -> io::Result<()> {
    let (kind, entropy) = match draw {
        None => (None, 0),
        Some((ChaosKind::Reset, _)) => {
            // Close without contacting the upstream; the client's write
            // may land in a kernel buffer, but its read sees EOF/reset
            // with zero response bytes.
            let _ = client.shutdown(Shutdown::Both);
            return Ok(());
        }
        Some((ChaosKind::DelayAccept, entropy)) => {
            // 20..200 ms of unserviced silence, then a clean proxy.
            thread::sleep(Duration::from_millis(20 + entropy % 180));
            (None, 0)
        }
        Some((kind, entropy)) => (Some(kind), entropy),
    };

    let server = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))?;
    client.set_read_timeout(Some(PUMP_TIMEOUT))?;
    client.set_write_timeout(Some(PUMP_TIMEOUT))?;
    server.set_read_timeout(Some(PUMP_TIMEOUT))?;
    server.set_write_timeout(Some(PUMP_TIMEOUT))?;

    // Request direction runs clean on its own thread; response-direction
    // faults are applied inline below.
    let mut req_src = client.try_clone()?;
    let mut req_dst = server.try_clone()?;
    let request_pump = thread::Builder::new()
        .name("chaos-pump-req".into())
        .spawn(move || {
            let _ = io::copy(&mut req_src, &mut req_dst);
            let _ = req_dst.shutdown(Shutdown::Write);
        })?;

    let result = pump_response(server.try_clone()?, client.try_clone()?, kind, entropy);
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    let _ = request_pump.join();
    result
}

/// Copies server→client applying the response-direction fault, if any.
fn pump_response(
    mut server: TcpStream,
    mut client: TcpStream,
    kind: Option<ChaosKind>,
    entropy: u64,
) -> io::Result<()> {
    match kind {
        None => {
            io::copy(&mut server, &mut client)?;
            Ok(())
        }
        Some(ChaosKind::PartialWrite) => {
            // Forward a 1..=96-byte prefix — always inside the status
            // line / early headers for our responses — then close.
            let budget = 1 + (entropy % 96) as usize;
            let mut buf = vec![0u8; budget];
            let mut sent = 0;
            while sent < budget {
                let n = server.read(&mut buf[sent..])?;
                if n == 0 {
                    break;
                }
                client.write_all(&buf[sent..sent + n])?;
                sent += n;
            }
            Ok(())
        }
        Some(ChaosKind::Corrupt) => {
            let target = (entropy % CORRUPT_WINDOW as u64) as usize;
            let mut pos = 0usize;
            let mut corrupted = false;
            let mut buf = [0u8; 4096];
            loop {
                let n = server.read(&mut buf)?;
                if n == 0 {
                    // Response shorter than the drawn offset: corrupt
                    // nothing rather than stall.
                    return Ok(());
                }
                if !corrupted && target < pos + n {
                    buf[target - pos] = 0xFF;
                    corrupted = true;
                }
                client.write_all(&buf[..n])?;
                pos += n;
                if corrupted {
                    break;
                }
            }
            io::copy(&mut server, &mut client)?;
            Ok(())
        }
        Some(ChaosKind::Throttle) => {
            // Slow-loris the response: tiny chunks with a per-chunk
            // sleep, capped so total added latency stays bounded
            // (~200 ms), then open the tap.
            let mut stalls = 2 + (entropy % 99) as u32; // ≤ 202 ms
            let mut buf = [0u8; 113];
            loop {
                let n = server.read(&mut buf)?;
                if n == 0 {
                    return Ok(());
                }
                client.write_all(&buf[..n])?;
                if stalls == 0 {
                    break;
                }
                stalls -= 1;
                thread::sleep(Duration::from_millis(2));
            }
            io::copy(&mut server, &mut client)?;
            Ok(())
        }
        // Reset/DelayAccept are resolved before the pumps start.
        Some(ChaosKind::Reset | ChaosKind::DelayAccept) => unreachable!(),
    }
}

/// One kind of injected durable-write failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The temp file receives only a prefix of the bytes, then the
    /// "process dies" (the write call errors out before rename).
    TornTemp,
    /// The temp file is written completely and synced, but the process
    /// dies before the rename publishes it.
    CrashBeforeRename,
}

/// A seeded plan for artifact-I/O faults, consumed by
/// `harness::artifact::write_atomic_with` and the serve disk tier.
/// `draw` is indexed by the caller's write counter, so a given plan
/// faults the same writes on every run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultPlan {
    /// RNG seed for fault decisions.
    pub seed: u64,
    /// Per-write fault probability in `[0, 1]`.
    pub rate: f64,
    /// Forced kind; `None` draws uniformly between kinds.
    pub kind: Option<IoFaultKind>,
}

impl IoFaultPlan {
    /// The empty plan: every write succeeds normally.
    #[must_use]
    pub fn none() -> IoFaultPlan {
        IoFaultPlan {
            seed: 0,
            rate: 0.0,
            kind: None,
        }
    }

    /// A plan that faults every write with the given kind — the
    /// contract-test workhorse.
    #[must_use]
    pub fn always(kind: IoFaultKind) -> IoFaultPlan {
        IoFaultPlan {
            seed: 0,
            rate: 1.0,
            kind: Some(kind),
        }
    }

    /// A rate-driven plan over both kinds.
    #[must_use]
    pub fn with_rate(seed: u64, rate: f64) -> IoFaultPlan {
        IoFaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kind: None,
        }
    }

    /// Whether the plan can ever fire.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.rate <= 0.0
    }

    /// The fault decision for the caller's `write_index`-th write.
    #[must_use]
    pub fn draw(&self, write_index: u64) -> Option<IoFaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut rng = SplitMix64::new(self.seed ^ write_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let threshold = if self.rate >= 1.0 {
            u64::MAX
        } else {
            (self.rate * (u64::MAX as f64)) as u64
        };
        if threshold != u64::MAX && rng.next() >= threshold {
            return None;
        }
        Some(self.kind.unwrap_or(if rng.next() & 1 == 0 {
            IoFaultKind::TornTemp
        } else {
            IoFaultKind::CrashBeforeRename
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_draws_are_deterministic_and_rate_bounded() {
        let plan = ChaosPlan::with_rate(42, 1e-2);
        let a: Vec<_> = (0..20_000).map(|i| plan.draw(i)).collect();
        let b: Vec<_> = (0..20_000).map(|i| plan.draw(i)).collect();
        assert_eq!(a, b);
        let fired = a.iter().filter(|d| d.is_some()).count();
        assert!(
            (100..400).contains(&fired),
            "expected ~200 faults at 1e-2 over 20k connections, got {fired}"
        );
    }

    #[test]
    fn none_plan_never_fires_and_rate_one_always_fires() {
        assert!((0..1000).all(|i| ChaosPlan::none().draw(i).is_none()));
        let hot = ChaosPlan::with_rate(7, 1.0);
        assert!((0..1000).all(|i| hot.draw(i).is_some()));
    }

    #[test]
    fn only_restricts_kinds() {
        let plan = ChaosPlan::with_rate(9, 1.0).only(&[ChaosKind::Reset]);
        for i in 0..200 {
            let (kind, _) = plan.draw(i).expect("rate 1.0 always fires");
            assert_eq!(kind, ChaosKind::Reset);
        }
        let all = ChaosPlan::with_rate(9, 1.0).only(&[]);
        let mut seen = [false; 5];
        for i in 0..500 {
            let (kind, _) = all.draw(i).expect("rate 1.0 always fires");
            seen[kind_index(kind)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all kinds drawn at rate 1.0");
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in ChaosKind::ALL {
            assert_eq!(ChaosKind::parse(kind.name()), Ok(kind));
        }
        assert!(ChaosKind::parse("bogus").is_err());
    }

    #[test]
    fn io_fault_plans_draw_deterministically() {
        assert!(IoFaultPlan::none().is_none());
        assert_eq!(IoFaultPlan::none().draw(3), None);
        assert_eq!(
            IoFaultPlan::always(IoFaultKind::TornTemp).draw(0),
            Some(IoFaultKind::TornTemp)
        );
        let plan = IoFaultPlan::with_rate(11, 0.5);
        let a: Vec<_> = (0..1000).map(|i| plan.draw(i)).collect();
        assert_eq!(a, (0..1000).map(|i| plan.draw(i)).collect::<Vec<_>>());
        let fired = a.iter().filter(|d| d.is_some()).count();
        assert!((300..700).contains(&fired), "rate 0.5 fired {fired}/1000");
    }

    #[test]
    fn transparent_proxy_forwards_bytes_intact() {
        // A tiny upstream that echoes one request line back, uppercased.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let server = thread::spawn(move || {
            for _ in 0..2 {
                let (mut conn, _) = upstream.accept().unwrap();
                let mut buf = [0u8; 256];
                let n = conn.read(&mut buf).unwrap();
                let reply = String::from_utf8_lossy(&buf[..n]).to_uppercase();
                conn.write_all(reply.as_bytes()).unwrap();
            }
        });

        let proxy = ChaosProxy::spawn(upstream_addr, ChaosPlan::none()).unwrap();
        for _ in 0..2 {
            let mut conn = TcpStream::connect(proxy.addr()).unwrap();
            conn.write_all(b"hello chaos").unwrap();
            conn.shutdown(Shutdown::Write).unwrap();
            let mut reply = String::new();
            conn.read_to_string(&mut reply).unwrap();
            assert_eq!(reply, "HELLO CHAOS");
        }
        let stats = proxy.stats();
        assert_eq!(stats.connections, 2);
        assert_eq!(stats.faulted, 0);
        proxy.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn reset_kind_drops_the_connection_without_response() {
        // Upstream that would happily answer — reset must never reach it.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let plan = ChaosPlan::with_rate(1, 1.0).only(&[ChaosKind::Reset]);
        let proxy = ChaosProxy::spawn(upstream_addr, plan).unwrap();

        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = conn.write_all(b"doomed");
        let mut buf = Vec::new();
        // EOF (Ok(0 bytes)) or ECONNRESET are both acceptable: the
        // point is that no response bytes ever arrive.
        match conn.read_to_end(&mut buf) {
            Ok(_) => assert!(buf.is_empty(), "reset leaked bytes: {buf:?}"),
            Err(_) => {}
        }
        assert_eq!(proxy.stats().by_kind[kind_index(ChaosKind::Reset)], 1);
        proxy.shutdown();
    }
}
