//! Finding and report types shared by the analysis passes.

use std::fmt;

use tc_isa::{Addr, ControlKind};

/// How serious a finding is. Error-severity findings indicate a program
/// the simulator cannot be trusted to run; warnings flag suspicious but
/// executable constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is malformed; simulation results are meaningless.
    Error,
    /// Suspicious but executable (registers reset to zero, so e.g. a
    /// read-before-write still has a defined value).
    Warning,
    /// Informational only.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// Which pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// Targets in bounds, no fall-through off the end, `Halt` reachable.
    WellFormed,
    /// Dead-code detection.
    Reachability,
    /// Forward def-use dataflow (read-before-write).
    DefUse,
    /// Call/return balance.
    CallReturn,
    /// Dominator-tree construction (structural; emits no findings).
    Dominators,
    /// Natural-loop detection (flags backward branches that close no
    /// natural loop).
    Loops,
    /// Loop trip-count and static branch-bias inference.
    TripCount,
    /// Static branch taxonomy.
    Taxonomy,
}

impl PassKind {
    /// Stable pass name used in reports and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PassKind::WellFormed => "well-formed",
            PassKind::Reachability => "reachability",
            PassKind::DefUse => "def-use",
            PassKind::CallReturn => "call-return",
            PassKind::Dominators => "dominators",
            PassKind::Loops => "loops",
            PassKind::TripCount => "trip-count",
            PassKind::Taxonomy => "taxonomy",
        }
    }
}

impl fmt::Display for PassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Names of the eight passes, in pipeline order.
pub const PASS_NAMES: [&str; 8] = [
    "well-formed",
    "reachability",
    "def-use",
    "call-return",
    "dominators",
    "loops",
    "trip-count",
    "taxonomy",
];

/// One diagnostic produced by a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The producing pass.
    pub pass: PassKind,
    /// How serious the finding is.
    pub severity: Severity,
    /// The instruction the finding anchors to, if any.
    pub at: Option<Addr>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(at) => write!(f, "{}[{}] {at}: {}", self.severity, self.pass, self.message),
            None => write!(f, "{}[{}]: {}", self.severity, self.pass, self.message),
        }
    }
}

/// Classification of one static control instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchInfo {
    /// The instruction's address.
    pub pc: Addr,
    /// Its control kind.
    pub kind: ControlKind,
    /// Signed displacement in instructions to a direct target
    /// (`pc - target` positive means backward), `None` for indirect
    /// transfers and returns.
    pub displacement: Option<i64>,
    /// Whether the transfer targets a strictly earlier address.
    pub backward: bool,
    /// Whether the transfer is a back edge of a natural loop (its target
    /// dominates it). Backward-by-displacement branches that close no
    /// loop are *not* back edges.
    pub back_edge: bool,
    /// Loop-nesting depth of the block holding the instruction
    /// (0 = not inside any natural loop).
    pub loop_depth: usize,
    /// Back edge with displacement ≤ 32 instructions: the trigger of the
    /// paper's cost-regulated packing heuristic (a tight loop whose
    /// segments are worth completing greedily).
    pub short_backward: bool,
    /// A conditional branch closing a natural loop: the prime candidate
    /// for branch promotion (loop latches are overwhelmingly biased
    /// taken).
    pub promotion_candidate: bool,
    /// Exact trip count of the countable loop this branch closes, if the
    /// trip-count pass inferred one.
    pub trip_count: Option<u64>,
    /// Static taken-probability estimate for this branch (countable-loop
    /// latches only).
    pub static_taken_prob: Option<f64>,
    /// Whether the instruction is reachable from the entry point.
    pub reachable: bool,
}

/// The static branch taxonomy: every control instruction, classified.
#[derive(Debug, Clone, Default)]
pub struct Taxonomy {
    /// One record per static control instruction, in address order.
    pub branches: Vec<BranchInfo>,
}

impl Taxonomy {
    fn count(&self, pred: impl Fn(&BranchInfo) -> bool) -> usize {
        self.branches.iter().filter(|b| pred(b)).count()
    }

    /// Static conditional branches.
    #[must_use]
    pub fn cond_branches(&self) -> usize {
        self.count(|b| b.kind == ControlKind::CondBranch)
    }

    /// Conditional branches targeting an earlier address.
    #[must_use]
    pub fn cond_backward(&self) -> usize {
        self.count(|b| b.kind == ControlKind::CondBranch && b.backward)
    }

    /// Backward conditional branches with displacement ≤ 32 instructions
    /// (the cost-regulated packing trigger).
    #[must_use]
    pub fn cond_short_backward(&self) -> usize {
        self.count(|b| b.kind == ControlKind::CondBranch && b.short_backward)
    }

    /// Promotion-eligible conditional branches.
    #[must_use]
    pub fn promotion_candidates(&self) -> usize {
        self.count(|b| b.promotion_candidate)
    }

    /// Control transfers that are back edges of natural loops.
    #[must_use]
    pub fn back_edges(&self) -> usize {
        self.count(|b| b.back_edge)
    }

    /// Unconditional direct jumps.
    #[must_use]
    pub fn jumps(&self) -> usize {
        self.count(|b| b.kind == ControlKind::Jump)
    }

    /// Direct calls.
    #[must_use]
    pub fn calls(&self) -> usize {
        self.count(|b| b.kind == ControlKind::Call)
    }

    /// Returns.
    #[must_use]
    pub fn returns(&self) -> usize {
        self.count(|b| b.kind == ControlKind::Return)
    }

    /// Indirect jumps.
    #[must_use]
    pub fn indirect_jumps(&self) -> usize {
        self.count(|b| b.kind == ControlKind::IndirectJump)
    }

    /// Indirect calls.
    #[must_use]
    pub fn indirect_calls(&self) -> usize {
        self.count(|b| b.kind == ControlKind::IndirectCall)
    }

    /// Serializing traps.
    #[must_use]
    pub fn traps(&self) -> usize {
        self.count(|b| b.kind == ControlKind::Trap)
    }
}

/// One natural loop as reported by the loop and trip-count passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopReport {
    /// Address of the loop header's first instruction.
    pub header: Addr,
    /// Address of the (first) latch branch.
    pub latch: Addr,
    /// Blocks in the loop.
    pub blocks: usize,
    /// Instructions in the loop.
    pub instructions: usize,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
    /// Exact trip count, when the loop is countable.
    pub trip_count: Option<u64>,
    /// Static taken-probability of the latch branch, when countable.
    pub static_taken_prob: Option<f64>,
}

/// The result of running the full pass pipeline over one program.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Static instruction count.
    pub instructions: usize,
    /// Basic blocks in the CFG.
    pub blocks: usize,
    /// Blocks reachable from the entry point.
    pub reachable_blocks: usize,
    /// All findings, in pass-pipeline order.
    pub findings: Vec<Finding>,
    /// Natural loops, in ascending header order.
    pub loops: Vec<LoopReport>,
    /// The static branch taxonomy.
    pub taxonomy: Taxonomy,
}

impl AnalysisReport {
    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.at_severity(Severity::Error)
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.at_severity(Severity::Warning)
    }

    /// Number of findings at exactly `severity`.
    #[must_use]
    pub fn at_severity(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether the program has no error-severity findings.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }
}
