//! Natural-loop detection with nesting depth.
//!
//! A back edge is a CFG edge `latch → header` whose target dominates its
//! source; the natural loop of a header is the union, over its back
//! edges, of the latch-to-header reverse-reachable sets. Loops sharing a
//! header are merged (the classical definition). Nesting depth is the
//! number of natural loops a block belongs to.
//!
//! The pass also cross-checks the branch-displacement heuristic the rest
//! of the repo uses: a *reachable backward conditional branch that does
//! not close a natural loop* (for example a branch to an address-taken
//! `la` label entered around the "loop" body) looks like a promotion
//! candidate by displacement alone but never behaves like a loop latch
//! at run time — it is reported as an info finding and excluded from the
//! taxonomy's promotion candidates.

use crate::cfg::{Cfg, Terminator};
use crate::dom::Dominators;
use crate::findings::{Finding, PassKind, Severity};

/// One natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Header block id (the back edges' target).
    pub header: usize,
    /// Latch block ids (back-edge sources), ascending.
    pub latches: Vec<usize>,
    /// Every block in the loop (header included), ascending.
    pub blocks: Vec<usize>,
    /// Nesting depth: 1 for an outermost loop.
    pub depth: usize,
}

/// All natural loops of a program, with per-block nesting depth.
#[derive(Debug, Clone, Default)]
pub struct LoopNest {
    /// Loops in ascending header order.
    pub loops: Vec<NaturalLoop>,
    /// Per-block loop-nesting depth (0 = not in any loop).
    depth_of: Vec<usize>,
}

impl LoopNest {
    /// The loop-nesting depth of block `b` (0 outside any loop).
    #[must_use]
    pub fn depth_of(&self, b: usize) -> usize {
        self.depth_of.get(b).copied().unwrap_or(0)
    }

    /// Whether the edge `from → to` is a back edge of some natural loop
    /// (i.e. `from` is a latch of the loop headed at `to`).
    #[must_use]
    pub fn is_back_edge(&self, from: usize, to: usize) -> bool {
        self.loops
            .iter()
            .any(|l| l.header == to && l.latches.contains(&from))
    }

    /// The loop headed at block `header`, if any.
    #[must_use]
    pub fn loop_at(&self, header: usize) -> Option<&NaturalLoop> {
        self.loops.iter().find(|l| l.header == header)
    }
}

/// Finds every natural loop of the reachable subgraph.
#[must_use]
pub fn find_loops(cfg: &Cfg, dom: &Dominators, reach: &[bool]) -> LoopNest {
    let n = cfg.blocks().len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reach[b] {
            continue;
        }
        for &s in &block.succs {
            if reach[s] {
                preds[s].push(b);
            }
        }
    }

    // Back edges, grouped by header.
    let mut by_header: Vec<(usize, Vec<usize>)> = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reach[b] {
            continue;
        }
        for &s in &block.succs {
            if reach[s] && dom.dominates(s, b) {
                match by_header.iter_mut().find(|(h, _)| *h == s) {
                    Some((_, latches)) => latches.push(b),
                    None => by_header.push((s, vec![b])),
                }
            }
        }
    }
    by_header.sort_unstable_by_key(|(h, _)| *h);

    let mut loops = Vec::with_capacity(by_header.len());
    for (header, mut latches) in by_header {
        latches.sort_unstable();
        latches.dedup();
        // Reverse-flood from the latches, stopping at the header.
        let mut in_loop = vec![false; n];
        in_loop[header] = true;
        let mut work: Vec<usize> = Vec::new();
        for &l in &latches {
            if !in_loop[l] {
                in_loop[l] = true;
                work.push(l);
            }
        }
        while let Some(b) = work.pop() {
            for &p in &preds[b] {
                if !in_loop[p] {
                    in_loop[p] = true;
                    work.push(p);
                }
            }
        }
        let blocks: Vec<usize> = (0..n).filter(|&b| in_loop[b]).collect();
        loops.push(NaturalLoop {
            header,
            latches,
            blocks,
            depth: 0,
        });
    }

    // Nesting depth: how many loops contain each block.
    let mut depth_of = vec![0usize; n];
    for l in &loops {
        for &b in &l.blocks {
            depth_of[b] += 1;
        }
    }
    for l in &mut loops {
        l.depth = depth_of[l.header];
    }
    LoopNest { loops, depth_of }
}

/// Cross-checks displacement-classified backward conditional branches
/// against the loop structure: a reachable backward conditional branch
/// that is not a back edge of any natural loop is reported (info).
#[must_use]
pub fn loop_findings(cfg: &Cfg, nest: &LoopNest, reach: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reach[b] {
            continue;
        }
        let Terminator::CondBranch { target } = block.terminator else {
            continue;
        };
        if target.index() >= cfg.blocks().last().map_or(0, |bl| bl.end) {
            continue; // out of range: well-formedness reports it
        }
        let pc = block.last_addr();
        if pc.distance_from(target) <= 0 {
            continue; // forward branch
        }
        let target_block = cfg.block_at(target);
        if !nest.is_back_edge(b, target_block) {
            out.push(Finding {
                pass: PassKind::Loops,
                severity: Severity::Info,
                at: Some(pc),
                message: format!(
                    "backward branch to {target} does not close a natural loop \
                     (target does not dominate it); excluded from promotion candidates"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalysisInput;
    use tc_isa::{ProgramBuilder, Reg};

    fn nest_of(p: &tc_isa::Program) -> (Cfg, LoopNest) {
        let input = AnalysisInput::from(p);
        let cfg = Cfg::build(&input);
        let reach = cfg.reachable();
        let dom = Dominators::compute(&cfg, &reach);
        let nest = find_loops(&cfg, &dom, &reach);
        (cfg, nest)
    }

    #[test]
    fn simple_counted_loop_is_found() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label("top");
        b.li(Reg::T0, 4);
        b.bind(top).unwrap();
        b.addi(Reg::T0, Reg::T0, -1);
        b.bnez(Reg::T0, top);
        b.halt();
        let (cfg, nest) = nest_of(&b.build().unwrap());
        assert_eq!(nest.loops.len(), 1);
        let l = &nest.loops[0];
        assert_eq!(l.depth, 1);
        assert_eq!(l.latches, vec![l.header], "single-block loop");
        let header = cfg.block_at(tc_isa::Addr::new(1));
        assert_eq!(l.header, header);
        assert!(nest.is_back_edge(header, header));
        assert_eq!(nest.depth_of(header), 1);
        assert_eq!(nest.depth_of(cfg.entry_block()), 0);
    }

    #[test]
    fn nested_loops_have_increasing_depth() {
        let mut b = ProgramBuilder::new();
        let outer = b.new_label("outer");
        let inner = b.new_label("inner");
        b.li(Reg::T0, 3);
        b.bind(outer).unwrap();
        b.li(Reg::T1, 5);
        b.bind(inner).unwrap();
        b.addi(Reg::T1, Reg::T1, -1);
        b.bnez(Reg::T1, inner);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bnez(Reg::T0, outer);
        b.halt();
        let (cfg, nest) = nest_of(&b.build().unwrap());
        assert_eq!(nest.loops.len(), 2);
        let inner_header = cfg.block_at(tc_isa::Addr::new(2));
        let inner_loop = nest.loop_at(inner_header).expect("inner loop");
        assert_eq!(inner_loop.depth, 2);
        let outer_loop = nest
            .loops
            .iter()
            .find(|l| l.header != inner_header)
            .expect("outer loop");
        assert_eq!(outer_loop.depth, 1);
        assert!(outer_loop.blocks.len() > inner_loop.blocks.len());
    }

    #[test]
    fn non_dominating_backward_branch_is_not_a_loop() {
        // `la`-taken label L is entered around (not through) the branch:
        // entry jumps past L straight to the branch, so L does not
        // dominate it and L←branch is not a back edge.
        let mut b = ProgramBuilder::new();
        let l = b.new_label("L");
        let after = b.new_label("after");
        b.la(Reg::T1, l);
        b.jump(after);
        b.bind(l).unwrap();
        b.halt();
        b.bind(after).unwrap();
        b.bnez(Reg::T0, l);
        b.halt();
        let program = b.build().unwrap();
        let (cfg, nest) = nest_of(&program);
        assert!(nest.loops.is_empty());
        let input = AnalysisInput::from(&program);
        let cfg2 = Cfg::build(&input);
        let reach = cfg2.reachable();
        let findings = loop_findings(&cfg, &nest, &reach);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pass, PassKind::Loops);
        assert_eq!(findings[0].severity, Severity::Info);
        assert!(findings[0].message.contains("does not close"));
    }
}
