//! Loop trip-count and static branch-bias inference.
//!
//! A small abstract interpreter propagates constant *ranges* through the
//! register file over the CFG (join = interval hull, with widening to
//! ⊤ after a visit cap, so the fixpoint always terminates). On top of
//! that, loops of a recognizable shape — single latch ending in a
//! conditional branch back to the header, one induction register stepped
//! exactly once per iteration by an `addi`/`subi` that dominates the
//! latch, and a loop-invariant constant bound — get their latch branch
//! *executed concretely*: the induction update and branch condition are
//! replayed until the loop exits (or a cap is hit), yielding an exact
//! trip count and a static taken-probability for the latch branch. A
//! 100-trip countable loop's backward branch is statically ≥99% taken,
//! which is exactly the signal the promotion classifier wants when no
//! dynamic profile is available.

use tc_isa::{Addr, AluOp, Instr, Reg};

use crate::cfg::{Cfg, Terminator};
use crate::dom::Dominators;
use crate::findings::{Finding, PassKind, Severity};
use crate::loops::LoopNest;
use crate::AnalysisInput;

/// Registers in the architectural file (matches `Reg::index` range).
const NUM_REGS: usize = 32;

/// Per-block widening cap: after this many worklist visits a block's
/// still-changing registers are forced to ⊤.
const WIDEN_AFTER: u32 = 16;

/// Concrete-replay cap on latch-branch executions. Loops that do not
/// exit within this many iterations get no exact trip count, only the
/// asymptotic taken-probability estimate.
pub const TRIP_SIM_CAP: u64 = 100_000;

/// An abstract register value: ⊤ or a signed interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// Unknown.
    Top,
    /// All values in `lo..=hi` (signed, as `i64` bit patterns).
    Range(i64, i64),
}

impl Val {
    fn singleton(self) -> Option<i64> {
        match self {
            Val::Range(lo, hi) if lo == hi => Some(lo),
            _ => None,
        }
    }

    fn join(self, other: Val) -> Val {
        match (self, other) {
            (Val::Range(a, b), Val::Range(c, d)) => Val::Range(a.min(c), b.max(d)),
            _ => Val::Top,
        }
    }

    fn shift(self, delta: i64) -> Val {
        match self {
            Val::Range(lo, hi) => match (lo.checked_add(delta), hi.checked_add(delta)) {
                (Some(l), Some(h)) => Val::Range(l, h),
                _ => Val::Top,
            },
            Val::Top => Val::Top,
        }
    }
}

/// One abstract register-file state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State([Val; NUM_REGS]);

impl State {
    fn top() -> State {
        let mut s = [Val::Top; NUM_REGS];
        s[Reg::ZERO.index()] = Val::Range(0, 0);
        State(s)
    }

    fn entry() -> State {
        // Registers architecturally reset to zero.
        State([Val::Range(0, 0); NUM_REGS])
    }

    fn get(&self, r: Reg) -> Val {
        self.0[r.index()]
    }

    fn set(&mut self, r: Reg, v: Val) {
        if !r.is_zero() {
            self.0[r.index()] = v;
        }
    }

    fn join(&self, other: &State) -> State {
        let mut out = [Val::Top; NUM_REGS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.0[i].join(other.0[i]);
        }
        State(out)
    }

    fn widen_against(&mut self, previous: &State) {
        for (i, slot) in self.0.iter_mut().enumerate() {
            if *slot != previous.0[i] {
                *slot = Val::Top;
            }
        }
        self.0[Reg::ZERO.index()] = Val::Range(0, 0);
    }
}

fn transfer(instr: &Instr, s: &mut State) {
    match *instr {
        Instr::Li { rd, imm } => s.set(rd, Val::Range(i64::from(imm), i64::from(imm))),
        Instr::AluImm { op, rd, rs1, imm } => {
            let a = s.get(rs1);
            let v = match op {
                AluOp::Add => a.shift(i64::from(imm)),
                AluOp::Sub => a.shift(-i64::from(imm)),
                _ => match a.singleton() {
                    Some(av) => {
                        let r = op.eval(av as u64, i64::from(imm) as u64) as i64;
                        Val::Range(r, r)
                    }
                    None => Val::Top,
                },
            };
            s.set(rd, v);
        }
        Instr::Alu { op, rd, rs1, rs2 } => {
            let (a, b) = (s.get(rs1), s.get(rs2));
            let v = match (op, a, b) {
                (AluOp::Add, Val::Range(..), Val::Range(..)) => match b.singleton() {
                    Some(bv) => a.shift(bv),
                    None => match a.singleton() {
                        Some(av) => b.shift(av),
                        None => Val::Top,
                    },
                },
                (AluOp::Sub, Val::Range(..), Val::Range(..)) => match b.singleton() {
                    Some(bv) => a.shift(bv.checked_neg().unwrap_or(i64::MIN)),
                    None => Val::Top,
                },
                _ => match (a.singleton(), b.singleton()) {
                    (Some(av), Some(bv)) => {
                        let r = op.eval(av as u64, bv as u64) as i64;
                        Val::Range(r, r)
                    }
                    _ => Val::Top,
                },
            };
            s.set(rd, v);
        }
        Instr::Load { rd, .. } | Instr::LoadN { rd, .. } => s.set(rd, Val::Top),
        Instr::Call { .. } | Instr::CallInd { .. } => *s = State::top(),
        Instr::Store { .. }
        | Instr::StoreN { .. }
        | Instr::Branch { .. }
        | Instr::Jump { .. }
        | Instr::Ret
        | Instr::JumpInd { .. }
        | Instr::Trap { .. }
        | Instr::Nop
        | Instr::Halt => {}
    }
}

/// Per-block abstract in-states at the fixpoint.
struct Interp {
    in_states: Vec<Option<State>>,
}

impl Interp {
    fn run(input: &AnalysisInput<'_>, cfg: &Cfg, reach: &[bool]) -> Interp {
        let n = cfg.blocks().len();
        let mut in_states: Vec<Option<State>> = vec![None; n];
        let mut visits = vec![0u32; n];
        if n == 0 {
            return Interp { in_states };
        }
        let entry = cfg.entry_block();
        in_states[entry] = Some(State::entry());
        let mut work = vec![entry];
        while let Some(b) = work.pop() {
            visits[b] += 1;
            let Some(in_state) = in_states[b].clone() else {
                continue;
            };
            let mut s = in_state;
            let block = &cfg.blocks()[b];
            for instr in &input.instrs[block.start..block.end] {
                transfer(instr, &mut s);
            }
            for &succ in &block.succs {
                if !reach[succ] {
                    continue;
                }
                let joined = match &in_states[succ] {
                    Some(old) => {
                        let mut j = old.join(&s);
                        if visits[succ] >= WIDEN_AFTER {
                            j.widen_against(old);
                        }
                        j
                    }
                    None => s.clone(),
                };
                if in_states[succ].as_ref() != Some(&joined) {
                    in_states[succ] = Some(joined);
                    work.push(succ);
                }
            }
        }
        Interp { in_states }
    }

    /// The abstract state *after* executing block `b`.
    fn out_state(&self, input: &AnalysisInput<'_>, cfg: &Cfg, b: usize) -> Option<State> {
        let mut s = self.in_states[b].clone()?;
        let block = &cfg.blocks()[b];
        for instr in &input.instrs[block.start..block.end] {
            transfer(instr, &mut s);
        }
        Some(s)
    }
}

/// The inferred bound of one countable loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopBound {
    /// Exact iteration count, when the replay exits under the cap.
    pub trips: Option<u64>,
    /// Static probability that the latch branch is taken (loops back).
    pub static_taken_prob: f64,
}

/// Infers trip counts for every countable loop. The result is parallel
/// to `nest.loops`; `None` marks loops whose shape the pass does not
/// recognize.
#[must_use]
pub fn trip_counts(
    input: &AnalysisInput<'_>,
    cfg: &Cfg,
    dom: &Dominators,
    nest: &LoopNest,
    reach: &[bool],
) -> Vec<Option<LoopBound>> {
    let interp = Interp::run(input, cfg, reach);
    nest.loops
        .iter()
        .map(|l| bound_loop(input, cfg, dom, l, &interp, reach))
        .collect()
}

fn bound_loop(
    input: &AnalysisInput<'_>,
    cfg: &Cfg,
    dom: &Dominators,
    l: &crate::loops::NaturalLoop,
    interp: &Interp,
    reach: &[bool],
) -> Option<LoopBound> {
    let n = input.instrs.len();
    let [latch] = l.latches[..] else { return None };
    let latch_block = &cfg.blocks()[latch];
    let Terminator::CondBranch { target } = latch_block.terminator else {
        return None;
    };
    if target.index() >= n || cfg.block_at(target) != l.header {
        return None;
    }
    let Instr::Branch { cond, rs1, rs2, .. } = input.instrs[latch_block.end - 1] else {
        return None;
    };

    // Only straight-line control inside the loop: calls and indirect
    // transfers clobber too much to reason about.
    for &b in &l.blocks {
        match cfg.blocks()[b].terminator {
            Terminator::Fallthrough | Terminator::CondBranch { .. } | Terminator::Jump { .. } => {}
            _ => return None,
        }
    }

    // Count writes of each register inside the loop and find the single
    // induction step.
    let mut writes = [0u32; NUM_REGS];
    let mut step: Option<(Reg, AluOp, i32, usize)> = None;
    for &b in &l.blocks {
        let block = &cfg.blocks()[b];
        for i in block.start..block.end {
            let instr = &input.instrs[i];
            if let Some(d) = instr.dest() {
                writes[d.index()] += 1;
                if let Instr::AluImm { op, rd, rs1, imm } = *instr {
                    if rd == rs1 && matches!(op, AluOp::Add | AluOp::Sub) {
                        step = Some((rd, op, imm, b));
                    }
                }
            }
        }
    }

    // One branch operand is the induction register (stepped in the
    // loop); the other is the loop-invariant bound.
    let (ind, bound_reg) = match (writes[rs1.index()], writes[rs2.index()]) {
        (w, 0) if w > 0 => (rs1, rs2),
        (0, w) if w > 0 => (rs2, rs1),
        _ => return None,
    };
    let (step_reg, step_op, step_imm, step_block) = step?;
    if step_reg != ind || writes[ind.index()] != 1 || !dom.dominates(step_block, latch) {
        return None;
    }

    // Initial induction value and the bound, joined over every non-loop
    // predecessor of the header: both must be single constants.
    let mut init: Option<Val> = None;
    let mut bound: Option<Val> = if bound_reg.is_zero() {
        Some(Val::Range(0, 0))
    } else {
        None
    };
    let mut entering_preds = 0usize;
    for (p, block) in cfg.blocks().iter().enumerate() {
        if !reach[p] || l.blocks.contains(&p) || !block.succs.contains(&l.header) {
            continue;
        }
        entering_preds += 1;
        let out = interp.out_state(input, cfg, p)?;
        init = Some(match init {
            Some(v) => v.join(out.get(ind)),
            None => out.get(ind),
        });
        if !bound_reg.is_zero() {
            bound = Some(match bound {
                Some(v) => v.join(out.get(bound_reg)),
                None => out.get(bound_reg),
            });
        }
    }
    if entering_preds == 0 {
        return None;
    }
    let init = init?.singleton()?;
    let bound = bound?.singleton()?;

    // Concrete replay of the induction update and latch condition.
    let delta = match step_op {
        AluOp::Add => i64::from(step_imm),
        AluOp::Sub => -i64::from(step_imm),
        _ => unreachable!("step ops are add/sub by construction"),
    };
    let mut x = init;
    let mut exec: u64 = 0;
    let mut capped = false;
    loop {
        x = x.wrapping_add(delta);
        exec += 1;
        let (a, b) = if ind == rs1 {
            (x as u64, bound as u64)
        } else {
            (bound as u64, x as u64)
        };
        if !cond.eval(a, b) {
            break;
        }
        if exec >= TRIP_SIM_CAP {
            capped = true;
            break;
        }
    }
    if capped {
        Some(LoopBound {
            trips: None,
            static_taken_prob: 1.0 - 1.0 / (TRIP_SIM_CAP as f64),
        })
    } else {
        Some(LoopBound {
            trips: Some(exec),
            static_taken_prob: (exec - 1) as f64 / exec as f64,
        })
    }
}

/// Info findings describing every loop whose trip count was inferred.
#[must_use]
pub fn tripcount_findings(
    cfg: &Cfg,
    nest: &LoopNest,
    bounds: &[Option<LoopBound>],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (l, bound) in nest.loops.iter().zip(bounds) {
        let Some(b) = bound else { continue };
        let latch_pc = cfg.blocks()[l.latches[0]].last_addr();
        let header_addr: Addr = cfg.blocks()[l.header].start_addr();
        let message = match b.trips {
            Some(t) => format!(
                "countable loop at {header_addr}: {t} iteration{}, latch branch \
                 statically {:.1}% taken",
                if t == 1 { "" } else { "s" },
                b.static_taken_prob * 100.0,
            ),
            None => format!(
                "countable loop at {header_addr} runs beyond {TRIP_SIM_CAP} iterations; \
                 latch branch statically ~100% taken"
            ),
        };
        out.push(Finding {
            pass: PassKind::TripCount,
            severity: Severity::Info,
            at: Some(latch_pc),
            message,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use tc_isa::{ProgramBuilder, Reg};

    fn bounds_of(p: &tc_isa::Program) -> (Cfg, LoopNest, Vec<Option<LoopBound>>) {
        let input = AnalysisInput::from(p);
        let cfg = Cfg::build(&input);
        let reach = cfg.reachable();
        let dom = Dominators::compute(&cfg, &reach);
        let nest = find_loops(&cfg, &dom, &reach);
        let bounds = trip_counts(&input, &cfg, &dom, &nest, &reach);
        (cfg, nest, bounds)
    }

    #[test]
    fn countdown_loop_has_exact_trip_count() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label("top");
        b.li(Reg::T0, 100);
        b.bind(top).unwrap();
        b.addi(Reg::T0, Reg::T0, -1);
        b.bnez(Reg::T0, top);
        b.halt();
        let (_, nest, bounds) = bounds_of(&b.build().unwrap());
        assert_eq!(nest.loops.len(), 1);
        let bound = bounds[0].expect("countable");
        assert_eq!(bound.trips, Some(100));
        assert!(
            bound.static_taken_prob >= 0.99,
            "{}",
            bound.static_taken_prob
        );
    }

    #[test]
    fn count_up_to_register_bound() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label("top");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 8);
        b.bind(top).unwrap();
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.halt();
        let (_, nest, bounds) = bounds_of(&b.build().unwrap());
        assert_eq!(nest.loops.len(), 1);
        let bound = bounds[0].expect("countable");
        assert_eq!(bound.trips, Some(8));
        assert!((bound.static_taken_prob - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn data_dependent_bound_is_not_countable() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label("top");
        b.li(Reg::T0, 0);
        b.load(Reg::T1, Reg::GP, 0); // bound comes from memory
        b.bind(top).unwrap();
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.halt();
        let (_, nest, bounds) = bounds_of(&b.build().unwrap());
        assert_eq!(nest.loops.len(), 1);
        assert!(bounds[0].is_none());
    }

    #[test]
    fn loop_with_call_is_not_countable() {
        let mut b = ProgramBuilder::new();
        let f = b.new_label("f");
        let main = b.new_label("main");
        let top = b.new_label("top");
        b.bind(f).unwrap();
        b.ret();
        b.bind(main).unwrap();
        b.entry(main);
        b.li(Reg::T0, 4);
        b.bind(top).unwrap();
        b.call(f);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bnez(Reg::T0, top);
        b.halt();
        let (_, nest, bounds) = bounds_of(&b.build().unwrap());
        assert_eq!(nest.loops.len(), 1);
        assert!(bounds[0].is_none());
    }

    #[test]
    fn runaway_loop_is_capped_with_high_bias() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label("top");
        b.li(Reg::T0, 0);
        b.bind(top).unwrap();
        b.addi(Reg::T0, Reg::T0, 1);
        b.bnez(Reg::T0, top); // exits only after wrapping to zero
        b.halt();
        let (_, _, bounds) = bounds_of(&b.build().unwrap());
        let bound = bounds[0].expect("shape is countable");
        assert_eq!(bound.trips, None);
        assert!(bound.static_taken_prob > 0.999);
    }

    #[test]
    fn tripcount_findings_describe_countable_loops() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label("top");
        b.li(Reg::T0, 3);
        b.bind(top).unwrap();
        b.addi(Reg::T0, Reg::T0, -1);
        b.bnez(Reg::T0, top);
        b.halt();
        let (cfg, nest, bounds) = bounds_of(&b.build().unwrap());
        let findings = tripcount_findings(&cfg, &nest, &bounds);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pass, PassKind::TripCount);
        assert!(findings[0].message.contains("3 iterations"));
    }
}
