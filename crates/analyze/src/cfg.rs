//! Basic-block control-flow graph construction.
//!
//! Leaders are the entry point, every direct branch/jump/call target,
//! every instruction after a control transfer (or `Halt`), and every
//! address-taken label (the possible targets of indirect transfers).
//! `Trap` is architecturally a serializing no-op that falls through, so
//! it does not end a block.

use tc_isa::{Addr, ControlKind, Instr};

use crate::AnalysisInput;

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Execution continues into the following block.
    Fallthrough,
    /// Conditional branch: taken edge to `target`, else fall through.
    CondBranch {
        /// The taken target.
        target: Addr,
    },
    /// Unconditional direct jump.
    Jump {
        /// The target.
        target: Addr,
    },
    /// Direct call; if the callee returns, execution resumes after it.
    Call {
        /// The callee entry.
        target: Addr,
    },
    /// Return through the link register.
    Return,
    /// Indirect jump; possible targets are the address-taken set.
    IndirectJump,
    /// Indirect call; possible callees are the address-taken set.
    IndirectCall,
    /// `Halt`: execution stops.
    Halt,
    /// The program's last instruction is not a control transfer:
    /// execution would fall off the end.
    OffEnd,
}

/// A maximal straight-line run of instructions with one entry point.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// How the block ends.
    pub terminator: Terminator,
    /// Successor block ids (callees and post-call return sites included).
    pub succs: Vec<usize>,
}

impl BasicBlock {
    /// Address of the block's first instruction.
    #[must_use]
    pub fn start_addr(&self) -> Addr {
        Addr::new(self.start as u32)
    }

    /// Address of the block's last instruction.
    #[must_use]
    pub fn last_addr(&self) -> Addr {
        Addr::new((self.end - 1) as u32)
    }

    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Always `false`: blocks hold at least one instruction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The control-flow graph of one program.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Instruction index → owning block id.
    block_of: Vec<usize>,
    entry_block: usize,
    address_taken_blocks: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG. Out-of-range targets contribute no edges (the
    /// well-formedness pass reports them); an out-of-range entry point
    /// falls back to block 0.
    #[must_use]
    pub fn build(input: &AnalysisInput<'_>) -> Cfg {
        let n = input.instrs.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                entry_block: 0,
                address_taken_blocks: Vec::new(),
            };
        }
        let in_range = |a: Addr| a.index() < n;

        let mut leader = vec![false; n];
        leader[0] = true;
        if in_range(input.entry) {
            leader[input.entry.index()] = true;
        }
        for &a in input.address_taken {
            if in_range(a) {
                leader[a.index()] = true;
            }
        }
        for (i, instr) in input.instrs.iter().enumerate() {
            if let Some(t) = instr.direct_target() {
                if in_range(t) {
                    leader[t.index()] = true;
                }
            }
            if ends_block(instr) && i + 1 < n {
                leader[i + 1] = true;
            }
        }

        let starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        let mut blocks = Vec::with_capacity(starts.len());
        let mut block_of = vec![0usize; n];
        for (bi, &s) in starts.iter().enumerate() {
            let e = starts.get(bi + 1).copied().unwrap_or(n);
            for slot in &mut block_of[s..e] {
                *slot = bi;
            }
            blocks.push(BasicBlock {
                start: s,
                end: e,
                terminator: terminator_of(&input.instrs[e - 1], e == n),
                succs: Vec::new(),
            });
        }

        let mut address_taken_blocks: Vec<usize> = input
            .address_taken
            .iter()
            .filter(|a| in_range(**a))
            .map(|a| block_of[a.index()])
            .collect();
        address_taken_blocks.sort_unstable();
        address_taken_blocks.dedup();

        for bi in 0..blocks.len() {
            let next_block = (blocks[bi].end < n).then(|| block_of[blocks[bi].end]);
            let mut succs = Vec::new();
            match blocks[bi].terminator {
                Terminator::Fallthrough => succs.extend(next_block),
                Terminator::CondBranch { target } => {
                    if in_range(target) {
                        succs.push(block_of[target.index()]);
                    }
                    succs.extend(next_block);
                }
                Terminator::Jump { target } => {
                    if in_range(target) {
                        succs.push(block_of[target.index()]);
                    }
                }
                Terminator::Call { target } => {
                    if in_range(target) {
                        succs.push(block_of[target.index()]);
                    }
                    succs.extend(next_block);
                }
                Terminator::IndirectJump => succs.extend(address_taken_blocks.iter().copied()),
                Terminator::IndirectCall => {
                    succs.extend(address_taken_blocks.iter().copied());
                    succs.extend(next_block);
                }
                Terminator::Return | Terminator::Halt | Terminator::OffEnd => {}
            }
            succs.sort_unstable();
            succs.dedup();
            blocks[bi].succs = succs;
        }

        let entry_block = if in_range(input.entry) {
            block_of[input.entry.index()]
        } else {
            0
        };
        Cfg {
            blocks,
            block_of,
            entry_block,
            address_taken_blocks,
        }
    }

    /// All basic blocks, in address order.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing the entry point.
    #[must_use]
    pub fn entry_block(&self) -> usize {
        self.entry_block
    }

    /// The block containing the instruction at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn block_at(&self, addr: Addr) -> usize {
        self.block_of[addr.index()]
    }

    /// Blocks whose first instruction is an address-taken label: the
    /// possible targets of indirect jumps and calls.
    #[must_use]
    pub fn address_taken_blocks(&self) -> &[usize] {
        &self.address_taken_blocks
    }

    /// Which blocks are reachable from the entry block following every
    /// edge (including call and post-call edges).
    #[must_use]
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut work = vec![self.entry_block];
        seen[self.entry_block] = true;
        while let Some(b) = work.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        seen
    }
}

fn ends_block(instr: &Instr) -> bool {
    if matches!(instr, Instr::Halt) {
        return true;
    }
    matches!(
        instr.control_kind(),
        ControlKind::CondBranch
            | ControlKind::Jump
            | ControlKind::Call
            | ControlKind::Return
            | ControlKind::IndirectJump
            | ControlKind::IndirectCall
    )
}

fn terminator_of(last: &Instr, at_end: bool) -> Terminator {
    match *last {
        Instr::Branch { target, .. } => Terminator::CondBranch { target },
        Instr::Jump { target } => Terminator::Jump { target },
        Instr::Call { target } => Terminator::Call { target },
        Instr::Ret => Terminator::Return,
        Instr::JumpInd { .. } => Terminator::IndirectJump,
        Instr::CallInd { .. } => Terminator::IndirectCall,
        Instr::Halt => Terminator::Halt,
        _ if at_end => Terminator::OffEnd,
        _ => Terminator::Fallthrough,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_isa::{ProgramBuilder, Reg};

    fn cfg_of(p: &tc_isa::Program) -> Cfg {
        Cfg::build(&AnalysisInput::from(p))
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 1).addi(Reg::T0, Reg::T0, 1).halt();
        let cfg = cfg_of(&b.build().unwrap());
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].terminator, Terminator::Halt);
        assert!(cfg.blocks()[0].succs.is_empty());
    }

    #[test]
    fn branch_splits_blocks_and_adds_both_edges() {
        let mut b = ProgramBuilder::new();
        let done = b.new_label("done");
        b.li(Reg::T0, 1);
        b.beqz(Reg::T0, done);
        b.nop();
        b.bind(done).unwrap();
        b.halt();
        let cfg = cfg_of(&b.build().unwrap());
        // [li, beqz] [nop] [halt]
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].succs, vec![1, 2]);
        assert_eq!(cfg.blocks()[1].succs, vec![2]);
        assert!(matches!(
            cfg.blocks()[0].terminator,
            Terminator::CondBranch { .. }
        ));
    }

    #[test]
    fn call_has_callee_and_return_site_edges() {
        let mut b = ProgramBuilder::new();
        let f = b.new_label("f");
        let main = b.new_label("main");
        b.bind(f).unwrap();
        b.ret();
        b.bind(main).unwrap();
        b.entry(main);
        b.call(f);
        b.halt();
        let cfg = cfg_of(&b.build().unwrap());
        // [ret] [call] [halt]
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.entry_block(), 1);
        assert_eq!(cfg.blocks()[1].succs, vec![0, 2]);
        assert!(cfg.blocks()[0].succs.is_empty());
    }

    #[test]
    fn indirect_jump_targets_address_taken_blocks() {
        let mut b = ProgramBuilder::new();
        let t = b.new_label("t");
        b.la(Reg::T0, t).jr(Reg::T0);
        b.nop(); // unreachable
        b.bind(t).unwrap();
        b.halt();
        let cfg = cfg_of(&b.build().unwrap());
        // [la, jr] [nop] [halt]
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.address_taken_blocks(), &[2]);
        assert_eq!(cfg.blocks()[0].succs, vec![2]);
        let reach = cfg.reachable();
        assert_eq!(reach, vec![true, false, true]);
    }

    #[test]
    fn trap_does_not_end_a_block() {
        let mut b = ProgramBuilder::new();
        b.trap(1).nop().halt();
        let cfg = cfg_of(&b.build().unwrap());
        assert_eq!(cfg.blocks().len(), 1);
    }

    #[test]
    fn off_end_terminator_when_last_instruction_falls_through() {
        let input = AnalysisInput {
            instrs: &[Instr::Nop, Instr::Nop],
            entry: Addr::new(0),
            address_taken: &[],
        };
        let cfg = Cfg::build(&input);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].terminator, Terminator::OffEnd);
    }
}
