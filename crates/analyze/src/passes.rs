//! The verification and classification passes that do not need their
//! own module (well-formedness, reachability, def-use, call balance,
//! and the final branch taxonomy). The structural passes live in
//! [`crate::dom`], [`crate::loops`], and [`crate::tripcount`].

use std::collections::{BTreeMap, BTreeSet};

use tc_isa::{Addr, ControlKind, Instr, Reg};

use crate::cfg::{Cfg, Terminator};
use crate::findings::{BranchInfo, Finding, PassKind, Severity, Taxonomy};
use crate::loops::LoopNest;
use crate::tripcount::LoopBound;
use crate::AnalysisInput;

/// Displacement bound (in instructions) under which a backward branch
/// makes cost-regulated packing complete the pending segment greedily
/// (paper §4.3).
pub const SHORT_BACKWARD_DISP: i64 = 32;

fn finding(pass: PassKind, severity: Severity, at: Option<Addr>, message: String) -> Finding {
    Finding {
        pass,
        severity,
        at,
        message,
    }
}

// --- pass 1: well-formedness -----------------------------------------

/// Targets in bounds, no fall-through off the end of the program, and a
/// reachable `Halt`.
pub fn well_formed(input: &AnalysisInput<'_>, cfg: &Cfg, reach: &[bool]) -> Vec<Finding> {
    let n = input.instrs.len();
    let mut out = Vec::new();
    if n == 0 {
        out.push(finding(
            PassKind::WellFormed,
            Severity::Error,
            None,
            "program contains no instructions".to_owned(),
        ));
        return out;
    }
    if input.entry.index() >= n {
        out.push(finding(
            PassKind::WellFormed,
            Severity::Error,
            None,
            format!("entry point {} is out of range", input.entry),
        ));
    }
    for (i, instr) in input.instrs.iter().enumerate() {
        if let Some(target) = instr.direct_target() {
            if target.index() >= n {
                out.push(finding(
                    PassKind::WellFormed,
                    Severity::Error,
                    Some(Addr::new(i as u32)),
                    format!("`{instr}` targets out-of-range address {target}"),
                ));
            }
        }
    }
    for &a in input.address_taken {
        if a.index() >= n {
            out.push(finding(
                PassKind::WellFormed,
                Severity::Error,
                None,
                format!("address-taken label {a} is out of range"),
            ));
        }
    }
    let mut halt_reachable = false;
    for (bi, block) in cfg.blocks().iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        match block.terminator {
            Terminator::Halt => halt_reachable = true,
            Terminator::OffEnd => out.push(finding(
                PassKind::WellFormed,
                Severity::Error,
                Some(block.last_addr()),
                "control falls through the end of the program".to_owned(),
            )),
            Terminator::CondBranch { .. } if block.end == n => out.push(finding(
                PassKind::WellFormed,
                Severity::Error,
                Some(block.last_addr()),
                "conditional branch at the last instruction can fall off the end".to_owned(),
            )),
            Terminator::Call { .. } | Terminator::IndirectCall if block.end == n => {
                out.push(finding(
                    PassKind::WellFormed,
                    Severity::Warning,
                    Some(block.last_addr()),
                    "call at the last instruction has no return site".to_owned(),
                ));
            }
            _ => {}
        }
    }
    if !halt_reachable && !cfg.blocks().is_empty() {
        out.push(finding(
            PassKind::WellFormed,
            Severity::Error,
            None,
            "no Halt instruction is reachable from the entry point".to_owned(),
        ));
    }
    out
}

// --- pass 2: reachability / dead code --------------------------------

/// Flags maximal runs of unreachable instructions.
pub fn dead_code(cfg: &Cfg, reach: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    let blocks = cfg.blocks();
    let mut bi = 0;
    while bi < blocks.len() {
        if reach[bi] {
            bi += 1;
            continue;
        }
        let start = blocks[bi].start;
        let mut end = blocks[bi].end;
        while bi + 1 < blocks.len() && !reach[bi + 1] {
            bi += 1;
            end = blocks[bi].end;
        }
        let count = end - start;
        out.push(finding(
            PassKind::Reachability,
            Severity::Warning,
            Some(Addr::new(start as u32)),
            format!(
                "unreachable code: {count} instruction{} at {}..{}",
                if count == 1 { "" } else { "s" },
                Addr::new(start as u32),
                Addr::new((end - 1) as u32),
            ),
        ));
        bi += 1;
    }
    out
}

// --- pass 3: forward def-use dataflow --------------------------------

type RegSet = u32;
const FULL: RegSet = u32::MAX;

fn bit(r: Reg) -> RegSet {
    1u32 << r.index()
}

/// Interprocedural must-write analysis. Each analysis entry (the
/// program entry point, every direct call target, and every
/// address-taken block) gets a summary of the registers a call to it
/// definitely writes, and an entry set of registers definitely written
/// before control reaches it; both start at "all registers" and shrink
/// monotonically to a fixpoint. Indirect jumps are treated as tail
/// transfers: they narrow the target's entry set rather than flowing
/// the current context into its body, which keeps one function's
/// register state out of another's. A register read while outside the
/// must-written set on some path is flagged. Registers architecturally
/// reset to zero, so these are warnings (a defined but likely
/// unintended value), not errors.
pub fn def_use(input: &AnalysisInput<'_>, cfg: &Cfg) -> Vec<Finding> {
    let blocks = cfg.blocks();
    if blocks.is_empty() {
        return Vec::new();
    }
    let n = input.instrs.len();

    // Function entries: block ids.
    let mut fn_entries = vec![cfg.entry_block()];
    for block in blocks {
        if let Terminator::Call { target } = block.terminator {
            if target.index() < n {
                fn_entries.push(cfg.block_at(target));
            }
        }
    }
    fn_entries.extend_from_slice(cfg.address_taken_blocks());
    fn_entries.sort_unstable();
    fn_entries.dedup();
    let func_of = |entry_block: usize| fn_entries.binary_search(&entry_block).ok();

    let nf = fn_entries.len();
    let mut summary = vec![FULL; nf];
    let mut entry_in = vec![FULL; nf];
    let entry_func = func_of(cfg.entry_block()).expect("entry is a function");
    // At program start nothing has been written yet.
    entry_in[entry_func] = 0;

    // One intraprocedural must-write sweep over function `f`, against
    // the current summaries. Returns the per-block in-sets, updates the
    // function's return summary, and shrinks callee entry sets.
    let sweep = |f: usize,
                 summary: &mut Vec<RegSet>,
                 entry_in: &mut Vec<RegSet>,
                 changed: &mut bool|
     -> BTreeMap<usize, RegSet> {
        let mut in_sets: BTreeMap<usize, RegSet> = BTreeMap::new();
        in_sets.insert(fn_entries[f], entry_in[f]);
        let mut work = vec![fn_entries[f]];
        let mut ret_set = FULL;
        let mut returns_seen = false;
        while let Some(b) = work.pop() {
            let mut s = in_sets[&b];
            let block = &blocks[b];
            for i in block.start..block.end {
                let instr = &input.instrs[i];
                match instr {
                    Instr::Call { target } if target.index() < n => {
                        let callee = func_of(cfg.block_at(*target));
                        if let Some(callee) = callee {
                            // The call itself writes RA before the
                            // callee starts executing.
                            let at_callee = s | bit(Reg::RA);
                            let narrowed = entry_in[callee] & at_callee;
                            if narrowed != entry_in[callee] {
                                entry_in[callee] = narrowed;
                                *changed = true;
                            }
                            s |= summary[callee];
                        }
                    }
                    Instr::CallInd { .. } => {
                        for &atb in cfg.address_taken_blocks() {
                            if let Some(callee) = func_of(atb) {
                                let at_callee = s | bit(Reg::RA);
                                let narrowed = entry_in[callee] & at_callee;
                                if narrowed != entry_in[callee] {
                                    entry_in[callee] = narrowed;
                                    *changed = true;
                                }
                            }
                        }
                        // Unknown callee: assume it writes only RA.
                    }
                    _ => {}
                }
                if let Some(d) = instr.dest() {
                    s |= bit(d);
                }
            }
            // Flow edges within the function: calls flow to the return
            // site only (callees are modeled by their summaries).
            let mut flow: Vec<usize> = Vec::new();
            match block.terminator {
                Terminator::Fallthrough | Terminator::CondBranch { .. } => {
                    flow.extend(block.succs.iter().copied());
                }
                Terminator::Jump { target } => {
                    if target.index() < n {
                        flow.push(cfg.block_at(target));
                    }
                }
                Terminator::Call { .. } | Terminator::IndirectCall => {
                    if block.end < n {
                        flow.push(cfg.block_at(Addr::new(block.end as u32)));
                    }
                }
                // An indirect jump could target any address-taken
                // label; flowing (or narrowing) this context into all
                // of them drowns the pass in cross-function false
                // positives, so the transfer is treated as opaque.
                // Address-taken targets are still analyzed as entries
                // of their own, with contexts narrowed by call sites.
                Terminator::IndirectJump => {}
                Terminator::Return => {
                    ret_set &= s;
                    returns_seen = true;
                }
                Terminator::Halt | Terminator::OffEnd => {}
            }
            for succ in flow {
                let old = in_sets.get(&succ).copied().unwrap_or(FULL);
                let new = old & s;
                if new != old || !in_sets.contains_key(&succ) {
                    in_sets.insert(succ, new);
                    work.push(succ);
                }
            }
        }
        if returns_seen && ret_set != summary[f] {
            summary[f] = ret_set;
            *changed = true;
        }
        in_sets
    };

    // Outer fixpoint over summaries and entry sets (all shrink
    // monotonically, so this terminates; the cap is defensive).
    for _ in 0..64 {
        let mut changed = false;
        for f in 0..nf {
            let _ = sweep(f, &mut summary, &mut entry_in, &mut changed);
        }
        if !changed {
            break;
        }
    }

    // Reporting sweep at the fixpoint: replay each function's transfer
    // and collect reads of registers outside the must-written set.
    let mut flagged: BTreeSet<(usize, Reg)> = BTreeSet::new();
    for f in 0..nf {
        let mut ignore = false;
        let in_sets = sweep(f, &mut summary, &mut entry_in, &mut ignore);
        for (&b, &in_set) in &in_sets {
            let mut s = in_set;
            let block = &blocks[b];
            for i in block.start..block.end {
                let instr = &input.instrs[i];
                for src in instr.sources().into_iter().flatten() {
                    if s & bit(src) == 0 {
                        flagged.insert((i, src));
                    }
                }
                match instr {
                    Instr::Call { target } if target.index() < n => {
                        if let Some(callee) = func_of(cfg.block_at(*target)) {
                            s |= summary[callee];
                        }
                    }
                    Instr::CallInd { .. } => {}
                    _ => {}
                }
                if let Some(d) = instr.dest() {
                    s |= bit(d);
                }
            }
        }
    }

    flagged
        .into_iter()
        .map(|(i, r)| {
            finding(
                PassKind::DefUse,
                Severity::Warning,
                Some(Addr::new(i as u32)),
                format!(
                    "`{}` reads {r} before it is written on some path",
                    input.instrs[i]
                ),
            )
        })
        .collect()
}

// --- pass 4: call/return balance -------------------------------------

/// Walks the entry function's intraprocedural CFG (calls step to their
/// return site; indirect jumps are not followed — they stay within a
/// function by convention and are covered by reachability) and flags
/// any `Ret` reachable with an empty call stack.
pub fn call_balance(input: &AnalysisInput<'_>, cfg: &Cfg) -> Vec<Finding> {
    let blocks = cfg.blocks();
    if blocks.is_empty() {
        return Vec::new();
    }
    let n = input.instrs.len();
    let mut seen = vec![false; blocks.len()];
    let mut work = vec![cfg.entry_block()];
    seen[cfg.entry_block()] = true;
    let mut out = Vec::new();
    while let Some(b) = work.pop() {
        let block = &blocks[b];
        let mut flow: Vec<usize> = Vec::new();
        match block.terminator {
            Terminator::Fallthrough | Terminator::CondBranch { .. } => {
                flow.extend(block.succs.iter().copied());
            }
            Terminator::Jump { target } => {
                if target.index() < n {
                    flow.push(cfg.block_at(target));
                }
            }
            Terminator::Call { .. } | Terminator::IndirectCall => {
                if block.end < n {
                    flow.push(cfg.block_at(Addr::new(block.end as u32)));
                }
            }
            Terminator::Return => {
                out.push(finding(
                    PassKind::CallReturn,
                    Severity::Warning,
                    Some(block.last_addr()),
                    "return is reachable from the entry point with an empty call stack".to_owned(),
                ));
            }
            Terminator::IndirectJump | Terminator::Halt | Terminator::OffEnd => {}
        }
        for s in flow {
            if !seen[s] {
                seen[s] = true;
                work.push(s);
            }
        }
    }
    out
}

// --- pass 8: static branch taxonomy ----------------------------------

/// Classifies every static control instruction, fusing the loop pass in:
/// only branches that are *back edges of natural loops* (target
/// dominates the branch) count as short-backward packing triggers or
/// promotion candidates. Classifying by displacement alone — as this
/// pass once did — overcounts: a backward branch to an address-taken
/// `la` label that control enters around never behaves like a loop
/// latch, so the fill unit never finishes its segments via
/// `SegEndReason::Packed` and the bias table never promotes it.
/// Countable-loop latches additionally carry the trip-count pass's
/// exact iteration count and static taken-probability.
#[must_use]
pub fn taxonomy(
    input: &AnalysisInput<'_>,
    cfg: &Cfg,
    reach: &[bool],
    nest: &LoopNest,
    bounds: &[Option<LoopBound>],
) -> Taxonomy {
    let n = input.instrs.len();
    // Latch-branch pc → inferred bound, for countable loops.
    let mut latch_bounds: BTreeMap<usize, LoopBound> = BTreeMap::new();
    for (l, bound) in nest.loops.iter().zip(bounds) {
        if let Some(b) = bound {
            let latch_pc = cfg.blocks()[l.latches[0]].last_addr();
            latch_bounds.insert(latch_pc.index(), *b);
        }
    }

    let mut branches = Vec::new();
    for (i, instr) in input.instrs.iter().enumerate() {
        let kind = instr.control_kind();
        if !kind.is_control() {
            continue;
        }
        let pc = Addr::new(i as u32);
        let block = cfg.block_at(pc);
        let displacement = instr.direct_target().map(|t| pc.distance_from(t));
        let backward = displacement.is_some_and(|d| d > 0);
        let back_edge = backward
            && instr.direct_target().is_some_and(|t| {
                t.index() < n && reach[block] && nest.is_back_edge(block, cfg.block_at(t))
            });
        let short_backward =
            back_edge && displacement.is_some_and(|d| d > 0 && d <= SHORT_BACKWARD_DISP);
        let bound = latch_bounds.get(&i).copied();
        branches.push(BranchInfo {
            pc,
            kind,
            displacement,
            backward,
            back_edge,
            loop_depth: nest.depth_of(block),
            short_backward,
            promotion_candidate: kind == ControlKind::CondBranch && back_edge,
            trip_count: bound.and_then(|b| b.trips),
            static_taken_prob: bound.map(|b| b.static_taken_prob),
            reachable: reach[block],
        });
    }
    Taxonomy { branches }
}
